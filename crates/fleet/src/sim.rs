//! The virtual-time fleet simulator.
//!
//! One [`FleetSim`] run drives a [`FleetTrace`] through `n` shards.
//! Each shard is an independent serving unit: its own clock-generic
//! [`ControlPlane`] (admission, degradation ladder — the exact policy
//! code the single-cluster simulator and the threaded server consult),
//! its own worker pool, and its slice of the fleet's R-replicated
//! activation store ([`ReplicatedStore`]). Above the shards sit the
//! fleet-level policies under study: the [`FleetRouter`] choosing a
//! shard per request, one [`Autoscaler`] per shard resizing its pool
//! from windowed SLO signals, and — this module's robustness layer — a
//! [`FleetFaultPlan`] injecting shard crashes, churn, gray failures,
//! partitions, and cache wipes mid-run.
//!
//! Fault handling is built around three mechanisms:
//!
//! - **Minimal-churn rebalancing**: a crash or leave removes the shard
//!   from the consistent-hash ring (only its keys move); a join or
//!   restart adds it back. Each membership change rebuilds the replica
//!   directory and, when enabled, *re-primes* moved templates onto
//!   their new owners from surviving copies.
//! - **Re-routing with retry budgets**: a crash kills the shard's
//!   in-flight requests; each is resubmitted through the router
//!   (judged against its *original* arrival deadline) until its retry
//!   budget runs out. When no shard is routable, requests park at the
//!   router and drain FIFO the moment one comes back.
//! - **Replica failover**: a cache miss on the serving shard consults
//!   the template's replica directory and fetches from a surviving
//!   peer through that peer's circuit breaker — a masked compute plus
//!   a disk promote instead of a cold full recompute.
//!
//! The simulator is built for *scale*: workers are analytic k-server
//! FIFO pools ([`MultiResource`] — `acquire` returns the start/finish
//! pair immediately), so a request costs exactly two events (arrival
//! and completion) regardless of its step count. Everything is
//! deterministic in the trace and the fault seed: two runs of the same
//! config serialize to byte-identical reports, on either scheduler,
//! and every run asserts conservation — no accepted request is ever
//! silently dropped, even across a crash storm.
//!
//! [`ControlPlane`]: fps_serving::ControlPlane
//! [`ReplicatedStore`]: fps_maskcache::ReplicatedStore

use std::collections::{HashMap, VecDeque};

use fps_chaos::{FleetFaultKind, FleetFaultPlan};
use fps_json::{Json, ToJson};
use fps_maskcache::{PlacementSpec, ReplicaFetch, ReplicatedStore, StoreConfig};
use fps_metrics::{
    CacheFeedback, FetchOutcome, FleetCacheCounters, FleetRecoveryReport, FleetSloReport,
    GoodputTimeline, Histogram, PopularityHistogram, ShardSloReport, SloReport,
};
use fps_overload::BreakerConfig;
use fps_serving::cost::BatchItem;
use fps_serving::{
    Assessment, ControlPlane, CostModel, EngineKind, GpuSpec, LeastLoadedRouter, OverloadConfig,
    OverloadState, TimeSource, TraceSink, Track,
};
use fps_simtime::{
    CalendarQueue, EventHandler, EventQueue, EventScheduler, MultiResource, SimDuration, SimTime,
    Simulation,
};
use fps_workload::FleetTrace;

use crate::autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision, ScaleGuard};
use crate::ring::HashRing;
use crate::router::{FleetRouter, RouteStrategy, ShardLoad};

/// Fleet-run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards at start of run (fault plans may join more).
    pub shards: u32,
    /// Initial worker-pool size per shard.
    pub workers_per_shard: usize,
    /// Concurrent service lanes per worker.
    pub max_batch: usize,
    /// SLO deadline, seconds from arrival.
    pub deadline_secs: f64,
    /// Shard-selection policy.
    pub strategy: RouteStrategy,
    /// Per-shard activation-cache capacity, in templates (host tier of
    /// the shard's hierarchical store).
    pub cache_capacity: usize,
    /// Autoscaling policy; `None` freezes the pools.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Seconds between autoscaler observation windows.
    pub scale_interval_secs: f64,
    /// Typical mask ratio of the offered load (sizes the admission
    /// estimates, exactly as in the cluster simulator).
    pub mean_mask_ratio: f64,
    /// Let the degradation ladder cut steps under pressure. Routing
    /// experiments pin this off: a shard that rides out cache misses by
    /// serving fewer denoising steps converts the miss penalty into
    /// quality loss that latency metrics cannot see, which would make
    /// strategies incomparable at equal output quality.
    pub allow_degradation: bool,
    /// Deterministic fleet fault schedule (default: no faults).
    pub faults: FleetFaultPlan,
    /// Replication target R for the activation store. `1` is the
    /// no-replica baseline: a miss always recomputes cold. `≥ 2`
    /// enables peer failover through the replica directory.
    pub replicas: usize,
    /// Copy moved templates onto their new owners at each membership
    /// change. Off, the directory still tracks the ring but new owners
    /// start cold — the ablation arm for `fig_chaos_fleet`.
    pub reprime_on_churn: bool,
    /// How many times a crash-killed request may be resubmitted before
    /// it is counted as failed.
    pub retry_budget: u32,
    /// Goodput-timeline bucket width for recovery analysis, seconds.
    pub recovery_window_secs: f64,
    /// Uniform per-template activation footprint, bytes (sizes the
    /// host tier as `cache_capacity × template_bytes`).
    pub template_bytes: u64,
    /// Replica-placement policy for the activation store. Ring order
    /// is the legacy behavior (byte-identical reports); popularity
    /// places the hot templates' replicas first under the byte budget
    /// and re-plans on popularity drift.
    pub placement: PlacementSpec,
    /// Per-shard replica byte budget, in templates (× `template_bytes`).
    /// `None` is unbounded — every planned replica is admitted, exactly
    /// the legacy behavior.
    pub replica_budget_templates: Option<usize>,
    /// Seconds between placement re-plans when the policy reacts to
    /// popularity (ring order never re-plans).
    pub replan_interval_secs: f64,
    /// Trace sink for route/scale/fault events.
    pub trace: TraceSink,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 4,
            deadline_secs: 30.0,
            strategy: RouteStrategy::Affinity { load_factor: 1.25 },
            cache_capacity: 16,
            autoscaler: None,
            scale_interval_secs: 10.0,
            mean_mask_ratio: 0.11,
            allow_degradation: true,
            faults: FleetFaultPlan::none(),
            replicas: 1,
            reprime_on_churn: true,
            retry_budget: 2,
            recovery_window_secs: 10.0,
            template_bytes: 64 << 20,
            placement: PlacementSpec::RingOrder,
            replica_budget_templates: None,
            replan_interval_secs: 20.0,
            trace: TraceSink::disabled(),
        }
    }
}

/// What one fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Strategy label of the run.
    pub strategy: &'static str,
    /// Replica-placement policy label of the run.
    pub policy: &'static str,
    /// Per-shard SLO accounting with mergeable histograms.
    pub shard_reports: Vec<ShardSloReport>,
    /// Histogram-merged fleet rollup (with cache counters attached).
    pub fleet: FleetSloReport,
    /// Requests whose template was host-resident on the serving shard.
    pub cache_hits: u64,
    /// Requests served by fetching a surviving peer replica after a
    /// local miss (masked compute instead of cold recompute).
    pub failover_hits: u64,
    /// Requests that recomputed from scratch.
    pub cache_misses: u64,
    /// Affinity placements that bypassed a saturated primary.
    pub spills: u64,
    /// Crash-killed requests that were resubmitted through the router.
    pub rerouted: u64,
    /// Accepted requests lost to crashes after exhausting their retry
    /// budget.
    pub crash_failed: u64,
    /// Requests parked at the router (no routable shard) that never
    /// found one before the run ended.
    pub parked_failed: u64,
    /// Replica copies re-primed onto new owners by churn rebalancing.
    pub re_primed: u64,
    /// Peer-cache reads short-circuited by an open circuit breaker.
    pub breaker_short_circuits: u64,
    /// Placement re-plans triggered by popularity drift (always 0 for
    /// ring order).
    pub replans: u64,
    /// Replica copies evicted to respect the per-shard byte budget.
    pub replica_evictions: u64,
    /// p95 of the per-request cache-fetch cost (0 on a local hit, the
    /// promote delay on failover, the cold-recompute penalty on a
    /// miss), seconds.
    pub cache_fetch_p95_secs: f64,
    /// Scale-up actions across all shards.
    pub scale_ups: u64,
    /// Scale-down actions across all shards.
    pub scale_downs: u64,
    /// Scale-downs vetoed by the last-healthy-shard guard.
    pub scale_down_vetoes: u64,
    /// Worker-pool sizes at the end of the run.
    pub final_workers: Vec<usize>,
    /// Virtual seconds from first arrival to last completion.
    pub makespan_secs: f64,
    /// Total events the scheduler processed.
    pub events_processed: u64,
    /// Goodput recovery analysis, when the run injected faults.
    pub recovery: Option<FleetRecoveryReport>,
}

impl FleetReport {
    /// Local activation-cache hit rate over computed requests.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.failover_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of requests that avoided a cold recompute (local hit
    /// or replica failover).
    pub fn effective_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.failover_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits + self.failover_hits) as f64 / total as f64
        }
    }
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("strategy", self.strategy)
            .with("policy", self.policy)
            .with("fleet", self.fleet.to_json())
            .with("shards", self.shard_reports.to_json())
            .with("cache_hits", self.cache_hits)
            .with("failover_hits", self.failover_hits)
            .with("cache_misses", self.cache_misses)
            .with("hit_rate", self.hit_rate())
            .with("effective_hit_rate", self.effective_hit_rate())
            .with("spills", self.spills)
            .with("rerouted", self.rerouted)
            .with("crash_failed", self.crash_failed)
            .with("parked_failed", self.parked_failed)
            .with("re_primed", self.re_primed)
            .with("breaker_short_circuits", self.breaker_short_circuits)
            .with("replans", self.replans)
            .with("replica_evictions", self.replica_evictions)
            .with("cache_fetch_p95_secs", self.cache_fetch_p95_secs)
            .with("scale_ups", self.scale_ups)
            .with("scale_downs", self.scale_downs)
            .with("scale_down_vetoes", self.scale_down_vetoes)
            .with(
                "final_workers",
                Json::Array(
                    self.final_workers
                        .iter()
                        .map(|&w| Json::U64(w as u64))
                        .collect(),
                ),
            )
            .with("makespan_secs", self.makespan_secs)
            .with("events_processed", self.events_processed);
        if let Some(recovery) = &self.recovery {
            j = j.with("recovery", recovery.to_json());
        }
        j
    }
}

/// Windowed counters feeding the autoscaler, reset every scale tick.
#[derive(Debug, Default)]
struct Window {
    submitted: u64,
    turned_away: u64,
    queue_waits: Vec<f64>,
}

impl Window {
    fn signal(&mut self, utilization: f64, cache_miss_rate: f64) -> crate::autoscaler::ShardSignal {
        let shed_rate = if self.submitted == 0 {
            0.0
        } else {
            self.turned_away as f64 / self.submitted as f64
        };
        self.queue_waits
            .sort_by(|a, b| a.partial_cmp(b).expect("finite waits"));
        let p95 = if self.queue_waits.is_empty() {
            0.0
        } else {
            let ix = ((self.queue_waits.len() as f64 * 0.95).ceil() as usize)
                .clamp(1, self.queue_waits.len());
            self.queue_waits[ix - 1]
        };
        let s = crate::autoscaler::ShardSignal {
            shed_rate,
            queue_wait_p95_secs: p95,
            utilization,
            cache_miss_rate,
        };
        *self = Self::default();
        s
    }
}

/// One shard's live state.
struct Shard {
    plane: ControlPlane<LeastLoadedRouter>,
    /// One k-server pool per worker (`max_batch` lanes each).
    pools: Vec<MultiResource>,
    scaler: Option<Autoscaler>,
    outstanding: usize,
    window: Window,
    // Liveness.
    /// Not crashed and not departed.
    alive: bool,
    /// On the consistent-hash ring.
    joined: bool,
    /// Router cannot place onto it (link down; compute fine).
    partitioned: bool,
    /// Gray-failure service-time multiplier while `now < slow_until`.
    slow_factor: f64,
    slow_until: SimTime,
    // Accounting.
    submitted: u64,
    served: u64,
    served_within_deadline: u64,
    shed: u64,
    deadline_rejected: u64,
    /// In-flight attempts killed by a crash (each resubmitted or
    /// counted failed at the fleet level).
    other_rejected: u64,
    rung_served: Vec<(&'static str, u64)>,
    latency_hist: Histogram,
    queue_wait_hist: Histogram,
}

impl Shard {
    /// The router may place new requests here.
    fn routable(&self) -> bool {
        self.alive && self.joined && !self.partitioned
    }
}

/// One accepted attempt in flight on a shard. Crash handling consults
/// this registry to kill and reroute; completion accounting happens at
/// the `Done` event so a killed attempt is never counted served.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    trace_ix: usize,
    /// Shard serving this attempt (crash handling kills by shard).
    shard: u32,
    /// Original fleet arrival (deadlines and latency are judged
    /// against it across retries).
    arrival: SimTime,
    finish: SimTime,
    wait_secs: f64,
    attempt: u32,
    rung_label: Option<&'static str>,
}

/// A request waiting at the router for any shard to become routable.
#[derive(Debug, Clone, Copy)]
struct Parked {
    trace_ix: usize,
    arrival: SimTime,
    attempt: u32,
}

/// A compiled fault-plan step (one plan event may expand to two: a
/// crash schedules its own restart, a partition its own heal).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    Crash(u32),
    Rejoin(u32),
    Leave(u32),
    Join(u32),
    SlowStart {
        shard: u32,
        factor: f64,
        until: SimTime,
    },
    PartitionStart(u32),
    PartitionEnd(u32),
    Wipe(u32),
    DiskDegradeStart {
        shard: u32,
        factor: f64,
    },
    DiskDegradeEnd(u32),
}

impl FaultAction {
    fn label(&self) -> &'static str {
        match self {
            Self::Crash(_) => "crash",
            Self::Rejoin(_) => "rejoin",
            Self::Leave(_) => "leave",
            Self::Join(_) => "join",
            Self::SlowStart { .. } => "slow_start",
            Self::PartitionStart(_) => "partition_start",
            Self::PartitionEnd(_) => "partition_end",
            Self::Wipe(_) => "wipe",
            Self::DiskDegradeStart { .. } => "disk_degrade_start",
            Self::DiskDegradeEnd(_) => "disk_degrade_end",
        }
    }

    fn shard(&self) -> u32 {
        match *self {
            Self::Crash(s)
            | Self::Rejoin(s)
            | Self::Leave(s)
            | Self::Join(s)
            | Self::SlowStart { shard: s, .. }
            | Self::PartitionStart(s)
            | Self::PartitionEnd(s)
            | Self::Wipe(s)
            | Self::DiskDegradeStart { shard: s, .. }
            | Self::DiskDegradeEnd(s) => s,
        }
    }
}

fn compile_plan(plan: &FleetFaultPlan) -> Vec<(SimTime, FaultAction)> {
    let mut actions = Vec::new();
    for e in &plan.events {
        match e.kind {
            FleetFaultKind::ShardCrash { shard, downtime } => {
                actions.push((e.at, FaultAction::Crash(shard)));
                actions.push((e.at + downtime, FaultAction::Rejoin(shard)));
            }
            FleetFaultKind::ShardLeave { shard } => actions.push((e.at, FaultAction::Leave(shard))),
            FleetFaultKind::ShardJoin { shard } => actions.push((e.at, FaultAction::Join(shard))),
            FleetFaultKind::ShardSlow {
                shard,
                factor,
                duration,
            } => actions.push((
                e.at,
                FaultAction::SlowStart {
                    shard,
                    factor,
                    until: e.at + duration,
                },
            )),
            FleetFaultKind::Partition { shard, duration } => {
                actions.push((e.at, FaultAction::PartitionStart(shard)));
                actions.push((e.at + duration, FaultAction::PartitionEnd(shard)));
            }
            FleetFaultKind::ReplicaLoss { shard } => {
                actions.push((e.at, FaultAction::Wipe(shard)));
            }
            FleetFaultKind::DiskDegrade {
                shard,
                factor,
                duration,
            } => {
                actions.push((e.at, FaultAction::DiskDegradeStart { shard, factor }));
                actions.push((e.at + duration, FaultAction::DiskDegradeEnd(shard)));
            }
        }
    }
    // Stable by time: same-instant actions keep plan order.
    actions.sort_by_key(|&(at, _)| at);
    actions
}

/// Fleet events. Public so callers can plug in their own
/// [`EventScheduler`] via [`FleetSim::run_with_scheduler`].
#[derive(Debug, Clone, Copy)]
pub enum FleetEv {
    /// Request `trace[i]` arrives at the fleet front door.
    Arrival(usize),
    /// In-flight attempt `seq` completes on `shard`.
    Done {
        /// The shard whose worker finished.
        shard: u32,
        /// Registry key of the attempt (a crash may have killed it, in
        /// which case the completion is ignored).
        seq: u64,
    },
    /// Autoscaler observation window closes.
    ScaleTick,
    /// Placement re-plan tick (scheduled only when the placement
    /// policy reacts to popularity).
    Replan,
    /// Compiled fault-plan step `i` fires.
    Fault(usize),
}

struct World<'a> {
    trace: &'a FleetTrace,
    shards: Vec<Shard>,
    router: FleetRouter,
    store: ReplicatedStore,
    cost: CostModel,
    engine: EngineKind,
    config: FleetConfig,
    deadline: SimDuration,
    actions: Vec<(SimTime, FaultAction)>,
    /// Sorted template universe, for deterministic directory rebuilds.
    templates: Vec<u64>,
    registry: HashMap<u64, Inflight>,
    next_seq: u64,
    parked: VecDeque<Parked>,
    timeline: GoodputTimeline,
    spills: u64,
    cache_hits: u64,
    failover_hits: u64,
    cache_misses: u64,
    rerouted: u64,
    crash_failed: u64,
    re_primed: u64,
    /// Measured cache-cost signal: fetch-cost EWMAs per (shard,
    /// template) plus windowed miss counters for the autoscaler.
    feedback: CacheFeedback,
    /// Requests seen per template so far this run — the drift signal
    /// popularity placement re-plans against (keyed only, never
    /// iterated; reads go through the sorted template universe).
    live_popularity: HashMap<u64, u64>,
    /// Per-request cache-fetch cost (0 local / promote delay on
    /// failover / cold penalty on miss), seconds.
    cache_fetch_hist: Histogram,
    replans: u64,
    last_completion: SimTime,
    inflight: usize,
    next_arrival: usize,
}

impl World<'_> {
    fn shard_loads(&self) -> Vec<ShardLoad> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.routable())
            .map(|(i, s)| ShardLoad {
                shard: i as u32,
                outstanding: s.outstanding,
                lanes: s.pools.len() * self.config.max_batch,
            })
            .collect()
    }

    /// Service seconds for one request at `steps` denoising steps.
    /// Requests with host-resident or failed-over activations compute
    /// only the masked region; cold misses recompute the full latent
    /// (mask ratio 1.0) — the fleet-level cost of losing affinity.
    fn service_duration(&self, mask_ratio: f64, steps: usize, warm: bool) -> SimDuration {
        let ratio = if warm { mask_ratio } else { 1.0 };
        let step = self
            .engine
            .step_latency(&self.cost, &[BatchItem { mask_ratio: ratio }]);
        SimDuration::from_secs_f64(step.as_secs_f64() * steps as f64)
    }

    fn emit(&self, name: &'static str, shard: u32, ts: SimTime, args: Vec<(&'static str, Json)>) {
        if !self.config.trace.is_enabled() {
            return;
        }
        self.config
            .trace
            .event_at(name, "fleet", Track::new(2, shard), ts.as_nanos(), args);
    }

    /// Rebuilds the replica directory from the current ring; with
    /// re-priming enabled, copies moved templates onto their new
    /// owners from surviving holders.
    fn rebalance(&mut self) {
        let ring = self.router.ring();
        let pop = &self.live_popularity;
        if self.config.reprime_on_churn {
            self.re_primed += self.store.rebuild_weighted(
                &self.templates,
                |t| ring.preference(t),
                |t| pop.get(&t).copied().unwrap_or(0),
            );
        } else {
            self.store.retarget(&self.templates, |t| ring.preference(t));
        }
        self.refresh_feedback_hints();
    }

    /// Re-seeds the feedback cost priors from the current replica
    /// directory. Every owner is seeded at zero — the prior is the
    /// *steady-state* cost of serving there, not the first fetch: a
    /// replica pays one disk promote on adoption and is host-resident
    /// after. Seeding replicas at the promote cost instead would make
    /// them unexplorable — a pair thrashing in and out of a full host
    /// tier averages below one promote per fetch, so its EWMA could
    /// never exceed that prior and the router would re-promote forever
    /// rather than migrate. Non-owners fall back to the miss prior.
    /// Pure feedback state — blind strategies never read it.
    fn refresh_feedback_hints(&mut self) {
        for &t in &self.templates {
            let owners = self.store.directory().owners(t).to_vec();
            self.feedback.hint_placement(t, &owners, 0.0, 0.0);
        }
    }

    /// Re-submits every parked request once any shard is routable.
    fn drain_parked<Q: EventScheduler<FleetEv>>(&mut self, now: SimTime, queue: &mut Q) {
        if self.parked.is_empty() || !self.shards.iter().any(Shard::routable) {
            return;
        }
        let parked: Vec<Parked> = self.parked.drain(..).collect();
        for p in parked {
            self.submit(now, p.trace_ix, p.attempt, p.arrival, queue);
        }
    }

    /// Routes and (maybe) admits one attempt of `trace[trace_ix]`.
    /// `arrival` is the request's original fleet arrival: deadlines
    /// and end-to-end latency are judged against it across retries.
    fn submit<Q: EventScheduler<FleetEv>>(
        &mut self,
        now: SimTime,
        trace_ix: usize,
        attempt: u32,
        arrival: SimTime,
        queue: &mut Q,
    ) {
        let req = &self.trace.trace.requests[trace_ix];
        let loads = self.shard_loads();
        if loads.is_empty() {
            // Nothing routable: park at the router until membership or
            // partition state changes.
            self.parked.push_back(Parked {
                trace_ix,
                arrival,
                attempt,
            });
            self.emit("fleet_park", 0, now, vec![("id", Json::U64(req.id))]);
            return;
        }
        let choice = self
            .router
            .choose(req.id, req.template_id, &loads, Some(&self.feedback));
        if choice.spilled {
            self.spills += 1;
        }
        let sx = choice.shard as usize;
        self.emit(
            "fleet_route",
            choice.shard,
            now,
            vec![
                ("id", Json::U64(req.id)),
                ("template", Json::U64(req.template_id)),
                ("spilled", Json::Bool(choice.spilled)),
                ("attempt", Json::U64(attempt as u64)),
            ],
        );
        let shard = &mut self.shards[sx];
        shard.submitted += 1;
        shard.window.submitted += 1;
        let capacity = shard.pools.len() * self.config.max_batch;
        let assessment = shard
            .plane
            .assess(req.id, now, shard.outstanding, capacity, false);
        let (rung, steps) = match assessment {
            Assessment::Shed(_) => {
                shard.shed += 1;
                shard.window.turned_away += 1;
                return;
            }
            Assessment::Serve { rung, steps } => (rung, steps),
        };
        // Earliest any lane frees: if even starting then blows the
        // (remaining) deadline, reject before charging the pool.
        let free = shard
            .pools
            .iter()
            .map(MultiResource::earliest_free)
            .min()
            .expect("at least one worker");
        if free.max(now).since(arrival) > self.deadline {
            shard.deadline_rejected += 1;
            shard.window.turned_away += 1;
            return;
        }
        // Cache path: local host tier, then replica failover, then
        // cold recompute. The cold penalty (full-latent recompute minus
        // the masked compute this request would have run warm) is the
        // miss cost the feedback signal learns.
        let cold_penalty_secs = (self.service_duration(req.mask_ratio, steps, false)
            - self.service_duration(req.mask_ratio, steps, true))
        .as_secs_f64()
        .max(0.0);
        let local_hit = self.store.touch(choice.shard, req.template_id, now);
        let (warm, compute_from, outcome, replica_source) = if local_hit {
            self.cache_hits += 1;
            (true, now, FetchOutcome::LocalHit, Json::Str("host".into()))
        } else if self.config.replicas >= 2 {
            let shards = &self.shards;
            match self
                .store
                .fetch_failover(choice.shard, req.template_id, now, |s| {
                    shards
                        .get(s as usize)
                        .is_some_and(|sh| sh.alive && sh.joined)
                }) {
                ReplicaFetch::Failover { source, ready } => {
                    self.failover_hits += 1;
                    self.emit(
                        "cache_failover",
                        choice.shard,
                        now,
                        vec![
                            ("template", Json::U64(req.template_id)),
                            ("source", Json::U64(source as u64)),
                        ],
                    );
                    let cost_secs = ready.since(now).as_secs_f64();
                    (
                        true,
                        ready,
                        FetchOutcome::Failover { cost_secs },
                        Json::U64(source as u64),
                    )
                }
                ReplicaFetch::LocalHit(ready) => {
                    // The local disk tier held a copy: a promote, not a
                    // peer fetch.
                    let cost_secs = ready.since(now).as_secs_f64();
                    (
                        true,
                        ready,
                        FetchOutcome::Failover { cost_secs },
                        Json::Str("disk".into()),
                    )
                }
                ReplicaFetch::Miss => {
                    self.cache_misses += 1;
                    (
                        false,
                        now,
                        FetchOutcome::Miss {
                            cost_secs: cold_penalty_secs,
                        },
                        Json::Str("none".into()),
                    )
                }
            }
        } else {
            self.cache_misses += 1;
            (
                false,
                now,
                FetchOutcome::Miss {
                    cost_secs: cold_penalty_secs,
                },
                Json::Str("none".into()),
            )
        };
        self.feedback
            .observe(choice.shard, req.template_id, outcome);
        self.cache_fetch_hist.record(outcome.cost_secs());
        self.emit(
            "cache_fetch",
            choice.shard,
            now,
            vec![
                ("template", Json::U64(req.template_id)),
                ("replica_source", replica_source),
                ("hit", Json::Bool(outcome.is_hit())),
                ("policy", Json::Str(self.store.policy_name().to_string())),
            ],
        );
        if !local_hit && self.config.replicas >= 2 {
            // Write-through: the computed (or fetched) activations land
            // on every desired owner so the next failure has copies.
            self.store.replicate(req.template_id);
        }
        let mut dur = self.service_duration(req.mask_ratio, steps, warm);
        let shard = &mut self.shards[sx];
        if now < shard.slow_until {
            // Gray failure: alive, routable, just slow.
            dur = SimDuration::from_secs_f64(dur.as_secs_f64() * shard.slow_factor);
        }
        // Lane with the earliest opening, ties to the lowest worker
        // index: deterministic and work-conserving.
        let px = shard
            .pools
            .iter()
            .enumerate()
            .min_by_key(|(ix, p)| (p.earliest_free(), *ix))
            .expect("non-empty")
            .0;
        let (start, finish) = shard.pools[px].acquire(compute_from.max(now), dur);
        let wait_secs = start.since(now).as_secs_f64();
        shard.window.queue_waits.push(wait_secs);
        shard.outstanding += 1;
        self.inflight += 1;
        self.last_completion = self.last_completion.max(finish);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.registry.insert(
            seq,
            Inflight {
                trace_ix,
                shard: choice.shard,
                arrival,
                finish,
                wait_secs,
                attempt,
                rung_label: rung.map(|r| r.label()),
            },
        );
        queue.schedule_at(
            finish,
            FleetEv::Done {
                shard: choice.shard,
                seq,
            },
        );
    }

    fn apply_fault<Q: EventScheduler<FleetEv>>(
        &mut self,
        now: SimTime,
        action: FaultAction,
        queue: &mut Q,
    ) {
        self.emit(
            "fleet_fault",
            action.shard(),
            now,
            vec![("kind", Json::Str(action.label().to_string()))],
        );
        match action {
            FaultAction::Crash(shard) => {
                let sx = shard as usize;
                if !self.shards[sx].alive {
                    return;
                }
                self.shards[sx].alive = false;
                self.shards[sx].joined = false;
                self.shards[sx].window = Window::default();
                self.router.remove_shard(shard);
                self.store.wipe(shard);
                self.rebalance();
                // Kill the shard's in-flight attempts (sorted by seq
                // for determinism), then reroute each within its retry
                // budget — judged against its original deadline.
                let mut victims: Vec<u64> = self
                    .registry
                    .iter()
                    .filter(|(_, inf)| inf.shard == shard)
                    .map(|(&seq, _)| seq)
                    .collect();
                victims.sort_unstable();
                for seq in victims {
                    let inf = self.registry.remove(&seq).expect("victim exists");
                    let s = &mut self.shards[sx];
                    s.outstanding = s.outstanding.saturating_sub(1);
                    s.other_rejected += 1;
                    self.inflight -= 1;
                    if inf.attempt < self.config.retry_budget {
                        self.rerouted += 1;
                        self.submit(now, inf.trace_ix, inf.attempt + 1, inf.arrival, queue);
                    } else {
                        self.crash_failed += 1;
                    }
                }
            }
            FaultAction::Rejoin(shard) | FaultAction::Join(shard) => {
                let sx = shard as usize;
                if self.shards[sx].alive && self.shards[sx].joined {
                    return;
                }
                let s = &mut self.shards[sx];
                s.alive = true;
                s.joined = true;
                s.partitioned = false;
                // Cold restart: fresh pools, empty window. (The store
                // slice was wiped at crash; re-priming below warms it.)
                s.pools = (0..self.config.workers_per_shard.max(1))
                    .map(|_| MultiResource::new(self.config.max_batch))
                    .collect();
                s.outstanding = 0;
                s.window = Window::default();
                self.router.add_shard(shard);
                self.store.ensure_shard(shard);
                self.rebalance();
                self.drain_parked(now, queue);
            }
            FaultAction::Leave(shard) => {
                let sx = shard as usize;
                if !self.shards[sx].alive {
                    return;
                }
                // Graceful: stops taking new work, drains in-flight.
                self.shards[sx].alive = false;
                self.shards[sx].joined = false;
                self.router.remove_shard(shard);
                self.rebalance();
            }
            FaultAction::SlowStart {
                shard,
                factor,
                until,
            } => {
                let s = &mut self.shards[shard as usize];
                s.slow_factor = factor.max(1.0);
                s.slow_until = until;
            }
            FaultAction::PartitionStart(shard) => {
                self.shards[shard as usize].partitioned = true;
            }
            FaultAction::PartitionEnd(shard) => {
                self.shards[shard as usize].partitioned = false;
                self.drain_parked(now, queue);
            }
            FaultAction::Wipe(shard) => {
                self.store.wipe(shard);
            }
            // A gray failure: health checks see nothing (the shard
            // stays routable), but every disk promote on — or peer
            // read sourced from — the shard pays the slowdown. Only
            // fetch-cost feedback can detect it.
            FaultAction::DiskDegradeStart { shard, factor } => {
                self.store.set_disk_degradation(shard, factor.max(1.0));
            }
            FaultAction::DiskDegradeEnd(shard) => {
                self.store.set_disk_degradation(shard, 1.0);
            }
        }
    }
}

impl<Q: EventScheduler<FleetEv>> EventHandler<FleetEv, Q> for World<'_> {
    fn handle(&mut self, now: SimTime, event: FleetEv, queue: &mut Q) {
        match event {
            FleetEv::Arrival(i) => {
                self.next_arrival = self.next_arrival.max(i + 1);
                let template = self.trace.trace.requests[i].template_id;
                *self.live_popularity.entry(template).or_insert(0) += 1;
                self.submit(now, i, 0, now, queue);
            }
            FleetEv::Done { shard, seq } => {
                // A crash may have killed this attempt already.
                let Some(inf) = self.registry.remove(&seq) else {
                    return;
                };
                let s = &mut self.shards[shard as usize];
                s.outstanding = s.outstanding.saturating_sub(1);
                self.inflight -= 1;
                s.served += 1;
                let e2e = inf.finish.since(inf.arrival);
                if e2e <= self.deadline {
                    s.served_within_deadline += 1;
                    self.timeline.record(inf.finish.as_secs_f64());
                }
                if let Some(label) = inf.rung_label {
                    match s.rung_served.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, c)) => *c += 1,
                        None => s.rung_served.push((label, 1)),
                    }
                }
                s.latency_hist.record(e2e.as_secs_f64());
                s.queue_wait_hist.record(inf.wait_secs);
            }
            FleetEv::ScaleTick => {
                let routable = self.shards.iter().filter(|s| s.routable()).count();
                let parked = self.parked.len() as u64;
                for sx in 0..self.shards.len() {
                    let max_batch = self.config.max_batch;
                    if !self.shards[sx].alive {
                        continue;
                    }
                    let guard = ScaleGuard {
                        parked,
                        last_healthy: routable == 1 && self.shards[sx].routable(),
                    };
                    let miss_rate = self.feedback.window_miss_rate(sx as u32);
                    self.feedback.reset_window(sx as u32);
                    let shard = &mut self.shards[sx];
                    let capacity = (shard.pools.len() * max_batch).max(1);
                    let utilization = (shard.outstanding as f64 / capacity as f64).min(1.0);
                    let signal = shard.window.signal(utilization, miss_rate);
                    let Some(scaler) = shard.scaler.as_mut() else {
                        continue;
                    };
                    let decision = scaler.observe_guarded(shard.pools.len(), &signal, now, &guard);
                    match decision {
                        ScaleDecision::Hold => {}
                        ScaleDecision::Up(n) => {
                            while shard.pools.len() < n {
                                shard.pools.push(MultiResource::new(max_batch));
                            }
                        }
                        ScaleDecision::Down(n) => {
                            shard.pools.truncate(n.max(1));
                        }
                    }
                    match decision {
                        ScaleDecision::Hold => {}
                        ScaleDecision::Up(n) => self.emit(
                            "scale_up",
                            sx as u32,
                            now,
                            vec![("workers", Json::U64(n as u64))],
                        ),
                        ScaleDecision::Down(n) => self.emit(
                            "scale_down",
                            sx as u32,
                            now,
                            vec![("workers", Json::U64(n as u64))],
                        ),
                    }
                }
                // Keep ticking only while the run still has work:
                // unconditional rescheduling would never terminate.
                if self.inflight > 0 || self.next_arrival < self.trace.trace.len() {
                    queue.schedule_after(
                        SimDuration::from_secs_f64(self.config.scale_interval_secs),
                        FleetEv::ScaleTick,
                    );
                }
            }
            FleetEv::Replan => {
                // Popularity drift: re-run placement against the live
                // histogram and move replicas (survivor-sourced copy +
                // budget eviction) to match. Never scheduled for
                // policies that ignore popularity.
                let before = self.re_primed;
                let ring = self.router.ring();
                let pop = &self.live_popularity;
                self.re_primed += self.store.rebuild_weighted(
                    &self.templates,
                    |t| ring.preference(t),
                    |t| pop.get(&t).copied().unwrap_or(0),
                );
                self.replans += 1;
                self.refresh_feedback_hints();
                self.emit(
                    "replan",
                    0,
                    now,
                    vec![
                        ("moved", Json::U64(self.re_primed - before)),
                        ("policy", Json::Str(self.store.policy_name().to_string())),
                    ],
                );
                if self.inflight > 0 || self.next_arrival < self.trace.trace.len() {
                    queue.schedule_after(
                        SimDuration::from_secs_f64(self.config.replan_interval_secs.max(0.001)),
                        FleetEv::Replan,
                    );
                }
            }
            FleetEv::Fault(ix) => {
                let (_, action) = self.actions[ix];
                self.apply_fault(now, action, queue);
            }
        }
    }
}

/// Runs fleet simulations. The scheduler is pluggable ([`FleetSim::run`] uses
/// the calendar queue, [`FleetSim::run_on_heap`] the binary heap) and the two
/// must produce byte-identical reports — the fleet-scale differential
/// test of the scheduler contract.
pub struct FleetSim;

impl FleetSim {
    /// Runs `trace` under `config` on the calendar-queue scheduler.
    pub fn run(config: FleetConfig, trace: &FleetTrace) -> FleetReport {
        Self::run_with_scheduler(config, trace, CalendarQueue::new())
    }

    /// Runs on the binary-heap scheduler (differential baseline).
    pub fn run_on_heap(config: FleetConfig, trace: &FleetTrace) -> FleetReport {
        Self::run_with_scheduler(config, trace, EventQueue::new())
    }

    /// Runs on an explicit scheduler.
    ///
    /// # Panics
    ///
    /// Panics when the fault plan references shards that can never
    /// exist, or when end-of-run conservation fails (an accepted
    /// request unaccounted for — a simulator bug, never a workload
    /// property).
    pub fn run_with_scheduler<Q: EventScheduler<FleetEv>>(
        config: FleetConfig,
        trace: &FleetTrace,
        queue: Q,
    ) -> FleetReport {
        let initial_shards = config.shards.max(1);
        config
            .faults
            .validate(initial_shards)
            .expect("fleet fault plan targets shards that can never exist");
        // Fault plans may join shards beyond the initial fleet:
        // pre-size the table so ids are stable.
        let total_slots = config
            .faults
            .max_shard()
            .map_or(initial_shards, |m| initial_shards.max(m + 1));
        let cost = CostModel::new(GpuSpec::h800(), ModelDefaults::paper());
        let engine = EngineKind::FlashPs { kv: true };
        let deadline = SimDuration::from_secs_f64(config.deadline_secs);
        let full_steps = cost.model.steps;
        let hist_hi = (config.deadline_secs * 4.0).max(1.0);
        let ring = HashRing::with_shards(initial_shards);
        let shards: Vec<Shard> = (0..total_slots)
            .map(|sx| {
                let mut overload_cfg = OverloadConfig::for_cluster(
                    &cost,
                    config.workers_per_shard,
                    config.max_batch,
                    config.mean_mask_ratio,
                    deadline,
                );
                // `for_cluster` sizes the admission rate from the
                // batching server's wave model, where a slot turns over
                // once per full-batch wave. This simulator's pools are
                // k independent lanes, each serving one request at the
                // single-item step latency — noticeably faster — so an
                // admission bucket sized from waves sheds traffic the
                // shard could actually serve. Resize it from the
                // per-request service time the simulator charges.
                let per_req_secs = engine
                    .step_latency(
                        &cost,
                        &[BatchItem {
                            mask_ratio: config.mean_mask_ratio,
                        }],
                    )
                    .as_secs_f64()
                    * full_steps as f64;
                overload_cfg.admission = fps_overload::AdmissionConfig::for_capacity(
                    config.workers_per_shard.max(1) * config.max_batch,
                    per_req_secs,
                    config.deadline_secs,
                );
                if !config.allow_degradation {
                    // Unreachable enter thresholds pin the ladder at
                    // the premium rung: admission still sheds, but
                    // every served request gets full quality.
                    overload_cfg.ladder.enter = [f64::INFINITY; 4];
                }
                let state = OverloadState::new(
                    overload_cfg,
                    &cost,
                    config.max_batch,
                    config.mean_mask_ratio,
                );
                let plane =
                    ControlPlane::new(LeastLoadedRouter, TimeSource::virtual_clock(), full_steps)
                        .with_overload(Some(state))
                        .with_trace(config.trace.clone())
                        .with_control_track(Track::new(1, sx));
                Shard {
                    plane,
                    pools: (0..config.workers_per_shard.max(1))
                        .map(|_| MultiResource::new(config.max_batch))
                        .collect(),
                    scaler: config.autoscaler.clone().map(Autoscaler::new),
                    outstanding: 0,
                    window: Window::default(),
                    alive: sx < initial_shards,
                    joined: sx < initial_shards,
                    partitioned: false,
                    slow_factor: 1.0,
                    slow_until: SimTime::ZERO,
                    submitted: 0,
                    served: 0,
                    served_within_deadline: 0,
                    shed: 0,
                    deadline_rejected: 0,
                    other_rejected: 0,
                    rung_served: Vec::new(),
                    latency_hist: Histogram::new(0.0, hist_hi, 512).expect("valid geometry"),
                    queue_wait_hist: Histogram::new(0.0, hist_hi, 512).expect("valid geometry"),
                }
            })
            .collect();
        // The R-replicated activation store: host tier sized in
        // templates exactly like the pre-replica per-shard LRU cache.
        let store_config = StoreConfig {
            host_capacity: config.cache_capacity.max(1) as u64 * config.template_bytes,
            disk_capacity: u64::MAX,
            disk_read_bw: 2.0 * (1u64 << 30) as f64,
        };
        let mut store = ReplicatedStore::new(
            total_slots,
            config.replicas,
            store_config,
            BreakerConfig::default(),
            config.template_bytes,
        )
        .with_placement(config.placement);
        if let Some(n) = config.replica_budget_templates {
            store = store.with_replica_budget(n as u64 * config.template_bytes);
        }
        // Pre-prime every template onto its planned owners —
        // identically for every strategy, so hit-rate comparisons
        // measure routing, not starting conditions. The popularity
        // prior is "yesterday's histogram": the whole trace's request
        // counts, exactly what a production planner carries over from
        // the previous day.
        let total_templates: u64 = trace
            .trace
            .requests
            .iter()
            .map(|r| r.template_id + 1)
            .max()
            .unwrap_or(0);
        let templates: Vec<u64> = (0..total_templates).collect();
        let mut prior: HashMap<u64, u64> = HashMap::new();
        for r in &trace.trace.requests {
            *prior.entry(r.template_id).or_insert(0) += 1;
        }
        store.prime_all(
            &templates,
            |t| ring.preference(t),
            |t| prior.get(&t).copied().unwrap_or(0),
            SimTime::ZERO,
        );
        let router = FleetRouter::new(config.strategy, ring);
        let actions = compile_plan(&config.faults);
        let strategy = config.strategy.name();
        let policy = config.placement.name();
        // Feedback unknown-pair prior: the cost of serving a template
        // on a shard that has never been observed or hinted. With no
        // replicas that is the cold recompute (full-latent minus the
        // typical masked pass). With R >= 2 it is one replica read —
        // write-through then makes the serving shard host-resident —
        // so non-owner shards price at the transfer cost, not the
        // recompute. That keeps them explorable: a template thrashing
        // between two oversubscribed owners measures the same promote
        // cost the prior quotes, and the churn tie-break can diffuse
        // it to a quiet non-owner where the copy actually sticks.
        let typical_secs = |ratio: f64| {
            engine
                .step_latency(&cost, &[BatchItem { mask_ratio: ratio }])
                .as_secs_f64()
                * full_steps as f64
        };
        let cold_prior_secs = (typical_secs(1.0) - typical_secs(config.mean_mask_ratio)).max(0.0);
        let miss_prior_secs = if config.replicas >= 2 {
            (config.template_bytes as f64 / store_config.disk_read_bw).min(cold_prior_secs)
        } else {
            cold_prior_secs
        };
        let feedback = CacheFeedback::new(total_slots, 0.3, miss_prior_secs);
        let scale_interval = SimDuration::from_secs_f64(config.scale_interval_secs.max(0.001));
        let deadline_secs = config.deadline_secs;
        let timeline = GoodputTimeline::new(config.recovery_window_secs);
        let first_fault_secs = config.faults.first_fault_at().map(|t| t.as_secs_f64());
        let arrivals_end_secs = trace
            .trace
            .requests
            .last()
            .map(|r| r.arrival().as_secs_f64())
            .unwrap_or(0.0);
        let mut world = World {
            trace,
            shards,
            router,
            store,
            cost,
            engine,
            config,
            deadline,
            actions,
            templates,
            registry: HashMap::new(),
            next_seq: 0,
            parked: VecDeque::new(),
            timeline,
            spills: 0,
            cache_hits: 0,
            failover_hits: 0,
            cache_misses: 0,
            rerouted: 0,
            crash_failed: 0,
            re_primed: 0,
            feedback,
            live_popularity: HashMap::new(),
            cache_fetch_hist: Histogram::new(0.0, hist_hi, 512).expect("valid geometry"),
            replans: 0,
            last_completion: SimTime::ZERO,
            inflight: 0,
            next_arrival: 0,
        };
        // Seed the feedback priors from the initial placement, so
        // feedback routing starts aligned with the directory instead
        // of learning it from misses.
        world.refresh_feedback_hints();
        let mut sim: Simulation<FleetEv, Q> = Simulation::with_scheduler(queue);
        for (i, req) in trace.trace.requests.iter().enumerate() {
            sim.queue_mut()
                .schedule_at(req.arrival(), FleetEv::Arrival(i));
        }
        for (ix, &(at, _)) in world.actions.iter().enumerate() {
            sim.queue_mut().schedule_at(at, FleetEv::Fault(ix));
        }
        if !trace.trace.is_empty() {
            sim.queue_mut()
                .schedule_after(scale_interval, FleetEv::ScaleTick);
            if world.store.reacts_to_popularity() {
                sim.queue_mut().schedule_after(
                    SimDuration::from_secs_f64(world.config.replan_interval_secs.max(0.001)),
                    FleetEv::Replan,
                );
            }
        }
        sim.run(&mut world);
        // Requests still parked when the run ends never found a
        // routable shard: terminal, and accounted.
        let parked_failed = world.parked.len() as u64;
        world.parked.clear();
        // Conservation: every trace request must be accounted exactly
        // once — completed, shed, rejected, crash-failed, or parked.
        let served_total: u64 = world.shards.iter().map(|s| s.served).sum();
        let shed_total: u64 = world.shards.iter().map(|s| s.shed).sum();
        let dr_total: u64 = world.shards.iter().map(|s| s.deadline_rejected).sum();
        assert_eq!(
            served_total + shed_total + dr_total + world.crash_failed + parked_failed,
            trace.trace.len() as u64,
            "fleet dropped requests silently during churn"
        );
        // Roll up.
        let makespan_secs = world.last_completion.as_secs_f64();
        let window_secs = makespan_secs.max(1e-9);
        let shard_reports: Vec<ShardSloReport> = world
            .shards
            .iter()
            .enumerate()
            .map(|(sx, s)| ShardSloReport {
                shard: sx as u32,
                report: SloReport {
                    label: format!("shard-{sx}"),
                    deadline_secs,
                    submitted: s.submitted,
                    served: s.served,
                    served_within_deadline: s.served_within_deadline,
                    shed: s.shed,
                    deadline_rejected: s.deadline_rejected,
                    other_rejected: s.other_rejected,
                    goodput_rps: s.served as f64 / window_secs,
                    goodput_at_deadline_rps: s.served_within_deadline as f64 / window_secs,
                    p95_latency_secs: s.latency_hist.percentile(0.95),
                    mean_latency_secs: s.latency_hist.mean(),
                    rungs: s
                        .rung_served
                        .iter()
                        .map(|&(label, served)| fps_metrics::RungServed::new(label, served, None))
                        .collect(),
                    stages: Vec::new(),
                    bubble_fraction: None,
                },
                latency_hist: s.latency_hist.clone(),
                queue_wait_hist: s.queue_wait_hist.clone(),
            })
            .collect();
        let store_stats = world.store.stats();
        let cache_counters = FleetCacheCounters {
            local_hits: world.cache_hits,
            failover_hits: world.failover_hits,
            misses: world.cache_misses,
            breaker_short_circuits: store_stats.breaker_short_circuits,
            re_primes: world.re_primed,
        };
        // Per-template request counts, read through the sorted template
        // universe for a deterministic histogram.
        let counts: Vec<(u64, u64)> = world
            .templates
            .iter()
            .map(|&t| (t, world.live_popularity.get(&t).copied().unwrap_or(0)))
            .collect();
        let fleet = FleetSloReport::merge("fleet", window_secs, &shard_reports)
            .expect("uniform histogram geometry")
            .with_cache(cache_counters)
            .with_popularity(PopularityHistogram::from_counts(&counts, 16));
        let recovery = first_fault_secs.and_then(|fault_at| {
            FleetRecoveryReport::analyze(&world.timeline, fault_at, arrivals_end_secs, 0.9).map(
                |r| {
                    r.with_counters(
                        world.rerouted,
                        world.failover_hits,
                        world.re_primed,
                        world.crash_failed,
                        store_stats.breaker_short_circuits,
                    )
                },
            )
        });
        FleetReport {
            strategy,
            policy,
            shard_reports,
            fleet,
            cache_hits: world.cache_hits,
            failover_hits: world.failover_hits,
            cache_misses: world.cache_misses,
            spills: world.spills,
            rerouted: world.rerouted,
            crash_failed: world.crash_failed,
            parked_failed,
            re_primed: world.re_primed,
            breaker_short_circuits: store_stats.breaker_short_circuits,
            replans: world.replans,
            replica_evictions: world.store.replica_evictions(),
            cache_fetch_p95_secs: world.cache_fetch_hist.percentile(0.95),
            scale_ups: world
                .shards
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::ups)
                .sum(),
            scale_downs: world
                .shards
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::downs)
                .sum(),
            scale_down_vetoes: world
                .shards
                .iter()
                .filter_map(|s| s.scaler.as_ref())
                .map(Autoscaler::vetoed_downs)
                .sum(),
            final_workers: world.shards.iter().map(|s| s.pools.len()).collect(),
            makespan_secs,
            events_processed: sim.events_processed(),
            recovery,
        }
    }
}

/// Model defaults live behind a helper so the simulator has one place
/// naming which paper model the analytic costs are calibrated to.
struct ModelDefaults;

impl ModelDefaults {
    fn paper() -> fps_diffusion::ModelConfig {
        fps_diffusion::ModelConfig::paper_sdxl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_chaos::{FleetFaultEvent, FleetFaultProfile};
    use fps_workload::{FleetTraceConfig, TenantSpec};

    fn small_trace() -> FleetTrace {
        FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![TenantSpec::new("t", 3.0, 48)],
            duration_secs: 120.0,
            diurnal: None,
            seed: 42,
        })
    }

    fn config(strategy: RouteStrategy) -> FleetConfig {
        FleetConfig {
            shards: 4,
            workers_per_shard: 2,
            max_batch: 4,
            cache_capacity: 12,
            strategy,
            ..Default::default()
        }
    }

    fn secs(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn conservation_holds_per_shard_and_fleet() {
        let trace = small_trace();
        let r = FleetSim::run(
            config(RouteStrategy::Affinity { load_factor: 1.25 }),
            &trace,
        );
        assert_eq!(r.fleet.fleet.submitted, trace.trace.len() as u64);
        assert_eq!(r.fleet.fleet.lost(), 0, "requests vanished");
        for s in &r.shard_reports {
            assert_eq!(s.report.lost(), 0, "shard {} lost requests", s.shard);
        }
        assert!(r.fleet.fleet.served > 0);
        assert!(r.makespan_secs > 0.0);
        // Two events per request plus scale ticks.
        assert!(r.events_processed >= 2 * r.fleet.fleet.served);
    }

    #[test]
    fn replays_are_byte_identical_on_both_schedulers() {
        let trace = small_trace();
        let cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        let a = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        let b = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, b, "same scheduler, same bytes");
        let heap = FleetSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, heap, "calendar and heap runs diverged");
    }

    #[test]
    fn affinity_beats_round_robin_on_hit_rate() {
        let trace = small_trace();
        let aff = FleetSim::run(
            config(RouteStrategy::Affinity { load_factor: 1.25 }),
            &trace,
        );
        let rr = FleetSim::run(config(RouteStrategy::RoundRobin), &trace);
        assert!(
            aff.hit_rate() > rr.hit_rate(),
            "affinity {} vs round-robin {}",
            aff.hit_rate(),
            rr.hit_rate()
        );
    }

    #[test]
    fn autoscaler_grows_pools_under_pressure() {
        let trace = FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![TenantSpec::new("hot", 12.0, 32)],
            duration_secs: 300.0,
            diurnal: None,
            seed: 9,
        });
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.workers_per_shard = 1;
        cfg.autoscaler = Some(AutoscalerConfig {
            min_workers: 1,
            max_workers: 6,
            up_ticks: 1,
            cooldown: SimDuration::from_secs_f64(10.0),
            ..Default::default()
        });
        let r = FleetSim::run(cfg, &trace);
        assert!(r.scale_ups > 0, "no scale-ups under overload");
        assert!(r.final_workers.iter().any(|&w| w > 1));
    }

    #[test]
    fn empty_trace_produces_an_empty_report() {
        let trace = FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![],
            duration_secs: 10.0,
            diurnal: None,
            seed: 0,
        });
        let r = FleetSim::run(config(RouteStrategy::RoundRobin), &trace);
        assert_eq!(r.fleet.fleet.submitted, 0);
        assert_eq!(r.events_processed, 0);
    }

    #[test]
    fn crash_reroutes_in_flight_without_losing_requests() {
        let trace = small_trace();
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.faults = FleetFaultPlan::new(
            1,
            vec![FleetFaultEvent {
                at: secs(40.0),
                kind: FleetFaultKind::ShardCrash {
                    shard: 0,
                    downtime: SimDuration::from_secs_f64(30.0),
                },
            }],
        );
        let r = FleetSim::run(cfg, &trace);
        // The run-level conservation assert already fired inside run();
        // check the crash actually exercised the machinery.
        assert!(r.rerouted > 0 || r.shard_reports[0].report.submitted == 0);
        assert_eq!(r.fleet.fleet.lost(), 0);
        assert!(r.recovery.is_some(), "faulted runs report recovery");
    }

    #[test]
    fn replicas_convert_misses_into_failover_hits_under_crash() {
        let trace = small_trace();
        let mut base = config(RouteStrategy::Affinity { load_factor: 1.25 });
        base.faults = FleetFaultProfile::CrashStorm.plan(7, secs(120.0), 4);
        let mut replicated = base.clone();
        replicated.replicas = 2;
        let solo = FleetSim::run(base, &trace);
        let dup = FleetSim::run(replicated, &trace);
        assert_eq!(solo.failover_hits, 0, "R=1 has nowhere to fail over");
        assert!(dup.failover_hits > 0, "R=2 must fail over under crashes");
        assert!(
            dup.effective_hit_rate() > solo.effective_hit_rate(),
            "replicas {} vs baseline {}",
            dup.effective_hit_rate(),
            solo.effective_hit_rate()
        );
    }

    #[test]
    fn faulted_runs_replay_byte_identically() {
        let trace = small_trace();
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.faults = FleetFaultProfile::CrashStorm.plan(11, secs(120.0), 4);
        cfg.replicas = 2;
        let a = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        let b = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, b);
        let heap = FleetSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, heap, "faulted calendar and heap runs diverged");
    }

    #[test]
    fn graceful_leave_drains_and_join_takes_over() {
        let trace = small_trace();
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.replicas = 2;
        cfg.faults = FleetFaultPlan::new(
            3,
            vec![
                FleetFaultEvent {
                    at: secs(30.0),
                    kind: FleetFaultKind::ShardLeave { shard: 1 },
                },
                FleetFaultEvent {
                    at: secs(50.0),
                    kind: FleetFaultKind::ShardJoin { shard: 4 },
                },
            ],
        );
        let r = FleetSim::run(cfg, &trace);
        assert_eq!(r.crash_failed, 0, "graceful leave kills nothing");
        assert_eq!(r.fleet.fleet.lost(), 0);
        // The joiner exists in the report and took traffic.
        assert_eq!(r.shard_reports.len(), 5);
        assert!(r.shard_reports[4].report.submitted > 0);
        assert!(r.re_primed > 0, "join re-primes moved templates");
    }

    #[test]
    fn zero_routable_shards_parks_then_drains() {
        // One shard, crashed mid-run: requests park, then drain at
        // rejoin; stale ones deadline-reject rather than vanish.
        let trace = FleetTrace::generate(&FleetTraceConfig {
            tenants: vec![TenantSpec::new("t", 2.0, 8)],
            duration_secs: 60.0,
            diurnal: None,
            seed: 5,
        });
        let mut cfg = config(RouteStrategy::RoundRobin);
        cfg.shards = 1;
        cfg.faults = FleetFaultPlan::new(
            2,
            vec![FleetFaultEvent {
                at: secs(20.0),
                kind: FleetFaultKind::ShardCrash {
                    shard: 0,
                    downtime: SimDuration::from_secs_f64(15.0),
                },
            }],
        );
        let r = FleetSim::run(cfg, &trace);
        // Conservation held (asserted in run); parked requests either
        // drained into terminal outcomes or were flushed as failed.
        assert_eq!(r.fleet.fleet.lost(), 0);
        assert!(r.fleet.fleet.served > 0);
    }

    #[test]
    fn popularity_placement_under_budget_replays_identically_through_chaos() {
        let trace = small_trace();
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.replicas = 2;
        cfg.placement = PlacementSpec::Popularity;
        cfg.replica_budget_templates = Some(12);
        cfg.replan_interval_secs = 20.0;
        cfg.faults = FleetFaultProfile::CrashStorm.plan(7, secs(120.0), 4);
        let a = FleetSim::run(cfg.clone(), &trace);
        assert_eq!(a.policy, "popularity");
        assert!(a.replans > 0, "popularity policy never re-planned");
        assert_eq!(a.fleet.fleet.lost(), 0);
        let a_json = a.to_json().to_string_compact();
        let b = FleetSim::run(cfg.clone(), &trace)
            .to_json()
            .to_string_compact();
        let heap = FleetSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a_json, b, "popularity replay diverged");
        assert_eq!(a_json, heap, "calendar and heap runs diverged");
    }

    #[test]
    fn ring_order_never_replans_and_reports_its_policy() {
        let trace = small_trace();
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.replicas = 2;
        let r = FleetSim::run(cfg, &trace);
        assert_eq!(r.policy, "ring-order");
        assert_eq!(r.replans, 0, "ring order must never schedule a re-plan");
        assert_eq!(r.replica_evictions, 0, "unbounded budget never evicts");
    }

    #[test]
    fn feedback_affinity_replays_identically_and_serves() {
        let trace = small_trace();
        let mut cfg = config(RouteStrategy::FeedbackAffinity { load_factor: 1.25 });
        cfg.replicas = 2;
        let a = FleetSim::run(cfg.clone(), &trace);
        assert_eq!(a.strategy, "feedback-affinity");
        assert!(a.fleet.fleet.served > 0);
        assert!(a.cache_fetch_p95_secs >= 0.0);
        let a_json = a.to_json().to_string_compact();
        let heap = FleetSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a_json, heap, "feedback routing diverged across schedulers");
    }

    #[test]
    fn disk_degrade_is_health_silent_but_inflates_fetch_costs() {
        let trace = small_trace();
        let run = |faults: FleetFaultPlan| {
            let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
            cfg.replicas = 2;
            // Host tier far smaller than the working set: promotes recur.
            cfg.cache_capacity = 4;
            cfg.faults = faults;
            FleetSim::run(cfg, &trace)
        };
        let healthy = run(FleetFaultPlan::none());
        let plan = || {
            FleetFaultPlan::new(
                3,
                (0..2)
                    .map(|shard| FleetFaultEvent {
                        at: secs(5.0),
                        kind: FleetFaultKind::DiskDegrade {
                            shard,
                            factor: 8.0,
                            duration: SimDuration::from_secs_f64(110.0),
                        },
                    })
                    .collect(),
            )
        };
        let gray = run(plan());
        // Gray failure: every shard keeps serving (health checks see
        // nothing, no request is lost) ...
        assert_eq!(gray.fleet.fleet.lost(), 0);
        for s in &gray.shard_reports {
            assert!(s.report.submitted > 0, "shard {} stopped serving", s.shard);
        }
        // ... but promotes on the degraded shards cost 8x, which the
        // fetch-cost histogram must surface.
        assert!(
            gray.cache_fetch_p95_secs > healthy.cache_fetch_p95_secs,
            "degraded p95 {} not above healthy {}",
            gray.cache_fetch_p95_secs,
            healthy.cache_fetch_p95_secs
        );
        // Deterministic across schedulers like every other fault.
        let a_json = gray.to_json().to_string_compact();
        let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
        cfg.replicas = 2;
        cfg.cache_capacity = 4;
        cfg.faults = plan();
        let heap = FleetSim::run_on_heap(cfg, &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a_json, heap, "disk degrade diverged across schedulers");
    }
}
