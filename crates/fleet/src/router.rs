//! Fleet-level request routing: which *shard* serves a request.
//!
//! Affinity routing hashes the request's `template_id` onto the ring so
//! repeat edits of one template land where its activations are cached.
//! Raw consistent hashing, though, happily melts a shard when Zipf
//! skew concentrates traffic on one hot template; the affinity policy
//! is therefore consistent hashing with *bounded load* (in the spirit
//! of Mirrokni et al.): a shard may hold at most `load_factor ×` its
//! own service capacity in outstanding requests, and overflow walks
//! the key's preference list so each hot key spills to a consistent
//! secondary (whose cache then warms too). The bound is absolute —
//! tied to lanes, not to the fleet-average backlog — because each
//! shard's admission control sheds on its own rate and queue depth: a
//! backlog-relative bound grows exactly when the fleet queues up, and
//! would keep concentrating load on the hot shard until admission
//! sheds it.
//!
//! **Feedback affinity** goes one step further: among the candidates
//! under the load bound, it asks the [`CacheFeedback`] signal what the
//! template actually *costs* on each shard (measured hit/fetch EWMAs,
//! seeded by placement hints) and picks the cheapest. Blind affinity
//! assumes the preference order still matches where the bytes are;
//! after churn, a wipe, or a budget-refused admission it does not, and
//! the measured costs say so.

use std::sync::{Arc, Mutex};

use fps_metrics::{CacheFeedback, FetchOutcome};
use fps_serving::{Router, WorkerView};
use fps_simtime::SimTime;
use fps_workload::RequestSpec;

use crate::ring::HashRing;

/// What the fleet router sees of each shard when placing a request.
#[derive(Debug, Clone, Copy)]
pub struct ShardLoad {
    /// Shard id (must be on the ring for affinity routing).
    pub shard: u32,
    /// Requests admitted to the shard and not yet completed.
    pub outstanding: usize,
    /// Concurrent service lanes (workers × batch slots): the capacity
    /// the affinity load bound multiplies.
    pub lanes: usize,
}

/// Shard-selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteStrategy {
    /// Bounded-load consistent hashing on `template_id`.
    Affinity {
        /// Per-shard cap on outstanding requests as a multiple of the
        /// shard's service lanes (must exceed 1; ~1.1–1.25 keeps hot
        /// shards below their admission shed thresholds).
        load_factor: f64,
    },
    /// Ignore templates; cycle through shards.
    RoundRobin,
    /// Ignore templates; pick pseudo-randomly by request id.
    Random,
    /// Bounded-load consistent hashing that breaks ties among
    /// under-bound candidates by measured cache cost: the request goes
    /// to the shard where its template is cheapest to serve, per the
    /// [`CacheFeedback`] fetch-cost EWMAs.
    FeedbackAffinity {
        /// Same per-shard cap as [`RouteStrategy::Affinity`].
        load_factor: f64,
    },
}

impl RouteStrategy {
    /// Policy name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Affinity { .. } => "affinity",
            Self::RoundRobin => "round-robin",
            Self::Random => "random",
            Self::FeedbackAffinity { .. } => "feedback-affinity",
        }
    }
}

/// Routing outcome: the chosen shard, and whether affinity had to
/// spill past the key's primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChoice {
    /// The shard to serve on.
    pub shard: u32,
    /// True when affinity routing bypassed the primary because it was
    /// over its load bound.
    pub spilled: bool,
}

/// Fleet router: one strategy plus the ring and round-robin cursor.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    strategy: RouteStrategy,
    ring: HashRing,
    rr_next: usize,
}

impl FleetRouter {
    /// A router over the given ring.
    pub fn new(strategy: RouteStrategy, ring: HashRing) -> Self {
        Self {
            strategy,
            ring,
            rr_next: 0,
        }
    }

    /// The ring (for cache pre-priming by primary ownership).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Adds a shard to the ring mid-run (join/rejoin); minimal-churn
    /// rebalancing moves only the keys the new shard now owns.
    pub fn add_shard(&mut self, shard: u32) {
        self.ring.add_shard(shard);
    }

    /// Removes a shard from the ring mid-run (leave/crash); only the
    /// departed shard's keys move.
    pub fn remove_shard(&mut self, shard: u32) {
        self.ring.remove_shard(shard);
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> RouteStrategy {
        self.strategy
    }

    /// Chooses a shard for `template_id` given current per-shard load.
    /// `shards` must be non-empty and list every live shard.
    /// `feedback` is consulted only by
    /// [`RouteStrategy::FeedbackAffinity`]; pass `None` (or anything)
    /// for the blind strategies.
    pub fn choose(
        &mut self,
        request_id: u64,
        template_id: u64,
        shards: &[ShardLoad],
        feedback: Option<&CacheFeedback>,
    ) -> ShardChoice {
        debug_assert!(!shards.is_empty());
        match self.strategy {
            RouteStrategy::RoundRobin => {
                let s = shards[self.rr_next % shards.len()].shard;
                self.rr_next = self.rr_next.wrapping_add(1);
                ShardChoice {
                    shard: s,
                    spilled: false,
                }
            }
            RouteStrategy::Random => {
                // Hash the request id so the stream is deterministic
                // but uncorrelated with template popularity.
                let mut x = request_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                ShardChoice {
                    shard: shards[(x % shards.len() as u64) as usize].shard,
                    spilled: false,
                }
            }
            RouteStrategy::Affinity { load_factor } => {
                let pref = self.ring.preference(template_id);
                for (i, s) in pref.iter().enumerate() {
                    if let Some(load) = shards.iter().find(|l| l.shard == *s) {
                        // Capacity-proportional bound, ≥ 1 so an empty
                        // fleet still admits.
                        let cap = ((load_factor * load.lanes as f64).ceil() as usize).max(1);
                        if load.outstanding < cap {
                            return ShardChoice {
                                shard: *s,
                                spilled: i > 0,
                            };
                        }
                    }
                }
                // Every listed shard is at its bound (or the ring is
                // out of sync): fall back to least-relative-load, ties
                // by shard id for determinism.
                let s = shards
                    .iter()
                    .min_by_key(|l| (l.outstanding.saturating_mul(1024) / l.lanes.max(1), l.shard))
                    .expect("non-empty")
                    .shard;
                ShardChoice {
                    shard: s,
                    spilled: true,
                }
            }
            RouteStrategy::FeedbackAffinity { load_factor } => {
                // Same candidate set as blind affinity — the walk down
                // the preference list, load-bounded — but candidates
                // rank by the feedback routing key: pair cost first,
                // shard churn to break ties, preference rank last (so
                // with no signal this degrades to exactly blind
                // affinity).
                let pref = self.ring.preference(template_id);
                let mut best: Option<((f64, f64), usize, u32)> = None;
                for (i, s) in pref.iter().enumerate() {
                    if let Some(load) = shards.iter().find(|l| l.shard == *s) {
                        let cap = ((load_factor * load.lanes as f64).ceil() as usize).max(1);
                        if load.outstanding < cap {
                            let key = feedback
                                .map(|f| f.routing_key(*s, template_id))
                                .unwrap_or((0.0, 0.0));
                            let better = match best {
                                None => true,
                                Some((bk, bi, _)) => {
                                    match key.0.total_cmp(&bk.0).then(key.1.total_cmp(&bk.1)) {
                                        std::cmp::Ordering::Less => true,
                                        std::cmp::Ordering::Equal => i < bi,
                                        std::cmp::Ordering::Greater => false,
                                    }
                                }
                            };
                            if better {
                                best = Some((key, i, *s));
                            }
                        }
                    }
                }
                if let Some((_, rank, shard)) = best {
                    return ShardChoice {
                        shard,
                        spilled: rank > 0,
                    };
                }
                let s = shards
                    .iter()
                    .min_by_key(|l| (l.outstanding.saturating_mul(1024) / l.lanes.max(1), l.shard))
                    .expect("non-empty")
                    .shard;
                ShardChoice {
                    shard: s,
                    spilled: true,
                }
            }
        }
    }
}

/// [`fps_serving::Router`] adapter: template-affinity placement over
/// *workers* instead of shards, for the ThreadedServer path where one
/// process owns all workers and affinity decides which worker's
/// activation cache a request warms. Builds a ring over the worker ids
/// it sees; bounded-load spillover uses outstanding request counts
/// from the views.
#[derive(Debug)]
pub struct TemplateAffinityRouter {
    ring: HashRing,
    known: Vec<usize>,
    load_factor: f64,
    /// Shared cache feedback; when present, under-bound candidates are
    /// ranked by measured cost (the worker-level analogue of
    /// [`RouteStrategy::FeedbackAffinity`]). Shared behind a mutex
    /// because the ThreadedServer's result loop records outcomes while
    /// the control plane routes.
    feedback: Option<Arc<Mutex<CacheFeedback>>>,
}

impl TemplateAffinityRouter {
    /// An affinity router with the classic 1.25 load bound.
    pub fn new() -> Self {
        Self::with_load_factor(1.25)
    }

    /// An affinity router with an explicit load bound (> 1).
    pub fn with_load_factor(load_factor: f64) -> Self {
        Self {
            ring: HashRing::default(),
            known: Vec::new(),
            load_factor: load_factor.max(1.01),
            feedback: None,
        }
    }

    /// Attaches a shared [`CacheFeedback`]: routing then prefers the
    /// under-bound worker where the template measured cheapest. Record
    /// outcomes into the same handle (e.g. via
    /// [`TemplateAffinityRouter::record_outcome`]) as results complete.
    pub fn with_feedback(mut self, feedback: Arc<Mutex<CacheFeedback>>) -> Self {
        self.feedback = Some(feedback);
        self
    }

    /// The shared feedback handle, when one is attached.
    pub fn feedback(&self) -> Option<Arc<Mutex<CacheFeedback>>> {
        self.feedback.clone()
    }

    /// Records one served request's cache outcome against the shared
    /// feedback (no-op without one). `worker` is the worker id the
    /// request served on.
    pub fn record_outcome(
        feedback: &Arc<Mutex<CacheFeedback>>,
        worker: usize,
        template_id: u64,
        outcome: FetchOutcome,
    ) {
        feedback.lock().expect("feedback lock poisoned").observe(
            worker as u32,
            template_id,
            outcome,
        );
    }

    fn sync_ring(&mut self, workers: &[WorkerView]) {
        for w in workers {
            if !self.known.contains(&w.id) {
                self.known.push(w.id);
                self.ring.add_shard(w.id as u32);
            }
        }
    }
}

impl Default for TemplateAffinityRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Router for TemplateAffinityRouter {
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        if workers.is_empty() {
            return 0;
        }
        self.sync_ring(workers);
        match self.feedback.as_ref() {
            None => {
                for s in self.ring.preference(req.template_id) {
                    if let Some(w) = workers.iter().find(|w| w.id == s as usize) {
                        let cap =
                            ((self.load_factor * w.max_batch.max(1) as f64).ceil() as usize).max(1);
                        if w.outstanding.len() < cap {
                            return w.id;
                        }
                    }
                }
            }
            Some(feedback) => {
                // Rank under-bound preference candidates by the
                // feedback routing key (pair cost, then shard churn);
                // with no observations the keys tie and the preference
                // rank decides, degrading to blind affinity.
                let fb = feedback.lock().expect("feedback lock poisoned");
                let mut best: Option<((f64, f64), usize, usize)> = None;
                for (i, s) in self
                    .ring
                    .preference(req.template_id)
                    .into_iter()
                    .enumerate()
                {
                    if let Some(w) = workers.iter().find(|w| w.id == s as usize) {
                        let cap =
                            ((self.load_factor * w.max_batch.max(1) as f64).ceil() as usize).max(1);
                        if w.outstanding.len() < cap {
                            let key = fb.routing_key(s, req.template_id);
                            let better = match best {
                                None => true,
                                Some((bk, bi, _)) => {
                                    match key.0.total_cmp(&bk.0).then(key.1.total_cmp(&bk.1)) {
                                        std::cmp::Ordering::Less => true,
                                        std::cmp::Ordering::Equal => i < bi,
                                        std::cmp::Ordering::Greater => false,
                                    }
                                }
                            };
                            if better {
                                best = Some((key, i, w.id));
                            }
                        }
                    }
                }
                if let Some((_, _, id)) = best {
                    return id;
                }
            }
        }
        workers
            .iter()
            .min_by_key(|w| (w.outstanding.len(), w.id))
            .map(|w| w.id)
            .expect("non-empty")
    }

    fn name(&self) -> &'static str {
        if self.feedback.is_some() {
            "template-affinity+feedback"
        } else {
            "template-affinity"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_serving::WorkerHealth;
    use fps_workload::trace::MaskShapeSpec;

    fn loads(outstanding: &[usize]) -> Vec<ShardLoad> {
        outstanding
            .iter()
            .enumerate()
            .map(|(i, &o)| ShardLoad {
                shard: i as u32,
                outstanding: o,
                lanes: 8,
            })
            .collect()
    }

    #[test]
    fn affinity_is_sticky_per_template() {
        let mut r = FleetRouter::new(
            RouteStrategy::Affinity { load_factor: 1.25 },
            HashRing::with_shards(4),
        );
        let ls = loads(&[0, 0, 0, 0]);
        for template in 0..20u64 {
            let first = r.choose(0, template, &ls, None);
            for req in 1..5u64 {
                assert_eq!(r.choose(req, template, &ls, None), first);
            }
            assert!(!first.spilled);
            assert_eq!(first.shard, r.ring().primary(template).unwrap());
        }
    }

    #[test]
    fn bounded_load_spills_a_hot_template() {
        let mut r = FleetRouter::new(
            RouteStrategy::Affinity { load_factor: 1.25 },
            HashRing::with_shards(4),
        );
        let template = 7u64;
        let primary = r.ring().primary(template).unwrap();
        // Primary drowning, everyone else idle.
        let mut ls = loads(&[1, 1, 1, 1]);
        ls[primary as usize].outstanding = 100;
        let got = r.choose(0, template, &ls, None);
        assert_ne!(got.shard, primary);
        assert!(got.spilled);
        // The spill target is the key's consistent secondary.
        assert_eq!(got.shard, r.ring().preference(template)[1]);
    }

    #[test]
    fn round_robin_cycles_and_random_is_deterministic() {
        let ls = loads(&[0, 0, 0]);
        let mut rr = FleetRouter::new(RouteStrategy::RoundRobin, HashRing::with_shards(3));
        let picks: Vec<u32> = (0..6).map(|i| rr.choose(i, 99, &ls, None).shard).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        let mut ra = FleetRouter::new(RouteStrategy::Random, HashRing::with_shards(3));
        let a: Vec<u32> = (0..20).map(|i| ra.choose(i, 99, &ls, None).shard).collect();
        let mut rb = FleetRouter::new(RouteStrategy::Random, HashRing::with_shards(3));
        let b: Vec<u32> = (0..20).map(|i| rb.choose(i, 99, &ls, None).shard).collect();
        assert_eq!(a, b, "random strategy must be replayable");
        // And it actually spreads.
        assert!(a.iter().any(|&s| s != a[0]));
    }

    fn view(id: usize, outstanding: usize) -> WorkerView {
        WorkerView {
            id,
            outstanding: (0..outstanding)
                .map(|_| fps_serving::worker::OutstandingReq {
                    mask_ratio: 0.2,
                    steps_left: 50,
                })
                .collect(),
            max_batch: 4,
            model_tokens: 4096,
            health: WorkerHealth::Healthy,
        }
    }

    fn spec(id: u64, template: u64) -> RequestSpec {
        RequestSpec {
            id,
            arrival_ns: 0,
            template_id: template,
            mask_ratio: 0.2,
            mask_shape: MaskShapeSpec::Rect,
            seed: id,
        }
    }

    #[test]
    fn worker_adapter_is_sticky_and_bounded() {
        let mut r = TemplateAffinityRouter::new();
        let ws = vec![view(0, 0), view(1, 0), view(2, 0)];
        let first = r.route(&spec(0, 5), &ws, SimTime::ZERO);
        for i in 1..5 {
            assert_eq!(r.route(&spec(i, 5), &ws, SimTime::ZERO), first);
        }
        // Overload the sticky worker: the route must move off it.
        let mut hot = ws.clone();
        hot[first] = view(first, 50);
        let moved = r.route(&spec(9, 5), &hot, SimTime::ZERO);
        assert_ne!(moved, first);
        assert_eq!(r.name(), "template-affinity");
    }

    #[test]
    fn worker_adapter_returns_ids_not_positions() {
        let mut r = TemplateAffinityRouter::new();
        // Sparse ids, as a health-filtered slice would present.
        let ws = vec![view(3, 0), view(7, 0)];
        for t in 0..10 {
            let got = r.route(&spec(t, t), &ws, SimTime::ZERO);
            assert!(got == 3 || got == 7);
        }
    }

    #[test]
    fn feedback_affinity_without_signal_matches_blind_affinity() {
        let ls = loads(&[0, 0, 0, 0]);
        let mut blind = FleetRouter::new(
            RouteStrategy::Affinity { load_factor: 1.25 },
            HashRing::with_shards(4),
        );
        let mut fb = FleetRouter::new(
            RouteStrategy::FeedbackAffinity { load_factor: 1.25 },
            HashRing::with_shards(4),
        );
        for template in 0..32u64 {
            assert_eq!(
                fb.choose(template, template, &ls, None),
                blind.choose(template, template, &ls, None),
                "no feedback signal must degrade to blind affinity"
            );
        }
    }

    #[test]
    fn feedback_affinity_prefers_the_cheapest_under_bound_shard() {
        let mut r = FleetRouter::new(
            RouteStrategy::FeedbackAffinity { load_factor: 1.25 },
            HashRing::with_shards(4),
        );
        let template = 7u64;
        let pref = r.ring().preference(template);
        let (primary, secondary) = (pref[0], pref[1]);
        // The primary lost its copy (say a budget-refused admission):
        // the feedback signal prices it at the miss prior while the
        // secondary holds a replica.
        let mut fb = CacheFeedback::new(4, 0.3, 5.0);
        fb.hint_placement(template, &[secondary, primary], 0.0, 4.0);
        fb.observe(primary, template, FetchOutcome::Miss { cost_secs: 5.0 });
        let ls = loads(&[0, 0, 0, 0]);
        let got = r.choose(0, template, &ls, Some(&fb));
        assert_eq!(got.shard, secondary, "routes to the shard with the bytes");
        assert!(got.spilled);
        // Over-bound shards stay excluded even when cheapest.
        let mut hot = loads(&[1, 1, 1, 1]);
        hot[secondary as usize].outstanding = 100;
        let got = r.choose(1, template, &hot, Some(&fb));
        assert_ne!(got.shard, secondary, "load bound beats cache cost");
    }

    #[test]
    fn worker_adapter_feedback_steers_to_the_warm_worker() {
        let fb = Arc::new(Mutex::new(CacheFeedback::new(3, 0.3, 5.0)));
        let mut r = TemplateAffinityRouter::new().with_feedback(Arc::clone(&fb));
        assert_eq!(r.name(), "template-affinity+feedback");
        let ws = vec![view(0, 0), view(1, 0), view(2, 0)];
        let blind = TemplateAffinityRouter::new().route(&spec(0, 5), &ws, SimTime::ZERO);
        let warm = (blind + 1) % 3;
        fb.lock()
            .unwrap()
            .hint_placement(5, &[warm as u32], 0.0, 4.0);
        TemplateAffinityRouter::record_outcome(
            &fb,
            blind,
            5,
            FetchOutcome::Miss { cost_secs: 5.0 },
        );
        let got = r.route(&spec(1, 5), &ws, SimTime::ZERO);
        assert_eq!(got, warm, "feedback moves the route onto the warm worker");
    }
}
