//! Sharded fleet serving for FlashPS.
//!
//! The ROADMAP's north star is "thousands of workers, millions of
//! simulated users"; one ControlPlane driving one cluster doesn't get
//! there. This crate adds the fleet layer above `fps-serving`:
//!
//! - [`ring`] — a consistent-hash ring with virtual nodes. Requests
//!   editing the same template hash to the shard whose activation
//!   cache holds its features, with exact minimal-churn rebalancing on
//!   shard join/leave (proptested key by key).
//! - [`router`] — shard selection: bounded-load template affinity
//!   (Fig. 16-right; InstGenIE) against round-robin and random
//!   baselines, plus a [`TemplateAffinityRouter`] adapter implementing
//!   `fps_serving::Router` for the wall-clock ThreadedServer path.
//! - [`autoscaler`] — hysteretic per-shard pool scaling from windowed
//!   SLO signals (shed rate, queue-wait p95, utilization).
//! - [`sim`] — the virtual-time [`FleetSim`]: one clock-generic
//!   ControlPlane per shard, analytic k-server worker pools (two
//!   events per request), per-shard LRU template caches, and
//!   histogram-merged fleet SLO rollups. Deterministic: same config,
//!   same bytes, on either event scheduler.

pub mod autoscaler;
pub mod ring;
pub mod router;
pub mod sim;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision, ShardSignal};
pub use ring::HashRing;
pub use router::{FleetRouter, RouteStrategy, ShardChoice, ShardLoad, TemplateAffinityRouter};
pub use sim::{FleetConfig, FleetEv, FleetReport, FleetSim};
