//! Sharded fleet serving for FlashPS.
//!
//! The ROADMAP's north star is "thousands of workers, millions of
//! simulated users"; one ControlPlane driving one cluster doesn't get
//! there. This crate adds the fleet layer above `fps-serving`:
//!
//! - [`ring`] — a consistent-hash ring with virtual nodes. Requests
//!   editing the same template hash to the shard whose activation
//!   cache holds its features, with exact minimal-churn rebalancing on
//!   shard join/leave (proptested key by key).
//! - [`router`] — shard selection: bounded-load template affinity
//!   (Fig. 16-right; InstGenIE) against round-robin and random
//!   baselines, plus a [`TemplateAffinityRouter`] adapter implementing
//!   `fps_serving::Router` for the wall-clock ThreadedServer path.
//! - autoscaling — the hysteretic pool scaler now lives in
//!   `fps_metrics::autoscaler` (it is shared with the stage-graph's
//!   per-stage pools); this crate re-exports it, and its
//!   [`ScaleGuard`] veto still never shrinks the last healthy shard
//!   while requests are parked.
//! - [`sim`] — the virtual-time [`FleetSim`]: one clock-generic
//!   ControlPlane per shard, analytic k-server worker pools (two
//!   events per request), an R-replicated activation store with
//!   breaker-guarded failover, and histogram-merged fleet SLO rollups.
//!   Fault plans from `fps-chaos` inject shard crashes, churn, gray
//!   failures, partitions, and cache wipes mid-run; recovery (time to
//!   recover, goodput-dip depth/area, reroute/failover counts) is
//!   reported first-class. Deterministic: same config, same bytes, on
//!   either event scheduler — faults included.

pub mod ring;
pub mod router;
pub mod sim;

pub use fps_metrics::autoscaler;
pub use fps_metrics::autoscaler::{
    Autoscaler, AutoscalerConfig, ScaleDecision, ScaleGuard, ShardSignal,
};
pub use ring::HashRing;
pub use router::{FleetRouter, RouteStrategy, ShardChoice, ShardLoad, TemplateAffinityRouter};
pub use sim::{FleetConfig, FleetEv, FleetReport, FleetSim};
