//! Consistent-hash ring with virtual nodes.
//!
//! Template affinity is the fleet's whole reason to exist: a request
//! editing template `T` should land on the shard whose activation
//! cache already holds `T`'s KV and latent features (Fig. 16-right;
//! InstGenIE makes the same argument for web-scale inpainting). A
//! consistent-hash ring gives that placement two properties a simple
//! `hash % n` cannot:
//!
//! - **Balance** — with enough virtual nodes per shard, each shard
//!   owns a near-equal arc of key space (proptested to a bound).
//! - **Minimal churn** — adding a shard moves only the keys that now
//!   hash to it (≈ K/n of them); removing a shard moves only its own
//!   keys. Everyone else's cache stays warm. Both properties are
//!   *exact* here, not statistical, and the proptests assert them
//!   key by key.

/// Number of ring points per shard. 64 keeps the max/mean arc ratio
/// comfortably under 1.5 for fleets up to a few hundred shards.
const VNODES: usize = 64;

/// SplitMix64: cheap, well-distributed, and stable across runs — the
/// ring must hash identically on every host for replays to agree.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over shard ids.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(ring_point, shard)` sorted by point; ties cannot collide in
    /// practice (64-bit points) but sort stably by shard regardless.
    points: Vec<(u64, u32)>,
    shards: Vec<u32>,
}

impl HashRing {
    /// A ring over shards `0..n`.
    pub fn with_shards(n: u32) -> Self {
        let mut ring = Self::default();
        for s in 0..n {
            ring.add_shard(s);
        }
        ring
    }

    /// Shards currently on the ring, in insertion order.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Adds a shard (no-op if present).
    pub fn add_shard(&mut self, shard: u32) {
        if self.shards.contains(&shard) {
            return;
        }
        self.shards.push(shard);
        for v in 0..VNODES {
            // Mix shard and vnode through distinct odd multipliers so
            // consecutive shard ids don't produce correlated points.
            let point = splitmix64(
                (shard as u64)
                    .wrapping_mul(0xA24B_AED4_963E_E407)
                    .wrapping_add((v as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25)),
            );
            self.points.push((point, shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard (no-op if absent).
    pub fn remove_shard(&mut self, shard: u32) {
        self.shards.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// The shard owning `key`: the first ring point clockwise from the
    /// key's hash. `None` on an empty ring.
    pub fn primary(&self, key: u64) -> Option<u32> {
        let h = splitmix64(key);
        let idx = self.points.partition_point(|&(p, _)| p < h);
        self.points
            .get(idx)
            .or_else(|| self.points.first())
            .map(|&(_, s)| s)
    }

    /// The key's preference list: distinct shards in ring order
    /// starting at the primary. Bounded-load routing walks this list
    /// when the primary is saturated, so spillover is deterministic
    /// and each overloaded key consistently spills to the *same*
    /// secondary (keeping the spill cache warm too).
    pub fn preference(&self, key: u64) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::with_capacity(self.shards.len());
        if self.points.is_empty() {
            return out;
        }
        let h = splitmix64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        for i in 0..self.points.len() {
            let (_, s) = self.points[(start + i) % self.points.len()];
            if !out.contains(&s) {
                out.push(s);
                if out.len() == self.shards.len() {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_ring_has_no_primary() {
        let ring = HashRing::default();
        assert!(ring.primary(42).is_none());
        assert!(ring.preference(42).is_empty());
        assert!(ring.is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::with_shards(1);
        for k in 0..100 {
            assert_eq!(ring.primary(k), Some(0));
        }
    }

    #[test]
    fn preference_lists_all_distinct_shards() {
        let ring = HashRing::with_shards(5);
        for k in 0..50 {
            let pref = ring.preference(k);
            assert_eq!(pref.len(), 5);
            assert_eq!(pref[0], ring.primary(k).unwrap());
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicate shard in preference list");
        }
    }

    #[test]
    fn placement_is_stable_across_ring_constructions() {
        let a = HashRing::with_shards(8);
        let mut b = HashRing::default();
        // Different insertion order must not change ownership.
        for s in (0..8).rev() {
            b.add_shard(s);
        }
        for k in 0..500 {
            assert_eq!(a.primary(k), b.primary(k));
        }
    }

    #[test]
    fn add_then_remove_round_trips() {
        let before = HashRing::with_shards(6);
        let mut ring = HashRing::with_shards(6);
        ring.add_shard(6);
        ring.remove_shard(6);
        for k in 0..500 {
            assert_eq!(ring.primary(k), before.primary(k));
        }
    }

    proptest! {
        // Balance: over many keys, no shard owns more than ~2× its
        // fair share (64 vnodes keeps the skew well inside that).
        #[test]
        fn key_distribution_is_balanced(n in 2u32..12, seed in 0u64..1000) {
            let ring = HashRing::with_shards(n);
            let keys = 4000usize;
            let mut counts = vec![0usize; n as usize];
            for i in 0..keys {
                let k = splitmix64(seed.wrapping_mul(0x1234_5677).wrapping_add(i as u64));
                counts[ring.primary(k).unwrap() as usize] += 1;
            }
            let fair = keys as f64 / n as f64;
            for (s, &c) in counts.iter().enumerate() {
                prop_assert!(
                    (c as f64) < fair * 2.0,
                    "shard {} owns {} of {} keys (fair {})",
                    s, c, keys, fair
                );
                prop_assert!(c > 0, "shard {} owns nothing", s);
            }
        }

        // Minimal churn on add: a key's primary either stays put or
        // moves to the new shard — never to a third party — and the
        // moved fraction is close to the expected K/(n+1).
        #[test]
        fn adding_a_shard_moves_only_its_keys(n in 2u32..10, seed in 0u64..1000) {
            let before = HashRing::with_shards(n);
            let mut after = HashRing::with_shards(n);
            after.add_shard(n);
            let keys = 3000usize;
            let mut moved = 0usize;
            for i in 0..keys {
                let k = splitmix64(seed.wrapping_mul(0xABCD_EF01).wrapping_add(i as u64));
                let old = before.primary(k).unwrap();
                let new = after.primary(k).unwrap();
                if old != new {
                    prop_assert_eq!(new, n, "key moved to a shard other than the new one");
                    moved += 1;
                }
            }
            // Expected moves: K/(n+1). Allow 2× for hash variance.
            let expected = keys as f64 / (n as f64 + 1.0);
            prop_assert!(
                (moved as f64) < expected * 2.0,
                "moved {} of {} keys, expected about {}",
                moved, keys, expected
            );
            prop_assert!(moved > 0, "the new shard took nothing");
        }

        // Minimal churn on remove: only the removed shard's keys move.
        #[test]
        fn removing_a_shard_moves_only_its_keys(n in 3u32..10, victim_ix in 0u32..3, seed in 0u64..1000) {
            let victim = victim_ix % n;
            let before = HashRing::with_shards(n);
            let mut after = HashRing::with_shards(n);
            after.remove_shard(victim);
            let keys = 3000usize;
            let mut moved = 0usize;
            for i in 0..keys {
                let k = splitmix64(seed.wrapping_mul(0x0F0F_1234).wrapping_add(i as u64));
                let old = before.primary(k).unwrap();
                let new = after.primary(k).unwrap();
                if old != new {
                    prop_assert_eq!(old, victim, "a surviving shard's key moved");
                    moved += 1;
                }
                prop_assert!(new != victim);
            }
            let expected = keys as f64 / n as f64;
            prop_assert!(
                (moved as f64) < expected * 2.0,
                "moved {} keys, expected about {}",
                moved, expected
            );
        }

        // Churn round-trip identity: a leave immediately followed by a
        // rejoin of the same shard restores the exact prior key→shard
        // assignment — the whole preference list, not just the
        // primary, so bounded-load spill targets also come back.
        #[test]
        fn leave_then_rejoin_restores_exact_assignment(n in 2u32..10, victim_ix in 0u32..10, seed in 0u64..1000) {
            let victim = victim_ix % n;
            let before = HashRing::with_shards(n);
            let mut ring = HashRing::with_shards(n);
            ring.remove_shard(victim);
            ring.add_shard(victim);
            for i in 0..500usize {
                let k = splitmix64(seed.wrapping_mul(0x5150_77AB).wrapping_add(i as u64));
                prop_assert_eq!(before.primary(k), ring.primary(k));
                prop_assert_eq!(before.preference(k), ring.preference(k));
            }
        }

        // Third-party stability under churn: across a leave of one
        // shard and a join of another, no key moves between two shards
        // that were present both before and after — every move
        // involves the departed or the joined shard.
        #[test]
        fn churn_never_moves_keys_between_survivors(n in 3u32..10, victim_ix in 0u32..10, seed in 0u64..1000) {
            let victim = victim_ix % n;
            let joiner = n; // brand-new shard id
            let before = HashRing::with_shards(n);
            let mut after = HashRing::with_shards(n);
            after.remove_shard(victim);
            after.add_shard(joiner);
            for i in 0..2000usize {
                let k = splitmix64(seed.wrapping_mul(0xC0FF_EE11).wrapping_add(i as u64));
                let old = before.primary(k).unwrap();
                let new = after.primary(k).unwrap();
                if old != new {
                    prop_assert!(
                        old == victim || new == joiner,
                        "key {} moved {} → {}, neither the departed {} nor the joined {}",
                        k, old, new, victim, joiner
                    );
                }
            }
        }
    }
}
