//! ASCII line plots for experiment binaries.
//!
//! The figure binaries print their series as terminal plots alongside
//! the tables, so the *shape* of each reproduced figure is visible
//! without any plotting toolchain.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in any order; sorted by `x` when rendered.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

/// Marker characters assigned to series in order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders series into a `width × height` ASCII grid with axis labels
/// and a legend. Returns a placeholder string when no finite points
/// exist.
pub fn line_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(4, 60);
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if finite.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &finite {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    // Degenerate ranges expand symmetrically.
    if x_max - x_min < 1e-12 {
        x_min -= 0.5;
        x_max += 0.5;
    }
    if y_max - y_min < 1e-12 {
        y_min -= 0.5;
        y_max += 0.5;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        let mut pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for (x, y) in pts {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row.min(height - 1);
            grid[row][col.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>9.2} |")
        } else if i == height - 1 {
            format!("{y_min:>9.2} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>11}{x_min:<.2}{:>pad$}{x_max:.2}\n",
        "",
        "-".repeat(width),
        "",
        "",
        pad = width.saturating_sub(12)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_marks_and_legend() {
        let s = vec![
            Series::new("flashps", vec![(1.0, 1.0), (2.0, 1.5), (3.0, 2.0)]),
            Series::new("diffusers", vec![(1.0, 2.0), (2.0, 5.0), (3.0, 10.0)]),
        ];
        let plot = line_plot("latency vs rps", &s, 40, 10);
        assert!(plot.contains("latency vs rps"));
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("flashps"));
        assert!(plot.contains("diffusers"));
        assert!(plot.contains("10.00"), "y max label present: {plot}");
    }

    #[test]
    fn handles_empty_and_degenerate_inputs() {
        assert!(line_plot("t", &[], 40, 10).contains("no data"));
        let s = vec![Series::new("flat", vec![(1.0, 3.0), (1.0, 3.0)])];
        let plot = line_plot("flat", &s, 40, 10);
        assert!(plot.contains('*'));
        let s = vec![Series::new("nan", vec![(f64::NAN, 1.0)])];
        assert!(line_plot("t", &s, 40, 10).contains("no data"));
    }

    #[test]
    fn high_values_plot_above_low_values() {
        let s = vec![Series::new("line", vec![(0.0, 0.0), (10.0, 10.0)])];
        let plot = line_plot("t", &s, 20, 8);
        let rows: Vec<&str> = plot.lines().skip(1).take(8).collect();
        let top = rows.first().expect("rows");
        let bottom = rows.last().expect("rows");
        // The high-y point is in the top row at the right; the low-y
        // point at the bottom left.
        assert!(top.trim_end().ends_with('*'), "top: {top}");
        assert!(bottom.contains('*'), "bottom: {bottom}");
    }
}
