//! Windowed throughput counters.
//!
//! Serving experiments report both end-of-run throughput (served /
//! makespan) and throughput over time (to see saturation onset). The
//! [`ThroughputCounter`] bins completion events into fixed windows of
//! virtual time.

/// Counts events per fixed-width time window.
#[derive(Debug, Clone)]
pub struct ThroughputCounter {
    window_secs: f64,
    counts: Vec<u64>,
    total: u64,
    last_event: f64,
}

impl ThroughputCounter {
    /// Creates a counter with the given window width in seconds.
    /// Returns `None` for a non-positive or non-finite width.
    pub fn new(window_secs: f64) -> Option<Self> {
        if !window_secs.is_finite() || window_secs <= 0.0 {
            return None;
        }
        Some(Self {
            window_secs,
            counts: Vec::new(),
            total: 0,
            last_event: 0.0,
        })
    }

    /// Records one event at time `at_secs` (events may arrive out of
    /// order; negative or non-finite times are ignored).
    pub fn record(&mut self, at_secs: f64) {
        if !at_secs.is_finite() || at_secs < 0.0 {
            return;
        }
        let w = (at_secs / self.window_secs) as usize;
        if w >= self.counts.len() {
            self.counts.resize(w + 1, 0);
        }
        self.counts[w] += 1;
        self.total += 1;
        self.last_event = self.last_event.max(at_secs);
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events per second in each window, in time order.
    pub fn rates(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.window_secs)
            .collect()
    }

    /// Mean rate from time zero through the last event (0.0 when
    /// empty).
    pub fn mean_rate(&self) -> f64 {
        if self.total == 0 || self.last_event <= 0.0 {
            return 0.0;
        }
        self.total as f64 / self.last_event
    }

    /// Peak windowed rate (0.0 when empty).
    pub fn peak_rate(&self) -> f64 {
        self.rates().into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_window() {
        assert!(ThroughputCounter::new(0.0).is_none());
        assert!(ThroughputCounter::new(-1.0).is_none());
        assert!(ThroughputCounter::new(f64::NAN).is_none());
        assert!(ThroughputCounter::new(10.0).is_some());
    }

    #[test]
    fn windows_and_rates() {
        let mut c = ThroughputCounter::new(10.0).unwrap();
        for t in [1.0, 2.0, 9.9, 15.0, 25.0, 25.5] {
            c.record(t);
        }
        assert_eq!(c.total(), 6);
        let rates = c.rates();
        assert_eq!(rates.len(), 3);
        assert!((rates[0] - 0.3).abs() < 1e-12);
        assert!((rates[1] - 0.1).abs() < 1e-12);
        assert!((rates[2] - 0.2).abs() < 1e-12);
        assert!((c.peak_rate() - 0.3).abs() < 1e-12);
        assert!((c.mean_rate() - 6.0 / 25.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_and_bad_events() {
        let mut c = ThroughputCounter::new(1.0).unwrap();
        c.record(5.0);
        c.record(1.0); // out of order is fine
        c.record(-2.0); // ignored
        c.record(f64::INFINITY); // ignored
        assert_eq!(c.total(), 2);
        assert!((c.mean_rate() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counter() {
        let c = ThroughputCounter::new(1.0).unwrap();
        assert_eq!(c.mean_rate(), 0.0);
        assert_eq!(c.peak_rate(), 0.0);
        assert!(c.rates().is_empty());
    }
}
