//! Resilience accounting under fault injection.
//!
//! A [`DegradationReport`] summarizes one cluster run under a fault
//! profile: goodput, tail latency, how much resilience machinery fired
//! (retries, fallbacks, crashes), and — the invariant the chaos
//! subsystem guarantees — that no request was silently lost
//! (`served + rejected == submitted`).

use fps_json::{Json, ToJson};

/// Degradation summary of one run under a fault profile.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Fault profile label ("baseline", "worker-crash", ...).
    pub profile: String,
    /// Requests submitted to the cluster.
    pub submitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests explicitly rejected in the queue (deadline exceeded
    /// or retry budget exhausted) — excludes admission sheds.
    pub rejected: u64,
    /// Requests shed at admission by the overload controller (rate
    /// limit, queue cap, or infeasible deadline) before any work was
    /// done on them.
    pub shed: u64,
    /// Completed requests per second of virtual time (goodput).
    pub goodput_rps: f64,
    /// Mean end-to-end latency of served requests, seconds.
    pub mean_latency_secs: f64,
    /// P95 end-to-end latency of served requests, seconds.
    pub p95_latency_secs: f64,
    /// Retries consumed across all requests.
    pub retries: u64,
    /// Served requests that fell back to full recompute after cache
    /// loss or corruption.
    pub fallback_serves: u64,
    /// Fraction of served requests that used the fallback path.
    pub fallback_rate: f64,
    /// Worker crashes injected over the run.
    pub crashes: u64,
}

impl DegradationReport {
    /// Requests that vanished without being served or rejected. The
    /// resilience contract keeps this at zero; anything else is a bug
    /// in the serving layer, not an acceptable degradation.
    pub fn lost(&self) -> u64 {
        self.submitted
            .saturating_sub(self.served + self.rejected + self.shed)
    }

    /// Fraction of submitted requests that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.served as f64 / self.submitted as f64
        }
    }
}

impl ToJson for DegradationReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("profile", self.profile.as_str())
            .with("submitted", self.submitted)
            .with("served", self.served)
            .with("rejected", self.rejected)
            .with("shed", self.shed)
            .with("lost", self.lost())
            .with("goodput_rps", self.goodput_rps)
            .with("mean_latency_secs", self.mean_latency_secs)
            .with("p95_latency_secs", self.p95_latency_secs)
            .with("retries", self.retries)
            .with("fallback_serves", self.fallback_serves)
            .with("fallback_rate", self.fallback_rate)
            .with("crashes", self.crashes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DegradationReport {
        DegradationReport {
            profile: "worker-crash".into(),
            submitted: 100,
            served: 95,
            rejected: 3,
            shed: 2,
            goodput_rps: 1.6,
            mean_latency_secs: 2.5,
            p95_latency_secs: 7.0,
            retries: 12,
            fallback_serves: 4,
            fallback_rate: 4.0 / 95.0,
            crashes: 2,
        }
    }

    #[test]
    fn conservation_arithmetic() {
        let r = report();
        assert_eq!(r.lost(), 0);
        assert!((r.completion_rate() - 0.95).abs() < 1e-12);
        let mut broken = report();
        broken.rejected = 0;
        assert_eq!(broken.lost(), 3);
        broken.shed = 0;
        assert_eq!(broken.lost(), 5);
    }

    #[test]
    fn serializes_to_json_with_lost_count() {
        let j = report().to_json();
        assert_eq!(
            j.get("profile").and_then(Json::as_str),
            Some("worker-crash")
        );
        assert_eq!(j.get("lost").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("retries").and_then(Json::as_u64), Some(12));
        let text = j.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("served").and_then(Json::as_u64), Some(95));
        assert_eq!(back.get("shed").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn empty_run_has_full_completion() {
        let r = DegradationReport {
            profile: "baseline".into(),
            submitted: 0,
            served: 0,
            rejected: 0,
            shed: 0,
            goodput_rps: 0.0,
            mean_latency_secs: 0.0,
            p95_latency_secs: 0.0,
            retries: 0,
            fallback_serves: 0,
            fallback_rate: 0.0,
            crashes: 0,
        };
        assert_eq!(r.lost(), 0);
        assert_eq!(r.completion_rate(), 1.0);
    }
}
