//! Fixed-width histograms.

/// A histogram with uniform bucket widths over `[lo, hi)`.
///
/// Out-of-range samples clamp into the first/last bucket so totals are
/// never lost (mask ratios occasionally land exactly on 1.0).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets over
    /// `[lo, hi)`. Returns `None` for a degenerate range or zero
    /// buckets.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Option<Self> {
        if lo >= hi || buckets == 0 || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
        })
    }

    /// Records a sample (non-finite samples are ignored).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let n = self.counts.len();
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (not bucket midpoints); 0.0 when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bucket probability mass; all zeros when empty.
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(bucket_midpoint, probability)` pairs, for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        self.pmf()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (self.lo + (i as f64 + 0.5) * width, p))
            .collect()
    }

    /// Renders a compact ASCII bar chart, one line per bucket.
    pub fn ascii(&self, bar_width: usize) -> String {
        let pmf = self.pmf();
        let max = pmf.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        let mut out = String::new();
        for (i, p) in pmf.iter().enumerate() {
            let bars = ((p / max) * bar_width as f64).round() as usize;
            out.push_str(&format!(
                "[{:7.3},{:7.3}) {:6.3} {}\n",
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                p,
                "#".repeat(bars)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 10).is_some());
        assert!(Histogram::new(1.0, 1.0, 10).is_none());
        assert!(Histogram::new(2.0, 1.0, 10).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(0.1); // bucket 0
        h.record(0.3); // bucket 1
        h.record(0.55); // bucket 2
        h.record(0.9); // bucket 3
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-5.0);
        h.record(1.0); // exactly hi clamps into last bucket
        h.record(7.0);
        assert_eq!(h.counts(), &[1, 2]);
        h.record(f64::NAN);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn pmf_sums_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let sum: f64 = h.pmf().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.mean() - 4.95).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.mean(), 0.0);
        assert!(h.pmf().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn points_and_ascii() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(0.2);
        h.record(0.7);
        h.record(0.8);
        let pts = h.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 0.25).abs() < 1e-12);
        assert!((pts[1].1 - 2.0 / 3.0).abs() < 1e-12);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }
}
