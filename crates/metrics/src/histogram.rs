//! Fixed-width histograms.

/// A histogram with uniform bucket widths over `[lo, hi)`.
///
/// Out-of-range samples clamp into the first/last bucket so totals are
/// never lost (mask ratios occasionally land exactly on 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets over
    /// `[lo, hi)`. Returns `None` for a degenerate range or zero
    /// buckets.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Option<Self> {
        if lo >= hi || buckets == 0 || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
        })
    }

    /// Records a sample (non-finite samples are ignored).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let n = self.counts.len();
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (not bucket midpoints); 0.0 when
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bucket probability mass; all zeros when empty.
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(bucket_midpoint, probability)` pairs, for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        self.pmf()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (self.lo + (i as f64 + 0.5) * width, p))
            .collect()
    }

    /// Merges another histogram's counts into this one. Returns `false`
    /// (leaving `self` untouched) when the bucket geometries differ —
    /// merging histograms over different ranges would silently misbin.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.lo != other.lo || self.hi != other.hi || self.counts.len() != other.counts.len() {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        true
    }

    /// Estimates the `p`-quantile (`p` in `[0, 1]`) by linear
    /// interpolation within the containing bucket; 0.0 when empty.
    ///
    /// This is the primitive that makes cross-shard percentile
    /// aggregation sound: merge the shard histograms, then take the
    /// percentile of the merged counts. Averaging per-shard p95s has no
    /// statistical meaning.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = p * self.total as f64;
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if next >= rank && c > 0 {
                let frac = ((rank - cum) / c as f64).clamp(0.0, 1.0);
                return self.lo + (i as f64 + frac) * width;
            }
            cum = next;
        }
        self.hi
    }

    /// Renders a compact ASCII bar chart, one line per bucket.
    pub fn ascii(&self, bar_width: usize) -> String {
        let pmf = self.pmf();
        let max = pmf.iter().copied().fold(0.0f64, f64::max).max(1e-12);
        let n = self.counts.len();
        let width = (self.hi - self.lo) / n as f64;
        let mut out = String::new();
        for (i, p) in pmf.iter().enumerate() {
            let bars = ((p / max) * bar_width as f64).round() as usize;
            out.push_str(&format!(
                "[{:7.3},{:7.3}) {:6.3} {}\n",
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                p,
                "#".repeat(bars)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 10).is_some());
        assert!(Histogram::new(1.0, 1.0, 10).is_none());
        assert!(Histogram::new(2.0, 1.0, 10).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(0.1); // bucket 0
        h.record(0.3); // bucket 1
        h.record(0.55); // bucket 2
        h.record(0.9); // bucket 3
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-5.0);
        h.record(1.0); // exactly hi clamps into last bucket
        h.record(7.0);
        assert_eq!(h.counts(), &[1, 2]);
        h.record(f64::NAN);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn pmf_sums_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for i in 0..100 {
            h.record(i as f64 / 10.0);
        }
        let sum: f64 = h.pmf().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.mean() - 4.95).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_behaves() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.mean(), 0.0);
        assert!(h.pmf().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn merge_requires_matching_geometry() {
        let mut a = Histogram::new(0.0, 1.0, 4).unwrap();
        let mut b = Histogram::new(0.0, 1.0, 4).unwrap();
        a.record(0.1);
        b.record(0.9);
        b.record(0.85);
        assert!(a.merge(&b));
        assert_eq!(a.counts(), &[1, 0, 0, 2]);
        assert_eq!(a.total(), 3);
        let wrong_range = Histogram::new(0.0, 2.0, 4).unwrap();
        let wrong_buckets = Histogram::new(0.0, 1.0, 8).unwrap();
        assert!(!a.merge(&wrong_range));
        assert!(!a.merge(&wrong_buckets));
        assert_eq!(a.total(), 3, "failed merges leave counts untouched");
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let mut h = Histogram::new(0.0, 100.0, 100).unwrap();
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        // Uniform samples: the q-quantile should land near 100q.
        assert!((h.percentile(0.5) - 50.0).abs() < 1.01);
        assert!((h.percentile(0.95) - 95.0).abs() < 1.01);
        assert_eq!(h.percentile(1.0), 100.0);
        let empty = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(empty.percentile(0.95), 0.0);
    }

    #[test]
    fn merged_percentile_equals_pooled_percentile() {
        // Two skewed shards: merging then taking p95 must match the
        // histogram of the pooled samples — and differ from the mean of
        // the per-shard p95s.
        let mut fast = Histogram::new(0.0, 10.0, 1000).unwrap();
        let mut slow = Histogram::new(0.0, 10.0, 1000).unwrap();
        let mut pooled = Histogram::new(0.0, 10.0, 1000).unwrap();
        for i in 0..900 {
            let v = 0.5 + (i % 10) as f64 * 0.01;
            fast.record(v);
            pooled.record(v);
        }
        for i in 0..100 {
            let v = 8.0 + (i % 10) as f64 * 0.01;
            slow.record(v);
            pooled.record(v);
        }
        let naive_avg = (fast.percentile(0.95) + slow.percentile(0.95)) / 2.0;
        let mut merged = fast.clone();
        assert!(merged.merge(&slow));
        let p95 = merged.percentile(0.95);
        assert!((p95 - pooled.percentile(0.95)).abs() < 1e-9);
        // Pooled p95 sits in the slow tail (~8s); the naive average
        // (~4.3s) is wildly off.
        assert!(p95 > 7.5);
        assert!((naive_avg - p95).abs() > 3.0);
    }

    #[test]
    fn points_and_ascii() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(0.2);
        h.record(0.7);
        h.record(0.8);
        let pts = h.points();
        assert_eq!(pts.len(), 2);
        assert!((pts[0].0 - 0.25).abs() < 1e-12);
        assert!((pts[1].1 - 2.0 / 3.0).abs() < 1e-12);
        let art = h.ascii(10);
        assert_eq!(art.lines().count(), 2);
        assert!(art.contains('#'));
    }
}
