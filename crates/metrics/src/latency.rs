//! Per-request latency breakdowns.
//!
//! The paper reports end-to-end latency together with its queueing
//! component (Fig. 12-rightmost) and the inference component (Fig.
//! 16-left). [`LatencyRecorder`] accumulates those breakdowns per
//! request and summarizes each component.

use crate::stats::Summary;

/// The latency components of one served request, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyBreakdown {
    /// Time from arrival until the request first enters a running batch.
    pub queueing: f64,
    /// Time spent in pre/post-processing.
    pub processing: f64,
    /// Time spent in denoising computation (including interruption
    /// stalls).
    pub inference: f64,
}

impl LatencyBreakdown {
    /// End-to-end latency: the sum of all components.
    pub fn total(&self) -> f64 {
        self.queueing + self.processing + self.inference
    }
}

/// Accumulates request latency breakdowns.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    records: Vec<LatencyBreakdown>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request.
    pub fn record(&mut self, b: LatencyBreakdown) {
        self.records.push(b);
    }

    /// Number of requests recorded.
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// All recorded breakdowns.
    pub fn records(&self) -> &[LatencyBreakdown] {
        &self.records
    }

    /// Summary of end-to-end latencies; `None` when empty.
    pub fn total_summary(&self) -> Option<Summary> {
        Summary::of(&self.records.iter().map(|r| r.total()).collect::<Vec<_>>())
    }

    /// Summary of the queueing component; `None` when empty.
    pub fn queueing_summary(&self) -> Option<Summary> {
        Summary::of(&self.records.iter().map(|r| r.queueing).collect::<Vec<_>>())
    }

    /// Summary of the inference component; `None` when empty.
    pub fn inference_summary(&self) -> Option<Summary> {
        Summary::of(&self.records.iter().map(|r| r.inference).collect::<Vec<_>>())
    }

    /// Mean fraction of end-to-end latency spent queueing; `None` when
    /// empty.
    pub fn mean_queueing_fraction(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let fracs: Vec<f64> = self
            .records
            .iter()
            .map(|r| {
                let t = r.total();
                if t <= 0.0 {
                    0.0
                } else {
                    r.queueing / t
                }
            })
            .collect();
        Some(fracs.iter().sum::<f64>() / fracs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(q: f64, p: f64, i: f64) -> LatencyBreakdown {
        LatencyBreakdown {
            queueing: q,
            processing: p,
            inference: i,
        }
    }

    #[test]
    fn totals_sum_components() {
        assert_eq!(b(1.0, 0.5, 2.0).total(), 3.5);
        assert_eq!(LatencyBreakdown::default().total(), 0.0);
    }

    #[test]
    fn recorder_summaries() {
        let mut r = LatencyRecorder::new();
        r.record(b(1.0, 0.0, 1.0));
        r.record(b(3.0, 0.0, 1.0));
        assert_eq!(r.count(), 2);
        let total = r.total_summary().unwrap();
        assert_eq!(total.mean, 3.0);
        let q = r.queueing_summary().unwrap();
        assert_eq!(q.mean, 2.0);
        let inf = r.inference_summary().unwrap();
        assert_eq!(inf.mean, 1.0);
    }

    #[test]
    fn queueing_fraction() {
        let mut r = LatencyRecorder::new();
        r.record(b(1.0, 0.0, 1.0)); // 50 %
        r.record(b(0.0, 0.0, 2.0)); // 0 %
        assert!((r.mean_queueing_fraction().unwrap() - 0.25).abs() < 1e-12);
        let empty = LatencyRecorder::new();
        assert!(empty.mean_queueing_fraction().is_none());
        assert!(empty.total_summary().is_none());
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let mut r = LatencyRecorder::new();
        r.record(LatencyBreakdown::default());
        assert_eq!(r.mean_queueing_fraction().unwrap(), 0.0);
    }
}
