//! SLO-driven pool autoscaling with hysteresis.
//!
//! Each worker pool — a fleet shard's, or a single stage's in the
//! stage-graph — is an independently scaled unit (LegoDiffusion's
//! micro-serving framing): the scaler watches the pool's own SLO
//! signals — shed rate, queue-wait p95, utilization, and (optionally)
//! cache pressure — and grows the pool under sustained overload or
//! shrinks it when the pool idles. The scaler lives in `fps-metrics`
//! because it is pure signal→decision logic consumed by both
//! `fps-fleet` (per-shard pools) and `fps-stagegraph` (per-stage
//! pools). Two mechanisms stop it flapping:
//!
//! - **Streaks**: a scale-up needs `up_ticks` *consecutive* breaching
//!   observations (and scale-down `down_ticks` idle ones); one noisy
//!   window never moves the pool.
//! - **Cooldown**: after any action the scaler holds for
//!   `cooldown` regardless of signals, giving the pool time to absorb
//!   the change before it is judged again.

use fps_simtime::{SimDuration, SimTime};

/// Scaling policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalerConfig {
    /// Pool floor (never scale below).
    pub min_workers: usize,
    /// Pool ceiling (never scale above).
    pub max_workers: usize,
    /// Shed rate at or above which a window counts as overloaded.
    pub up_shed_rate: f64,
    /// Queue-wait p95 at or above which a window counts as overloaded,
    /// seconds.
    pub up_queue_wait_secs: f64,
    /// Utilization at or below which a window counts as idle (only
    /// when nothing is shedding).
    pub down_utilization: f64,
    /// Consecutive overloaded windows required to scale up.
    pub up_ticks: u32,
    /// Consecutive idle windows required to scale down.
    pub down_ticks: u32,
    /// Hold time after any scaling action.
    pub cooldown: SimDuration,
    /// Workers added/removed per action.
    pub step: usize,
    /// Cache miss rate at or above which a window counts as
    /// overloaded. A miss recomputes cold — several times the warm
    /// service time — so sustained misses are load the queue-wait
    /// signal only sees after the damage is queued. Defaults to
    /// `f64::INFINITY` (signal ignored).
    pub up_miss_rate: f64,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        Self {
            min_workers: 1,
            max_workers: 8,
            up_shed_rate: 0.05,
            up_queue_wait_secs: 2.0,
            down_utilization: 0.30,
            up_ticks: 2,
            down_ticks: 4,
            cooldown: SimDuration::from_secs_f64(30.0),
            step: 1,
            up_miss_rate: f64::INFINITY,
        }
    }
}

/// One observation window's signals for a pool.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardSignal {
    /// Fraction of submissions turned away this window.
    pub shed_rate: f64,
    /// P95 queue wait this window, seconds.
    pub queue_wait_p95_secs: f64,
    /// Worker-pool utilization this window, in `[0, 1]`.
    pub utilization: f64,
    /// Fraction of cache lookups this window that missed (local *and*
    /// failover), in `[0, 1]`. Zero when the pool has no cache.
    pub cache_miss_rate: f64,
}

/// What the scaler wants done to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Leave the pool alone.
    Hold,
    /// Grow the pool to this size.
    Up(usize),
    /// Shrink the pool to this size.
    Down(usize),
}

/// Fleet-level context that can veto a scale-down.
///
/// A per-shard scaler only sees its own signals, and during a fleet
/// incident those signals lie: a crash elsewhere parks traffic at the
/// router, the surviving shard's windows look idle (nothing is being
/// *routed*), and a naive scaler shrinks exactly the capacity the
/// parked requests are waiting for — then thrashes back up when they
/// drain. The guard carries what the fleet knows and the shard cannot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleGuard {
    /// Requests parked fleet-wide awaiting a routable shard.
    pub parked: u64,
    /// Whether this shard is the last healthy (routable) one.
    pub last_healthy: bool,
}

impl ScaleGuard {
    /// Whether a scale-down must be vetoed: never shrink the last
    /// healthy shard while requests are parked against it.
    pub fn blocks_down(&self) -> bool {
        self.last_healthy && self.parked > 0
    }
}

/// Hysteretic per-shard autoscaler. Feed it one [`ShardSignal`] per
/// observation window via [`Autoscaler::observe`].
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    up_streak: u32,
    down_streak: u32,
    hold_until: Option<SimTime>,
    ups: u64,
    downs: u64,
    vetoed_downs: u64,
}

impl Autoscaler {
    /// A scaler with the given policy.
    pub fn new(config: AutoscalerConfig) -> Self {
        Self {
            config,
            up_streak: 0,
            down_streak: 0,
            hold_until: None,
            ups: 0,
            downs: 0,
            vetoed_downs: 0,
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// Scale-up actions taken so far.
    pub fn ups(&self) -> u64 {
        self.ups
    }

    /// Scale-down actions taken so far.
    pub fn downs(&self) -> u64 {
        self.downs
    }

    /// Scale-downs vetoed by a [`ScaleGuard`] so far.
    pub fn vetoed_downs(&self) -> u64 {
        self.vetoed_downs
    }

    /// Observes one window and decides, with no fleet context (the
    /// guard never vetoes). `current` is the pool size the decision
    /// applies to; the returned `Up`/`Down` carry the new target size
    /// (already clamped to `[min_workers, max_workers]`).
    pub fn observe(&mut self, current: usize, signal: &ShardSignal, now: SimTime) -> ScaleDecision {
        self.observe_guarded(current, signal, now, &ScaleGuard::default())
    }

    /// Observes one window under a fleet-level [`ScaleGuard`]. A
    /// scale-down the guard blocks returns `Hold` and is counted in
    /// [`vetoed_downs`]; the idle streak is *kept*, so the shrink
    /// fires on the first window after the guard clears rather than
    /// restarting its hysteresis from zero.
    ///
    /// [`vetoed_downs`]: Autoscaler::vetoed_downs
    pub fn observe_guarded(
        &mut self,
        current: usize,
        signal: &ShardSignal,
        now: SimTime,
        guard: &ScaleGuard,
    ) -> ScaleDecision {
        let overloaded = signal.shed_rate >= self.config.up_shed_rate
            || signal.queue_wait_p95_secs >= self.config.up_queue_wait_secs
            || signal.cache_miss_rate >= self.config.up_miss_rate;
        let idle = !overloaded
            && signal.shed_rate == 0.0
            && signal.utilization <= self.config.down_utilization;
        // Streaks accumulate even during cooldown — a breach that
        // persists through the hold window acts immediately after it —
        // but actions are deferred.
        if overloaded {
            self.up_streak += 1;
            self.down_streak = 0;
        } else if idle {
            self.down_streak += 1;
            self.up_streak = 0;
        } else {
            self.up_streak = 0;
            self.down_streak = 0;
        }
        if let Some(until) = self.hold_until {
            if now < until {
                return ScaleDecision::Hold;
            }
        }
        if overloaded && self.up_streak >= self.config.up_ticks && current < self.config.max_workers
        {
            let target = (current + self.config.step).min(self.config.max_workers);
            self.hold_until = Some(now + self.config.cooldown);
            self.up_streak = 0;
            self.ups += 1;
            return ScaleDecision::Up(target);
        }
        if idle && self.down_streak >= self.config.down_ticks && current > self.config.min_workers {
            if guard.blocks_down() {
                self.vetoed_downs += 1;
                return ScaleDecision::Hold;
            }
            let target = current
                .saturating_sub(self.config.step)
                .max(self.config.min_workers);
            self.hold_until = Some(now + self.config.cooldown);
            self.down_streak = 0;
            self.downs += 1;
            return ScaleDecision::Down(target);
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overload() -> ShardSignal {
        ShardSignal {
            shed_rate: 0.2,
            queue_wait_p95_secs: 5.0,
            utilization: 1.0,
            ..Default::default()
        }
    }

    fn idle() -> ShardSignal {
        ShardSignal {
            shed_rate: 0.0,
            queue_wait_p95_secs: 0.1,
            utilization: 0.1,
            ..Default::default()
        }
    }

    fn busy_but_fine() -> ShardSignal {
        ShardSignal {
            shed_rate: 0.0,
            queue_wait_p95_secs: 0.5,
            utilization: 0.7,
            ..Default::default()
        }
    }

    fn at(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn sustained_overload_scales_up_to_the_ceiling() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            ..Default::default()
        });
        let mut workers = 1usize;
        for t in 0..40 {
            if let ScaleDecision::Up(n) = a.observe(workers, &overload(), at(t)) {
                assert_eq!(n, workers + 1);
                workers = n;
            }
        }
        assert_eq!(workers, 8, "should reach max_workers");
        // At the ceiling the scaler holds rather than churns.
        assert_eq!(
            a.observe(workers, &overload(), at(100)),
            ScaleDecision::Hold
        );
    }

    #[test]
    fn one_noisy_window_never_scales() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        assert_eq!(a.observe(2, &overload(), at(0)), ScaleDecision::Hold);
        // Signal clears: the streak resets and the next breach starts
        // over.
        assert_eq!(a.observe(2, &busy_but_fine(), at(1)), ScaleDecision::Hold);
        assert_eq!(a.observe(2, &overload(), at(2)), ScaleDecision::Hold);
    }

    #[test]
    fn flapping_signals_hold_forever() {
        let mut a = Autoscaler::new(AutoscalerConfig::default());
        for t in 0..100 {
            let s = if t % 2 == 0 { overload() } else { idle() };
            assert_eq!(
                a.observe(4, &s, at(t)),
                ScaleDecision::Hold,
                "alternating signals must never move the pool"
            );
        }
        assert_eq!(a.ups() + a.downs(), 0);
    }

    #[test]
    fn cooldown_defers_consecutive_actions() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            up_ticks: 1,
            cooldown: SimDuration::from_secs_f64(30.0),
            ..Default::default()
        });
        assert_eq!(a.observe(1, &overload(), at(0)), ScaleDecision::Up(2));
        // Still breaching, but inside the hold window.
        assert_eq!(a.observe(2, &overload(), at(10)), ScaleDecision::Hold);
        assert_eq!(a.observe(2, &overload(), at(29)), ScaleDecision::Hold);
        // Streak persisted through cooldown: fires at expiry.
        assert_eq!(a.observe(2, &overload(), at(30)), ScaleDecision::Up(3));
    }

    #[test]
    fn sustained_idle_scales_down_to_the_floor() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            ..Default::default()
        });
        let mut workers = 4usize;
        for t in 0..40 {
            if let ScaleDecision::Down(n) = a.observe(workers, &idle(), at(t)) {
                workers = n;
            }
        }
        assert_eq!(workers, 1, "should reach min_workers");
        assert_eq!(a.downs(), 3);
    }

    #[test]
    fn guard_never_shrinks_the_last_healthy_shard_while_requests_park() {
        // The flap case: a peer shard crashes, traffic parks at the
        // router, and the survivor's windows read idle because nothing
        // reaches it. An unguarded scaler would shrink the exact pool
        // the parked requests need, then thrash back up on recovery.
        let mut a = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            ..Default::default()
        });
        let incident = ScaleGuard {
            parked: 12,
            last_healthy: true,
        };
        for t in 0..20 {
            assert_eq!(
                a.observe_guarded(4, &idle(), at(t), &incident),
                ScaleDecision::Hold,
                "guard must veto every shrink during the incident"
            );
        }
        assert_eq!(a.downs(), 0);
        assert!(a.vetoed_downs() > 0, "vetoes are counted, not silent");
        // Recovery drains the parked queue; the kept idle streak lets
        // the deferred shrink fire on the very next window instead of
        // re-running its hysteresis (no thrash, no stall).
        let recovered = ScaleGuard {
            parked: 0,
            last_healthy: true,
        };
        assert_eq!(
            a.observe_guarded(4, &idle(), at(21), &recovered),
            ScaleDecision::Down(3)
        );
        assert_eq!(a.downs(), 1);
    }

    #[test]
    fn guard_without_parked_requests_does_not_veto() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            ..Default::default()
        });
        // Last healthy but nothing parked: normal shrink semantics.
        let guard = ScaleGuard {
            parked: 0,
            last_healthy: true,
        };
        let mut got_down = false;
        for t in 0..10 {
            if matches!(
                a.observe_guarded(4, &idle(), at(t), &guard),
                ScaleDecision::Down(_)
            ) {
                got_down = true;
            }
        }
        assert!(got_down);
        assert_eq!(a.vetoed_downs(), 0);
    }

    #[test]
    fn cache_pressure_scales_up_when_enabled_and_is_inert_by_default() {
        // Misses recompute cold; a miss-heavy window is overload even
        // while the queue still looks fine.
        let miss_heavy = ShardSignal {
            shed_rate: 0.0,
            queue_wait_p95_secs: 0.5,
            utilization: 0.7,
            cache_miss_rate: 0.6,
        };
        let mut inert = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            ..Default::default()
        });
        for t in 0..10 {
            assert_eq!(
                inert.observe(2, &miss_heavy, at(t)),
                ScaleDecision::Hold,
                "default up_miss_rate = INFINITY must ignore cache pressure"
            );
        }
        let mut aware = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            up_miss_rate: 0.5,
            ..Default::default()
        });
        let mut workers = 2usize;
        for t in 0..10 {
            if let ScaleDecision::Up(n) = aware.observe(workers, &miss_heavy, at(t)) {
                workers = n;
            }
        }
        assert!(workers > 2, "sustained miss pressure grows the pool");
    }

    #[test]
    fn healthy_load_neither_grows_nor_shrinks() {
        let mut a = Autoscaler::new(AutoscalerConfig {
            cooldown: SimDuration::from_secs_f64(0.0),
            ..Default::default()
        });
        for t in 0..50 {
            assert_eq!(a.observe(4, &busy_but_fine(), at(t)), ScaleDecision::Hold);
        }
    }
}
