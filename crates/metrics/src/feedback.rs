//! Cache feedback: measured fetch cost and hit rate, per shard and
//! template, published by the cache tier and consumed by routing and
//! autoscaling.
//!
//! Bounded-load affinity routing is *blind*: it walks the ring
//! preference order and assumes the preferred shard actually holds the
//! template's activations. After churn, a wipe, or a budget-refused
//! admission that assumption is wrong, and the router keeps steering
//! requests at a shard that recomputes them cold. This module closes
//! the loop with two windows of truth:
//!
//! - A **fetch-cost EWMA** per `(shard, template)`: seconds of extra
//!   service the last lookups of that template on that shard cost
//!   (0 for a host hit, the promote/transfer delay for a failover, the
//!   cold-recompute penalty for a miss). Placement seeds these with
//!   priors ([`CacheFeedback::hint_placement`]) so a fresh plan steers
//!   routing *before* the first observation — the cache telling the
//!   router where it just put things.
//! - A **windowed per-shard hit rate**: lookups and misses since the
//!   window was last drained, feeding the autoscaler's
//!   `cache_miss_rate` signal so cache pressure reads as load.
//!
//! Determinism: per-template costs live in a `HashMap` that is only
//! ever *keyed into* (never iterated), so seeded replays stay
//! byte-identical.

use std::collections::HashMap;

use fps_json::{Json, ToJson};

/// One cache lookup's outcome, with its measured extra cost in
/// seconds of service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FetchOutcome {
    /// Host-tier hit on the serving shard: no extra cost.
    LocalHit,
    /// Served from a peer replica; `cost_secs` is the transfer/promote
    /// delay.
    Failover {
        /// Extra seconds the peer fetch cost.
        cost_secs: f64,
    },
    /// No replica survived; `cost_secs` is the cold-recompute penalty
    /// over a warm pass.
    Miss {
        /// Extra seconds the cold recompute cost.
        cost_secs: f64,
    },
}

impl FetchOutcome {
    /// The outcome's extra cost in seconds.
    pub fn cost_secs(&self) -> f64 {
        match *self {
            Self::LocalHit => 0.0,
            Self::Failover { cost_secs } | Self::Miss { cost_secs } => cost_secs,
        }
    }

    /// Whether the lookup avoided a cold recompute.
    pub fn is_hit(&self) -> bool {
        !matches!(self, Self::Miss { .. })
    }
}

/// Per-shard windowed lookup counters (reset on drain).
#[derive(Debug, Clone, Copy, Default)]
struct ShardWindow {
    lookups: u64,
    misses: u64,
}

/// One `(shard, template)` cost estimate: hinted (a placement prior)
/// or measured (at least one observed fetch).
#[derive(Debug, Clone, Copy)]
struct PairCost {
    cost_secs: f64,
    measured: bool,
}

/// Windowed per-shard, per-template cache feedback.
#[derive(Debug, Clone)]
pub struct CacheFeedback {
    /// EWMA smoothing factor in `(0, 1]`; higher = faster tracking.
    alpha: f64,
    /// Cost assumed for a template/shard pair never observed or
    /// hinted: the pessimistic cold-recompute prior.
    miss_prior_secs: f64,
    /// Keyed-only (never iterated): determinism-safe.
    cost: HashMap<(u32, u64), PairCost>,
    /// Per-shard EWMA over *all* observed fetch costs there — the
    /// cross-template churn signal. A shard whose host tier is over-
    /// subscribed promotes (or, after a wipe, misses) across many
    /// templates; one template's samples warn every template the
    /// router has not measured on that shard yet.
    shard_cost: Vec<f64>,
    windows: Vec<ShardWindow>,
    /// Lifetime totals (never reset), for reports.
    total_lookups: u64,
    total_misses: u64,
}

impl CacheFeedback {
    /// Feedback over `shards` initial shards. `miss_prior_secs` is the
    /// expected cold-recompute penalty — unknown pairs default to it so
    /// an unobserved shard is never *preferred* over one that just
    /// served a hit.
    pub fn new(shards: u32, alpha: f64, miss_prior_secs: f64) -> Self {
        Self {
            alpha: alpha.clamp(1e-6, 1.0),
            miss_prior_secs: miss_prior_secs.max(0.0),
            cost: HashMap::new(),
            shard_cost: vec![0.0; shards as usize],
            windows: vec![ShardWindow::default(); shards as usize],
            total_lookups: 0,
            total_misses: 0,
        }
    }

    /// Grows the shard table to cover `shard` (idempotent).
    pub fn ensure_shard(&mut self, shard: u32) {
        while self.windows.len() <= shard as usize {
            self.windows.push(ShardWindow::default());
        }
        while self.shard_cost.len() <= shard as usize {
            self.shard_cost.push(0.0);
        }
    }

    /// The cold-recompute prior, seconds.
    pub fn miss_prior_secs(&self) -> f64 {
        self.miss_prior_secs
    }

    /// Records one lookup outcome for `template` on `shard`.
    pub fn observe(&mut self, shard: u32, template: u64, outcome: FetchOutcome) {
        self.ensure_shard(shard);
        let w = &mut self.windows[shard as usize];
        w.lookups += 1;
        self.total_lookups += 1;
        if !outcome.is_hit() {
            w.misses += 1;
            self.total_misses += 1;
        }
        let sample = outcome.cost_secs();
        let slot = self.cost.entry((shard, template)).or_insert(PairCost {
            cost_secs: self.miss_prior_secs,
            measured: false,
        });
        if slot.measured {
            slot.cost_secs += self.alpha * (sample - slot.cost_secs);
        } else {
            // First real observation replaces the prior outright.
            slot.cost_secs = sample;
            slot.measured = true;
        }
        let churn = &mut self.shard_cost[shard as usize];
        *churn += self.alpha * (sample - *churn);
    }

    /// Expected extra cost of serving `template` on `shard`, seconds.
    /// Unknown pairs return the miss prior.
    pub fn expected_cost(&self, shard: u32, template: u64) -> f64 {
        self.cost
            .get(&(shard, template))
            .map(|p| p.cost_secs)
            .unwrap_or(self.miss_prior_secs)
    }

    /// Per-shard fetch-cost EWMA across *all* templates served there:
    /// the cross-template churn signal. High when the shard's host tier
    /// is thrashing (promote-heavy) or recovering from a wipe
    /// (miss-heavy); decays back toward 0 as hits resume.
    pub fn shard_cost(&self, shard: u32) -> f64 {
        self.shard_cost.get(shard as usize).copied().unwrap_or(0.0)
    }

    /// Routing key for serving `template` on `shard`: `(pair estimate,
    /// tie-break churn)`, compared lexicographically. The pair's own
    /// history (measurement, else placement hint, else the miss prior)
    /// dominates; the shard-wide churn EWMA only breaks *costly* ties.
    /// A costly tie is exactly the thrash signature the pair signal
    /// cannot resolve: a template bouncing between an oversubscribed
    /// primary and its replica measures the same promote cost on both
    /// owners, so falling straight to preference rank walks it back to
    /// the thrashing shard forever. Churn — fed by what *other*
    /// templates just paid on each shard — tips that tie toward the
    /// owner with spare host capacity, where one more promote turns
    /// into residency and the pair cost decays below the tie. A pair
    /// that has proven *free* (estimate 0) ignores churn entirely:
    /// residency is already the cheapest outcome, and moving it
    /// because its shard is busy elsewhere would promote-for-nothing.
    pub fn routing_key(&self, shard: u32, template: u64) -> (f64, f64) {
        let pair = self.expected_cost(shard, template);
        let tiebreak = if pair > 0.0 {
            self.shard_cost(shard)
        } else {
            0.0
        };
        (pair, tiebreak)
    }

    /// Placement's hint after (re)planning `template` onto `owners`
    /// (primary first): the primary starts at `primary_cost_secs`
    /// (usually ~0 — host-resident), the other owners at
    /// `replica_cost_secs` (a disk/peer promote). Hints only *seed*
    /// pairs with no measured cost yet — measurement outranks prior,
    /// and costs on shards outside `owners` are left alone too: a
    /// host-warm copy survives losing directory ownership, and a cost
    /// that does go stale self-corrects after one observed fetch,
    /// which is cheaper than forcing rediscovery on every replan.
    pub fn hint_placement(
        &mut self,
        template: u64,
        owners: &[u32],
        primary_cost_secs: f64,
        replica_cost_secs: f64,
    ) {
        for (rank, &shard) in owners.iter().enumerate() {
            self.ensure_shard(shard);
            let cost = if rank == 0 {
                primary_cost_secs
            } else {
                replica_cost_secs
            };
            self.cost.entry((shard, template)).or_insert(PairCost {
                cost_secs: cost,
                measured: false,
            });
        }
    }

    /// Miss rate of `shard`'s current window, in `[0, 1]` (0 when the
    /// window saw no lookups).
    pub fn window_miss_rate(&self, shard: u32) -> f64 {
        match self.windows.get(shard as usize) {
            Some(w) if w.lookups > 0 => w.misses as f64 / w.lookups as f64,
            _ => 0.0,
        }
    }

    /// Hit rate of `shard`'s current window, in `[0, 1]`.
    pub fn window_hit_rate(&self, shard: u32) -> f64 {
        match self.windows.get(shard as usize) {
            Some(w) if w.lookups > 0 => 1.0 - w.misses as f64 / w.lookups as f64,
            _ => 0.0,
        }
    }

    /// Resets `shard`'s window counters (call once per observation
    /// window, after reading the rates).
    pub fn reset_window(&mut self, shard: u32) {
        if let Some(w) = self.windows.get_mut(shard as usize) {
            *w = ShardWindow::default();
        }
    }

    /// Lifetime lookups observed.
    pub fn total_lookups(&self) -> u64 {
        self.total_lookups
    }

    /// Lifetime misses observed.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }
}

/// Per-template request-count histogram for a run, surfaced on the
/// fleet rollup so placement decisions are inspectable post-run: did
/// the hot templates actually get the replicas?
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PopularityHistogram {
    /// `(template_id, requests)` sorted hottest-first (count desc, id
    /// asc), truncated to the hottest `top` entries at construction.
    pub top: Vec<(u64, u64)>,
    /// Distinct templates requested.
    pub distinct_templates: u64,
    /// Total requests counted.
    pub total_requests: u64,
}

impl PopularityHistogram {
    /// Builds from raw `(template, count)` pairs, keeping the `top`
    /// hottest. Input order does not matter; the result is fully
    /// sorted (count desc, id asc) for determinism.
    pub fn from_counts(counts: &[(u64, u64)], top: usize) -> Self {
        let mut sorted: Vec<(u64, u64)> = counts.iter().copied().filter(|&(_, c)| c > 0).collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let distinct_templates = sorted.len() as u64;
        let total_requests = sorted.iter().map(|&(_, c)| c).sum();
        sorted.truncate(top);
        Self {
            top: sorted,
            distinct_templates,
            total_requests,
        }
    }
}

impl ToJson for PopularityHistogram {
    fn to_json(&self) -> Json {
        let top: Vec<Json> = self
            .top
            .iter()
            .map(|&(template, requests)| {
                Json::object()
                    .with("template", template)
                    .with("requests", requests)
            })
            .collect();
        Json::object()
            .with("distinct_templates", self.distinct_templates)
            .with("total_requests", self.total_requests)
            .with("top", Json::Array(top))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_pairs_cost_the_miss_prior() {
        let fb = CacheFeedback::new(4, 0.3, 3.5);
        assert_eq!(fb.expected_cost(0, 42), 3.5);
        assert_eq!(fb.expected_cost(99, 7), 3.5, "unknown shard too");
    }

    #[test]
    fn ewma_tracks_observed_costs_toward_hits() {
        let mut fb = CacheFeedback::new(2, 0.5, 4.0);
        for _ in 0..12 {
            fb.observe(0, 7, FetchOutcome::LocalHit);
        }
        assert!(fb.expected_cost(0, 7) < 0.01, "cost decays toward 0");
        fb.observe(1, 7, FetchOutcome::Miss { cost_secs: 4.0 });
        assert!(fb.expected_cost(1, 7) >= 4.0 - 1e-9);
        assert!(fb.expected_cost(0, 7) < fb.expected_cost(1, 7));
    }

    #[test]
    fn placement_hints_seed_without_clobbering_measurements() {
        let mut fb = CacheFeedback::new(4, 0.5, 4.0);
        // Router learned shard 3 was cheap — placement then planned the
        // template onto [1, 2]. The hint seeds the unknown owners but
        // leaves the measured shard-3 cost alone (the host copy there
        // outlives directory ownership).
        for _ in 0..10 {
            fb.observe(3, 9, FetchOutcome::LocalHit);
        }
        fb.hint_placement(9, &[1, 2], 0.0, 0.5);
        assert_eq!(fb.expected_cost(1, 9), 0.0, "primary prior");
        assert_eq!(fb.expected_cost(2, 9), 0.5, "replica prior");
        assert!(fb.expected_cost(3, 9) < 0.01, "measurement survives");
        // A later observation outranks the seeded prior.
        fb.observe(1, 9, FetchOutcome::Miss { cost_secs: 4.0 });
        fb.hint_placement(9, &[1, 2], 0.0, 0.5);
        assert!(fb.expected_cost(1, 9) > 1.0, "re-hint does not clobber");
    }

    #[test]
    fn routing_key_breaks_costly_ties_with_churn_and_leaves_free_pairs_alone() {
        let mut fb = CacheFeedback::new(2, 0.5, 4.0);
        // Other templates keep promoting on shard 0: churn builds up.
        fb.observe(0, 1, FetchOutcome::Failover { cost_secs: 1.0 });
        fb.observe(0, 2, FetchOutcome::Failover { cost_secs: 1.0 });
        assert!(fb.shard_cost(0) > 0.5, "churn EWMA tracks promotes");
        assert_eq!(fb.shard_cost(1), 0.0, "quiet shard stays at 0");
        // A free tie ignores churn: template 9 hinted at 0 on both
        // shards compares equal, so preference rank keeps it put.
        fb.hint_placement(9, &[0, 1], 0.0, 0.0);
        assert_eq!(fb.routing_key(0, 9), fb.routing_key(1, 9));
        // A costly tie — the thrash signature, same promote cost
        // measured on both owners — resolves toward the quieter shard.
        fb.observe(0, 9, FetchOutcome::Failover { cost_secs: 1.0 });
        fb.observe(1, 9, FetchOutcome::Failover { cost_secs: 1.0 });
        assert!(fb.routing_key(1, 9) < fb.routing_key(0, 9));
        // A strictly cheaper pair estimate outranks any churn gap.
        fb.observe(0, 9, FetchOutcome::LocalHit);
        assert!(fb.routing_key(0, 9) < fb.routing_key(1, 9));
        // An unknown pair leads with the miss prior.
        assert!(fb.routing_key(0, 77).0 >= 4.0);
    }

    #[test]
    fn windows_count_and_reset_per_shard() {
        let mut fb = CacheFeedback::new(2, 0.5, 4.0);
        fb.observe(0, 1, FetchOutcome::LocalHit);
        fb.observe(0, 2, FetchOutcome::Miss { cost_secs: 4.0 });
        fb.observe(0, 3, FetchOutcome::Failover { cost_secs: 0.2 });
        assert!((fb.window_miss_rate(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((fb.window_hit_rate(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(fb.window_miss_rate(1), 0.0, "untouched shard reads 0");
        fb.reset_window(0);
        assert_eq!(fb.window_miss_rate(0), 0.0);
        assert_eq!(fb.total_lookups(), 3, "lifetime totals survive resets");
        assert_eq!(fb.total_misses(), 1);
    }

    #[test]
    fn popularity_histogram_sorts_and_truncates() {
        let h = PopularityHistogram::from_counts(&[(5, 10), (1, 30), (9, 10), (2, 0)], 2);
        assert_eq!(h.top, vec![(1, 30), (5, 10)], "count desc, id asc");
        assert_eq!(h.distinct_templates, 3, "zero-count entries dropped");
        assert_eq!(h.total_requests, 50);
        let j = h.to_json();
        assert_eq!(j.get("total_requests").and_then(Json::as_u64), Some(50));
    }
}
