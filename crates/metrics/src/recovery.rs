//! Recovery accounting for fleet-level chaos runs.
//!
//! Fault-tolerance claims need more than end-of-run goodput: a fleet
//! that loses a shard, craters for two minutes, and then limps back
//! can post the same aggregate numbers as one that barely blinks. The
//! [`GoodputTimeline`] buckets completions-within-deadline into fixed
//! windows of virtual time, and [`FleetRecoveryReport`] reduces that
//! timeline against the first fault instant into the quantities the
//! paper's robustness story turns on: how deep the goodput dip went,
//! how much serving was lost while degraded (dip *area*), and how long
//! until goodput returned to a fraction of its pre-fault baseline —
//! alongside the recovery-machinery counters (reroutes, failovers,
//! re-primes) that explain *why* the dip was shallow.

use fps_json::{Json, ToJson};

/// Completions-within-deadline bucketed into fixed windows of virtual
/// time. Feed it each served request's *finish* instant; goodput in a
/// window is completions ÷ window length.
#[derive(Debug, Clone)]
pub struct GoodputTimeline {
    window_secs: f64,
    buckets: Vec<u64>,
}

impl GoodputTimeline {
    /// A timeline with `window_secs`-wide buckets (clamped to ≥ 1 ms so
    /// a zero width cannot divide away the rates).
    pub fn new(window_secs: f64) -> Self {
        Self {
            window_secs: window_secs.max(1e-3),
            buckets: Vec::new(),
        }
    }

    /// Window width, seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Records one in-deadline completion finishing at `at_secs`.
    pub fn record(&mut self, at_secs: f64) {
        let ix = (at_secs.max(0.0) / self.window_secs) as usize;
        if self.buckets.len() <= ix {
            self.buckets.resize(ix + 1, 0);
        }
        self.buckets[ix] += 1;
    }

    /// Goodput (requests/second) per window, in time order.
    pub fn rates(&self) -> Vec<f64> {
        self.buckets
            .iter()
            .map(|&c| c as f64 / self.window_secs)
            .collect()
    }

    /// Number of windows with any data (trailing empty windows before
    /// the last completion count; nothing is recorded past it).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// How a fleet's goodput responded to its first injected fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRecoveryReport {
    /// Timeline bucket width, seconds.
    pub window_secs: f64,
    /// Mean goodput over the full windows before the fault, rps.
    pub baseline_rps: f64,
    /// Virtual time of the first fault, seconds.
    pub fault_at_secs: f64,
    /// Deepest goodput shortfall below baseline after the fault, rps
    /// (0 when the fleet never dipped).
    pub dip_depth_rps: f64,
    /// Integrated shortfall below baseline after the fault, rps ×
    /// seconds — requests *not* served because of the fault.
    pub dip_area_rps_secs: f64,
    /// Virtual time goodput first returned to the recovery threshold
    /// after the dip bottom, seconds; `None` while still degraded.
    pub recovered_at_secs: Option<f64>,
    /// `recovered_at_secs − fault_at_secs`, or 0 when there was no
    /// dip to recover from.
    pub time_to_recover_secs: Option<f64>,
    /// Requests re-routed off a crashed or departed shard.
    pub rerouted: u64,
    /// Cache reads served by a peer replica instead of recomputing.
    pub failed_over: u64,
    /// Replica copies re-primed onto new owners by churn.
    pub re_primed: u64,
    /// Accepted requests that exhausted their retry budget after shard
    /// crashes.
    pub crash_failed: u64,
    /// Peer-cache reads short-circuited by an open circuit breaker.
    pub breaker_short_circuits: u64,
}

impl FleetRecoveryReport {
    /// Reduces a goodput timeline against the first fault at
    /// `fault_at_secs`.
    ///
    /// `horizon_secs` bounds the analysis to windows fully inside the
    /// arrival horizon, so the natural end-of-run taper (arrivals
    /// stop, goodput falls to zero) is not mistaken for an unrecovered
    /// dip. Recovery means: after the post-fault minimum, goodput
    /// climbs back to `recover_frac × baseline` (baseline = mean of
    /// the full pre-fault windows). A fleet that never dips below the
    /// threshold reports zero time-to-recover.
    ///
    /// Returns `None` when no full window precedes the fault (no
    /// baseline to recover *to*).
    pub fn analyze(
        timeline: &GoodputTimeline,
        fault_at_secs: f64,
        horizon_secs: f64,
        recover_frac: f64,
    ) -> Option<Self> {
        let w = timeline.window_secs;
        let rates = timeline.rates();
        // Full windows strictly before the fault form the baseline.
        let pre = ((fault_at_secs / w).floor() as usize).min(rates.len());
        if pre == 0 {
            return None;
        }
        let baseline = rates[..pre].iter().sum::<f64>() / pre as f64;
        let threshold = baseline * recover_frac.clamp(0.0, 1.0);
        // Post-fault windows fully inside the horizon.
        let post_end = ((horizon_secs / w).floor() as usize).min(rates.len());
        let post = &rates[pre..post_end];

        let mut dip_depth = 0.0f64;
        let mut dip_area = 0.0f64;
        let mut min_ix: Option<usize> = None;
        for (i, &g) in post.iter().enumerate() {
            let short = baseline - g;
            if short > dip_depth {
                dip_depth = short;
                min_ix = Some(i);
            }
            if short > 0.0 {
                dip_area += short * w;
            }
        }
        let dipped = post.iter().any(|&g| g < threshold);
        let (recovered_at, ttr) = if !dipped {
            (None, Some(0.0))
        } else {
            // First window at/after the dip bottom back over the
            // threshold; recovery is its *end* instant.
            let bottom = min_ix.unwrap_or(0);
            match post[bottom..].iter().position(|&g| g >= threshold) {
                Some(k) => {
                    let at = ((pre + bottom + k + 1) as f64) * w;
                    (Some(at), Some((at - fault_at_secs).max(0.0)))
                }
                None => (None, None),
            }
        };
        Some(Self {
            window_secs: w,
            baseline_rps: baseline,
            fault_at_secs,
            dip_depth_rps: dip_depth,
            dip_area_rps_secs: dip_area,
            recovered_at_secs: recovered_at,
            time_to_recover_secs: ttr,
            rerouted: 0,
            failed_over: 0,
            re_primed: 0,
            crash_failed: 0,
            breaker_short_circuits: 0,
        })
    }

    /// Attaches the recovery-machinery counters.
    pub fn with_counters(
        mut self,
        rerouted: u64,
        failed_over: u64,
        re_primed: u64,
        crash_failed: u64,
        breaker_short_circuits: u64,
    ) -> Self {
        self.rerouted = rerouted;
        self.failed_over = failed_over;
        self.re_primed = re_primed;
        self.crash_failed = crash_failed;
        self.breaker_short_circuits = breaker_short_circuits;
        self
    }

    /// Whether goodput came back within `bound_secs` of the fault.
    pub fn recovered_within(&self, bound_secs: f64) -> bool {
        self.time_to_recover_secs.is_some_and(|t| t <= bound_secs)
    }
}

impl ToJson for FleetRecoveryReport {
    fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("window_secs", self.window_secs)
            .with("baseline_rps", self.baseline_rps)
            .with("fault_at_secs", self.fault_at_secs)
            .with("dip_depth_rps", self.dip_depth_rps)
            .with("dip_area_rps_secs", self.dip_area_rps_secs)
            .with("rerouted", self.rerouted)
            .with("failed_over", self.failed_over)
            .with("re_primed", self.re_primed)
            .with("crash_failed", self.crash_failed)
            .with("breaker_short_circuits", self.breaker_short_circuits);
        if let Some(at) = self.recovered_at_secs {
            j = j.with("recovered_at_secs", at);
        }
        if let Some(t) = self.time_to_recover_secs {
            j = j.with("time_to_recover_secs", t);
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(rates: &[u64], window: f64) -> GoodputTimeline {
        let mut t = GoodputTimeline::new(window);
        for (i, &n) in rates.iter().enumerate() {
            for k in 0..n {
                // Spread completions inside the window; exact offsets
                // don't matter to the bucketing.
                t.record(i as f64 * window + window * (k as f64 + 0.5) / (n.max(1) as f64));
            }
        }
        t
    }

    #[test]
    fn timeline_buckets_by_finish_time() {
        let mut t = GoodputTimeline::new(10.0);
        assert!(t.is_empty());
        t.record(0.5);
        t.record(9.9);
        t.record(10.1);
        assert_eq!(t.len(), 2);
        let r = t.rates();
        assert!((r[0] - 0.2).abs() < 1e-12);
        assert!((r[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clean_run_reports_zero_time_to_recover() {
        // Steady 10/window before and after the "fault".
        let t = timeline(&[10, 10, 10, 10, 10, 10], 10.0);
        let r = FleetRecoveryReport::analyze(&t, 20.0, 60.0, 0.9).unwrap();
        assert!((r.baseline_rps - 1.0).abs() < 1e-12);
        assert_eq!(r.time_to_recover_secs, Some(0.0));
        assert_eq!(r.recovered_at_secs, None);
        assert_eq!(r.dip_depth_rps, 0.0);
        assert!(r.recovered_within(0.0));
    }

    #[test]
    fn dip_and_recovery_are_measured_from_the_fault() {
        // Baseline 1 rps; crash at 20 s; two degraded windows (0.2,
        // 0.5 rps) then back to 1.0.
        let t = timeline(&[10, 10, 2, 5, 10, 10], 10.0);
        let r = FleetRecoveryReport::analyze(&t, 20.0, 60.0, 0.9).unwrap();
        assert!((r.baseline_rps - 1.0).abs() < 1e-12);
        assert!((r.dip_depth_rps - 0.8).abs() < 1e-12);
        // Shortfall: 0.8·10 + 0.5·10 = 13 request-slots lost.
        assert!((r.dip_area_rps_secs - 13.0).abs() < 1e-9);
        // Window [40, 50) is the first back over 0.9 rps; recovery at
        // its end.
        assert_eq!(r.recovered_at_secs, Some(50.0));
        assert_eq!(r.time_to_recover_secs, Some(30.0));
        assert!(r.recovered_within(30.0));
        assert!(!r.recovered_within(29.0));
    }

    #[test]
    fn unrecovered_dip_reports_none() {
        let t = timeline(&[10, 10, 1, 1, 1, 1], 10.0);
        let r = FleetRecoveryReport::analyze(&t, 20.0, 60.0, 0.9).unwrap();
        assert_eq!(r.recovered_at_secs, None);
        assert_eq!(r.time_to_recover_secs, None);
        assert!(!r.recovered_within(1e9));
    }

    #[test]
    fn horizon_excludes_end_of_run_taper() {
        // Arrivals end at 40 s; the final window holds only a couple
        // of stragglers. Bounded analysis must not bill that taper as
        // fault-induced shortfall.
        let t = timeline(&[10, 10, 2, 10, 2], 10.0);
        let r = FleetRecoveryReport::analyze(&t, 20.0, 40.0, 0.9).unwrap();
        assert_eq!(r.recovered_at_secs, Some(40.0));
        assert_eq!(r.time_to_recover_secs, Some(20.0));
        assert!((r.dip_area_rps_secs - 8.0).abs() < 1e-9);
        // The same data analyzed naively past the horizon charges the
        // taper window to the fault — the guard matters.
        let naive = FleetRecoveryReport::analyze(&t, 20.0, 60.0, 0.9).unwrap();
        assert!(naive.dip_area_rps_secs > r.dip_area_rps_secs);
    }

    #[test]
    fn no_pre_fault_window_refuses() {
        let t = timeline(&[10, 10], 10.0);
        assert!(FleetRecoveryReport::analyze(&t, 5.0, 20.0, 0.9).is_none());
    }

    #[test]
    fn counters_attach_and_serialize() {
        let t = timeline(&[10, 10, 2, 10], 10.0);
        let r = FleetRecoveryReport::analyze(&t, 20.0, 40.0, 0.9)
            .unwrap()
            .with_counters(5, 4, 3, 2, 1);
        let j = r.to_json();
        assert_eq!(j.get("rerouted").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("failed_over").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("re_primed").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("crash_failed").and_then(Json::as_u64), Some(2));
        assert_eq!(
            j.get("breaker_short_circuits").and_then(Json::as_u64),
            Some(1)
        );
        assert!(j.get("time_to_recover_secs").is_some());
        let back = Json::parse(&j.to_string_compact()).unwrap();
        assert_eq!(back.get("rerouted").and_then(Json::as_u64), Some(5));
    }
}
