//! Least-squares linear regression with R².
//!
//! FlashPS's scheduler (§4.4) estimates a worker's computation and
//! cache-loading latency with linear models fitted on offline profiling
//! data; Fig. 11 reports R² = 0.99 for those fits. This module is that
//! estimator.

/// A fitted line `y = slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r2: f64,
}

impl LinearRegression {
    /// Fits a line to `(x, y)` pairs by ordinary least squares.
    ///
    /// Returns `None` for fewer than two points, non-finite inputs, or
    /// zero variance in `x`. A perfectly constant `y` yields `r2 = 1.0`
    /// (the line predicts it exactly).
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        if points.len() < 2 {
            return None;
        }
        if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return None;
        }
        let n = points.len() as f64;
        let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
        let sxx: f64 = points
            .iter()
            .map(|(x, _)| (x - mean_x) * (x - mean_x))
            .sum();
        let sxy: f64 = points
            .iter()
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let ss_tot: f64 = points
            .iter()
            .map(|(_, y)| (y - mean_y) * (y - mean_y))
            .sum();
        let ss_res: f64 = points
            .iter()
            .map(|(x, y)| {
                let pred = slope * x + intercept;
                (y - pred) * (y - pred)
            })
            .sum();
        let r2 = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(Self {
            slope,
            intercept,
            r2,
        })
    }

    /// Predicts `y` for an `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_is_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let r = LinearRegression::fit(&pts).unwrap();
        assert!((r.slope - 3.0).abs() < 1e-12);
        assert!((r.intercept - 2.0).abs() < 1e-12);
        assert!((r.r2 - 1.0).abs() < 1e-12);
        assert!((r.predict(100.0) - 302.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                // Deterministic "noise".
                (x, 2.0 * x + 1.0 + (x * 1.7).sin() * 0.5)
            })
            .collect();
        let r = LinearRegression::fit(&pts).unwrap();
        assert!(r.r2 > 0.99, "r2 {}", r.r2);
        assert!(r.r2 < 1.0);
        assert!((r.slope - 2.0).abs() < 0.05);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(LinearRegression::fit(&[]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearRegression::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(LinearRegression::fit(&[(1.0, f64::NAN), (2.0, 3.0)]).is_none());
    }

    #[test]
    fn constant_y_fits_perfectly() {
        let r = LinearRegression::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(r.slope, 0.0);
        assert_eq!(r.intercept, 5.0);
        assert_eq!(r.r2, 1.0);
    }

    proptest! {
        #[test]
        fn prop_recovers_arbitrary_lines(
            slope in -100.0f64..100.0,
            intercept in -100.0f64..100.0,
        ) {
            let pts: Vec<(f64, f64)> =
                (0..8).map(|i| (i as f64, slope * i as f64 + intercept)).collect();
            let r = LinearRegression::fit(&pts).unwrap();
            prop_assert!((r.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
            prop_assert!((r.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
            prop_assert!(r.r2 > 1.0 - 1e-9);
        }

        #[test]
        fn prop_r2_is_bounded_above(
            ys in proptest::collection::vec(-1e3f64..1e3, 3..32),
        ) {
            let pts: Vec<(f64, f64)> =
                ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect();
            if let Some(r) = LinearRegression::fit(&pts) {
                prop_assert!(r.r2 <= 1.0 + 1e-9);
            }
        }
    }
}
