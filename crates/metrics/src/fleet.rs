//! Cross-shard SLO aggregation.
//!
//! A fleet run produces one [`SloReport`] per shard plus the latency
//! and queue-wait histograms those reports were derived from. Folding
//! them into a fleet-level view is mostly addition — counts sum,
//! goodput is total served over the common window — with one trap:
//! **percentiles do not average**. The mean of ten per-shard p95s says
//! nothing about the fleet p95 (one slow shard dominates the pooled
//! tail while barely moving the average). The merge here carries the
//! per-shard histograms and takes percentiles of the *merged* counts,
//! which is exact up to bucket resolution.

use crate::feedback::PopularityHistogram;
use crate::histogram::Histogram;
use crate::slo::{RungServed, SloReport, StageQueueStats};
use fps_json::{Json, ToJson};

/// One shard's contribution to a fleet report: its SLO accounting plus
/// the histograms that make cross-shard percentiles mergeable.
#[derive(Debug, Clone)]
pub struct ShardSloReport {
    /// Shard id within the fleet.
    pub shard: u32,
    /// The shard's own SLO accounting.
    pub report: SloReport,
    /// End-to-end latency of served requests, seconds.
    pub latency_hist: Histogram,
    /// Queue wait (arrival → service start) of served requests,
    /// seconds.
    pub queue_wait_hist: Histogram,
}

impl ToJson for ShardSloReport {
    fn to_json(&self) -> Json {
        Json::object()
            .with("shard", self.shard as u64)
            .with("report", self.report.to_json())
            .with("latency_p50_secs", self.latency_hist.percentile(0.50))
            .with("latency_p95_secs", self.latency_hist.percentile(0.95))
            .with("queue_wait_p95_secs", self.queue_wait_hist.percentile(0.95))
    }
}

/// Fleet-wide cache and failover counters, surfaced on the SLO rollup
/// so chaos experiments report them without scraping traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetCacheCounters {
    /// Requests served from the shard's own host-resident cache.
    pub local_hits: u64,
    /// Requests served from a peer replica after a local miss.
    pub failover_hits: u64,
    /// Requests that recomputed cold.
    pub misses: u64,
    /// Peer-cache reads short-circuited by an open circuit breaker.
    pub breaker_short_circuits: u64,
    /// Replica copies re-primed onto new owners by churn.
    pub re_primes: u64,
}

impl FleetCacheCounters {
    /// Folds another set of counters into this one (multi-run or
    /// multi-cell aggregation).
    pub fn absorb(&mut self, other: &FleetCacheCounters) {
        self.local_hits += other.local_hits;
        self.failover_hits += other.failover_hits;
        self.misses += other.misses;
        self.breaker_short_circuits += other.breaker_short_circuits;
        self.re_primes += other.re_primes;
    }

    /// Fraction of requests that avoided a cold recompute (local or
    /// failover), in `[0, 1]`.
    pub fn effective_hit_rate(&self) -> f64 {
        let total = self.local_hits + self.failover_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.local_hits + self.failover_hits) as f64 / total as f64
        }
    }
}

impl ToJson for FleetCacheCounters {
    fn to_json(&self) -> Json {
        Json::object()
            .with("local_hits", self.local_hits)
            .with("failover_hits", self.failover_hits)
            .with("misses", self.misses)
            .with("breaker_short_circuits", self.breaker_short_circuits)
            .with("re_primes", self.re_primes)
            .with("effective_hit_rate", self.effective_hit_rate())
    }
}

/// A fleet-level rollup: the merged [`SloReport`] plus the pooled
/// histograms it was derived from.
#[derive(Debug, Clone)]
pub struct FleetSloReport {
    /// Merged fleet-wide accounting; percentiles come from the pooled
    /// histograms below, not from averaging shard percentiles.
    pub fleet: SloReport,
    /// Pooled end-to-end latency across all shards.
    pub latency_hist: Histogram,
    /// Pooled queue wait across all shards.
    pub queue_wait_hist: Histogram,
    /// Shards that contributed.
    pub shards: u32,
    /// Cache/failover counters, when the run collected them.
    pub cache: Option<FleetCacheCounters>,
    /// Per-template request histogram, when the run collected one —
    /// makes placement decisions inspectable post-run.
    pub popularity: Option<PopularityHistogram>,
}

impl FleetSloReport {
    /// Merges per-shard reports over a common serving window of
    /// `window_secs` virtual seconds. Returns `None` when `shards` is
    /// empty or the histograms have mismatched geometry (which would
    /// make the pooled percentiles meaningless).
    pub fn merge(label: &str, window_secs: f64, shards: &[ShardSloReport]) -> Option<Self> {
        let first = shards.first()?;
        let mut latency_hist = first.latency_hist.clone();
        let mut queue_wait_hist = first.queue_wait_hist.clone();
        let mut fleet = SloReport {
            label: label.to_string(),
            deadline_secs: first.report.deadline_secs,
            submitted: 0,
            served: 0,
            served_within_deadline: 0,
            shed: 0,
            deadline_rejected: 0,
            other_rejected: 0,
            goodput_rps: 0.0,
            goodput_at_deadline_rps: 0.0,
            p95_latency_secs: 0.0,
            mean_latency_secs: 0.0,
            rungs: Vec::new(),
            stages: Vec::new(),
            bubble_fraction: None,
        };
        // Per-stage queue stats pool across shards exactly like the
        // latency histograms: merged counts, recomputed percentiles.
        let stage_groups: Vec<&[StageQueueStats]> =
            shards.iter().map(|s| s.report.stages.as_slice()).collect();
        fleet.stages = StageQueueStats::pool(&stage_groups)?;
        for (i, s) in shards.iter().enumerate() {
            if i > 0
                && (!latency_hist.merge(&s.latency_hist)
                    || !queue_wait_hist.merge(&s.queue_wait_hist))
            {
                return None;
            }
            fleet.submitted += s.report.submitted;
            fleet.served += s.report.served;
            fleet.served_within_deadline += s.report.served_within_deadline;
            fleet.shed += s.report.shed;
            fleet.deadline_rejected += s.report.deadline_rejected;
            fleet.other_rejected += s.report.other_rejected;
            for rung in &s.report.rungs {
                match fleet.rungs.iter_mut().find(|r| r.label == rung.label) {
                    Some(r) => r.served += rung.served,
                    None => fleet.rungs.push(RungServed::new(
                        rung.label.clone(),
                        rung.served,
                        rung.quality,
                    )),
                }
            }
        }
        if window_secs > 0.0 {
            fleet.goodput_rps = fleet.served as f64 / window_secs;
            fleet.goodput_at_deadline_rps = fleet.served_within_deadline as f64 / window_secs;
        }
        fleet.p95_latency_secs = latency_hist.percentile(0.95);
        fleet.mean_latency_secs = latency_hist.mean();
        Some(Self {
            fleet,
            latency_hist,
            queue_wait_hist,
            shards: shards.len() as u32,
            cache: None,
            popularity: None,
        })
    }

    /// Attaches fleet-wide cache/failover counters to the rollup.
    pub fn with_cache(mut self, cache: FleetCacheCounters) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches the run's per-template popularity histogram.
    pub fn with_popularity(mut self, popularity: PopularityHistogram) -> Self {
        self.popularity = Some(popularity);
        self
    }

    /// Pooled queue-wait p95 across the fleet, seconds.
    pub fn queue_wait_p95_secs(&self) -> f64 {
        self.queue_wait_hist.percentile(0.95)
    }
}

impl ToJson for FleetSloReport {
    fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("shards", self.shards as u64)
            .with("fleet", self.fleet.to_json())
            .with("queue_wait_p95_secs", self.queue_wait_p95_secs());
        if let Some(cache) = &self.cache {
            j = j.with("cache", cache.to_json());
        }
        if let Some(popularity) = &self.popularity {
            j = j.with("popularity", popularity.to_json());
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: u32, served: u64, latencies: &[f64]) -> ShardSloReport {
        let mut latency_hist = Histogram::new(0.0, 60.0, 600).unwrap();
        let mut queue_wait_hist = Histogram::new(0.0, 60.0, 600).unwrap();
        for &l in latencies {
            latency_hist.record(l);
            queue_wait_hist.record(l / 2.0);
        }
        ShardSloReport {
            shard: id,
            report: SloReport {
                label: format!("shard-{id}"),
                deadline_secs: 30.0,
                submitted: served + 10,
                served,
                served_within_deadline: served.saturating_sub(1),
                shed: 10,
                deadline_rejected: 0,
                other_rejected: 0,
                goodput_rps: 0.0,
                goodput_at_deadline_rps: 0.0,
                p95_latency_secs: latency_hist.percentile(0.95),
                mean_latency_secs: latency_hist.mean(),
                rungs: vec![RungServed::new("flashps-kv", served, Some(1.0))],
                stages: Vec::new(),
                bubble_fraction: None,
            },
            latency_hist,
            queue_wait_hist,
        }
    }

    #[test]
    fn counts_sum_and_rungs_merge_by_label() {
        let a = shard(0, 100, &[1.0; 100]);
        let b = shard(1, 50, &[2.0; 50]);
        let f = FleetSloReport::merge("fleet", 100.0, &[a, b]).unwrap();
        assert_eq!(f.fleet.submitted, 170);
        assert_eq!(f.fleet.served, 150);
        assert_eq!(f.fleet.shed, 20);
        assert_eq!(f.fleet.lost(), 0);
        assert!((f.fleet.goodput_rps - 1.5).abs() < 1e-12);
        assert_eq!(f.fleet.rungs.len(), 1);
        assert_eq!(f.fleet.rungs[0].served, 150);
        assert_eq!(f.shards, 2);
    }

    #[test]
    fn fleet_p95_is_pooled_not_averaged() {
        // Shard 0: 900 fast requests around 1s; shard 1: 100 slow
        // around 40s. Pooled p95 lands in the slow tail; the average of
        // per-shard p95s does not.
        let fast: Vec<f64> = (0..900).map(|i| 1.0 + (i % 10) as f64 * 0.01).collect();
        let slow: Vec<f64> = (0..100).map(|i| 40.0 + (i % 10) as f64 * 0.01).collect();
        let a = shard(0, 900, &fast);
        let b = shard(1, 100, &slow);
        let naive = (a.report.p95_latency_secs + b.report.p95_latency_secs) / 2.0;
        let f = FleetSloReport::merge("fleet", 100.0, &[a, b]).unwrap();
        assert!(
            f.fleet.p95_latency_secs > 35.0,
            "pooled p95 sits in the tail"
        );
        assert!((naive - f.fleet.p95_latency_secs).abs() > 10.0);
    }

    #[test]
    fn mismatched_geometry_and_empty_input_refuse() {
        assert!(FleetSloReport::merge("fleet", 1.0, &[]).is_none());
        let a = shard(0, 10, &[1.0]);
        let mut b = shard(1, 10, &[1.0]);
        b.latency_hist = Histogram::new(0.0, 10.0, 10).unwrap();
        assert!(FleetSloReport::merge("fleet", 1.0, &[a, b]).is_none());
    }

    #[test]
    fn serializes_round_trip() {
        let f = FleetSloReport::merge("fleet", 10.0, &[shard(0, 10, &[1.0; 10])]).unwrap();
        let j = f.to_json();
        assert_eq!(j.get("shards").and_then(Json::as_u64), Some(1));
        let back = Json::parse(&j.to_string_compact()).unwrap();
        assert_eq!(
            back.get("fleet")
                .and_then(|f| f.get("served"))
                .and_then(Json::as_u64),
            Some(10)
        );
    }
}
