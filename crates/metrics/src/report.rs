//! Fixed-width text tables for experiment output.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded, long rows truncated to the
    /// header width.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.header.len()).cloned().collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with engineering-friendly precision (3 significant
/// decimals for small values, fewer for large ones).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row_strs(&["a", "1"]);
        t.row_strs(&["longer-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both value cells align to the same column.
        let col_a = lines[2].find('1').unwrap();
        let col_b = lines[3].find('2').unwrap();
        assert_eq!(col_a, col_b);
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row_strs(&["only-one"]);
        t.row_strs(&["x", "y", "extra"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains("extra"));
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(0.5), "0.500");
        assert_eq!(fmt_f64(0.01234), "0.01234");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(&["h"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
