//! SLO-attainment accounting for overload-controlled runs.
//!
//! Under overload, raw throughput stops being the figure of merit: a
//! request served long after its deadline is wasted work, and a
//! request shed at admission is cheaper than one rejected after
//! queueing for thirty seconds. An [`SloReport`] summarizes one run
//! against a deadline: goodput *at the deadline*, the split between
//! admission sheds and in-queue deadline rejections, and — when the
//! degradation ladder was active — how much work each rung served and
//! at what output quality.

use fps_json::{Json, ToJson};

use crate::histogram::Histogram;

/// Queueing behaviour of one pipeline stage (or one bounded
/// inter-stage edge) over a run.
///
/// Percentiles are carried alongside the histogram they were computed
/// from, so cross-run (or cross-shard) aggregation can *pool* the
/// histograms and recompute — the same never-average-percentiles
/// contract the fleet rollup enforces.
#[derive(Debug, Clone, PartialEq)]
pub struct StageQueueStats {
    /// Stage label ("text-encode", "denoise", ...).
    pub stage: String,
    /// Requests that passed through the stage's queue.
    pub entered: u64,
    /// Peak queue depth observed.
    pub max_depth: u64,
    /// Median queue wait (enqueue → dequeue), seconds.
    pub queue_wait_p50_secs: f64,
    /// P95 queue wait, seconds.
    pub queue_wait_p95_secs: f64,
    /// The wait histogram the percentiles came from; kept so merges
    /// pool counts instead of averaging percentiles.
    pub wait_hist: Histogram,
}

impl StageQueueStats {
    /// Builds stats from a wait histogram; percentiles are derived
    /// here so they can never drift from the histogram.
    pub fn from_hist(
        stage: impl Into<String>,
        entered: u64,
        max_depth: u64,
        wait_hist: Histogram,
    ) -> Self {
        Self {
            stage: stage.into(),
            entered,
            max_depth,
            queue_wait_p50_secs: wait_hist.percentile(0.50),
            queue_wait_p95_secs: wait_hist.percentile(0.95),
            wait_hist,
        }
    }

    /// Pools per-stage stats from many reports by stage label: counts
    /// sum, depths max, histograms merge, and the percentiles are
    /// recomputed from the *merged* counts. Returns `None` when two
    /// same-label histograms have mismatched geometry (pooling them
    /// would be meaningless), mirroring the fleet merge.
    pub fn pool(groups: &[&[StageQueueStats]]) -> Option<Vec<StageQueueStats>> {
        let mut pooled: Vec<StageQueueStats> = Vec::new();
        for group in groups {
            for s in *group {
                match pooled.iter_mut().find(|p| p.stage == s.stage) {
                    Some(p) => {
                        if !p.wait_hist.merge(&s.wait_hist) {
                            return None;
                        }
                        p.entered += s.entered;
                        p.max_depth = p.max_depth.max(s.max_depth);
                        p.queue_wait_p50_secs = p.wait_hist.percentile(0.50);
                        p.queue_wait_p95_secs = p.wait_hist.percentile(0.95);
                    }
                    None => pooled.push(s.clone()),
                }
            }
        }
        Some(pooled)
    }
}

impl ToJson for StageQueueStats {
    fn to_json(&self) -> Json {
        Json::object()
            .with("stage", self.stage.as_str())
            .with("entered", self.entered)
            .with("max_depth", self.max_depth)
            .with("queue_wait_p50_secs", self.queue_wait_p50_secs)
            .with("queue_wait_p95_secs", self.queue_wait_p95_secs)
    }
}

/// Work served at one degradation rung.
#[derive(Debug, Clone, PartialEq)]
pub struct RungServed {
    /// Rung label ("flashps-kv", "teacache-0.35", ...).
    pub label: String,
    /// Requests served at this rung.
    pub served: u64,
    /// Output quality at this rung versus the full-quality reference
    /// (e.g. SSIM), when a quality probe was run.
    pub quality: Option<f64>,
    /// Median queue wait (arrival → batch join) of requests served at
    /// this rung, seconds. `None` when no trace-derived aggregates
    /// were computed.
    pub queue_wait_p50_secs: Option<f64>,
    /// P95 queue wait at this rung, seconds.
    pub queue_wait_p95_secs: Option<f64>,
}

impl RungServed {
    /// A rung entry with no trace-derived aggregates.
    pub fn new(label: impl Into<String>, served: u64, quality: Option<f64>) -> Self {
        Self {
            label: label.into(),
            served,
            quality,
            queue_wait_p50_secs: None,
            queue_wait_p95_secs: None,
        }
    }
}

impl ToJson for RungServed {
    fn to_json(&self) -> Json {
        let mut j = Json::object()
            .with("label", self.label.as_str())
            .with("served", self.served);
        if let Some(q) = self.quality {
            j = j.with("quality", q);
        }
        if let Some(p) = self.queue_wait_p50_secs {
            j = j.with("queue_wait_p50_secs", p);
        }
        if let Some(p) = self.queue_wait_p95_secs {
            j = j.with("queue_wait_p95_secs", p);
        }
        j
    }
}

/// SLO attainment of one run under a deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Run label ("overload-on", "overload-off", ...).
    pub label: String,
    /// SLO deadline, seconds from arrival.
    pub deadline_secs: f64,
    /// Requests submitted.
    pub submitted: u64,
    /// Requests served to completion (at any latency).
    pub served: u64,
    /// Served requests that completed within the deadline.
    pub served_within_deadline: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests rejected in the queue after their deadline passed.
    pub deadline_rejected: u64,
    /// Requests rejected for any other reason (retry budget, ...).
    pub other_rejected: u64,
    /// Served requests per second of virtual time.
    pub goodput_rps: f64,
    /// Deadline-meeting requests per second of virtual time — the
    /// figure of merit under overload.
    pub goodput_at_deadline_rps: f64,
    /// P95 end-to-end latency of served requests, seconds.
    pub p95_latency_secs: f64,
    /// Mean end-to-end latency of served requests, seconds.
    pub mean_latency_secs: f64,
    /// Served work by degradation rung, ladder order. Empty when the
    /// run had no overload control.
    pub rungs: Vec<RungServed>,
    /// Per-stage queue stats when the run executed as a stage graph
    /// (queue depth and pooled queue-wait percentiles per stage).
    /// Empty for monolithic runs.
    pub stages: Vec<StageQueueStats>,
    /// GPU bubble fraction over the run — idle GPU time inside the
    /// serving window divided by the window, derived from a trace
    /// (`fps-trace::bubble_in_window`). `None` when the run was not
    /// traced.
    pub bubble_fraction: Option<f64>,
}

impl SloReport {
    /// Requests that vanished without being served, shed, or rejected.
    /// The conservation contract keeps this at zero.
    pub fn lost(&self) -> u64 {
        self.submitted
            .saturating_sub(self.served + self.shed + self.deadline_rejected + self.other_rejected)
    }

    /// Fraction of *submitted* requests that met the deadline — the
    /// strictest attainment measure: sheds and rejections all count
    /// against it.
    pub fn attainment(&self) -> f64 {
        if self.submitted == 0 {
            1.0
        } else {
            self.served_within_deadline as f64 / self.submitted as f64
        }
    }

    /// Fraction of *served* requests that met the deadline.
    pub fn served_attainment(&self) -> f64 {
        if self.served == 0 {
            1.0
        } else {
            self.served_within_deadline as f64 / self.served as f64
        }
    }

    /// Fraction of submitted requests turned away before service
    /// (admission sheds plus in-queue rejections).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            (self.shed + self.deadline_rejected + self.other_rejected) as f64
                / self.submitted as f64
        }
    }
}

impl ToJson for SloReport {
    fn to_json(&self) -> Json {
        let j = Json::object()
            .with("label", self.label.as_str())
            .with("deadline_secs", self.deadline_secs)
            .with("submitted", self.submitted)
            .with("served", self.served)
            .with("served_within_deadline", self.served_within_deadline)
            .with("shed", self.shed)
            .with("deadline_rejected", self.deadline_rejected)
            .with("other_rejected", self.other_rejected)
            .with("lost", self.lost())
            .with("goodput_rps", self.goodput_rps)
            .with("goodput_at_deadline_rps", self.goodput_at_deadline_rps)
            .with("p95_latency_secs", self.p95_latency_secs)
            .with("mean_latency_secs", self.mean_latency_secs)
            .with("attainment", self.attainment())
            .with("shed_rate", self.shed_rate())
            .with("rungs", self.rungs.to_json());
        let j = if self.stages.is_empty() {
            j
        } else {
            j.with("stages", self.stages.to_json())
        };
        match self.bubble_fraction {
            Some(b) => j.with("bubble_fraction", b),
            None => j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SloReport {
        SloReport {
            label: "overload-on".into(),
            deadline_secs: 30.0,
            submitted: 200,
            served: 140,
            served_within_deadline: 126,
            shed: 50,
            deadline_rejected: 8,
            other_rejected: 2,
            goodput_rps: 1.4,
            goodput_at_deadline_rps: 1.26,
            p95_latency_secs: 22.0,
            mean_latency_secs: 9.0,
            rungs: vec![
                RungServed {
                    label: "flashps-kv".into(),
                    served: 90,
                    quality: Some(1.0),
                    queue_wait_p50_secs: Some(0.8),
                    queue_wait_p95_secs: Some(4.0),
                },
                RungServed::new("teacache-0.35", 50, Some(0.92)),
            ],
            stages: Vec::new(),
            bubble_fraction: Some(0.015),
        }
    }

    #[test]
    fn conservation_and_rates() {
        let r = report();
        assert_eq!(r.lost(), 0);
        assert!((r.attainment() - 0.63).abs() < 1e-12);
        assert!((r.served_attainment() - 0.9).abs() < 1e-12);
        assert!((r.shed_rate() - 0.3).abs() < 1e-12);
        let mut broken = report();
        broken.shed = 0;
        assert_eq!(broken.lost(), 50);
    }

    #[test]
    fn empty_run_is_vacuously_attained() {
        let r = SloReport {
            label: "empty".into(),
            deadline_secs: 30.0,
            submitted: 0,
            served: 0,
            served_within_deadline: 0,
            shed: 0,
            deadline_rejected: 0,
            other_rejected: 0,
            goodput_rps: 0.0,
            goodput_at_deadline_rps: 0.0,
            p95_latency_secs: 0.0,
            mean_latency_secs: 0.0,
            rungs: Vec::new(),
            stages: Vec::new(),
            bubble_fraction: None,
        };
        assert_eq!(r.lost(), 0);
        assert_eq!(r.attainment(), 1.0);
        assert_eq!(r.served_attainment(), 1.0);
        assert_eq!(r.shed_rate(), 0.0);
    }

    #[test]
    fn serializes_with_rung_breakdown() {
        let j = report().to_json();
        assert_eq!(j.get("shed").and_then(Json::as_u64), Some(50));
        assert_eq!(j.get("lost").and_then(Json::as_u64), Some(0));
        let rungs = j.get("rungs").and_then(Json::as_array).unwrap();
        assert_eq!(rungs.len(), 2);
        assert_eq!(
            rungs[0].get("label").and_then(Json::as_str),
            Some("flashps-kv")
        );
        let text = j.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("served_within_deadline").and_then(Json::as_u64),
            Some(126)
        );
        assert_eq!(
            back.get("bubble_fraction").and_then(Json::as_f64),
            Some(0.015)
        );
        assert_eq!(
            rungs[0].get("queue_wait_p95_secs").and_then(Json::as_f64),
            Some(4.0)
        );
        assert!(rungs[1].get("queue_wait_p50_secs").is_none());
    }

    fn stage_stats(stage: &str, waits: &[f64], max_depth: u64) -> StageQueueStats {
        let mut h = Histogram::new(0.0, 60.0, 600).unwrap();
        for &w in waits {
            h.record(w);
        }
        StageQueueStats::from_hist(stage, waits.len() as u64, max_depth, h)
    }

    #[test]
    fn stage_stats_pool_histograms_not_percentiles() {
        // One run saw fast denoise waits, another saw a slow tail. The
        // pooled p95 must land in the tail; averaging the two per-run
        // p95s would not.
        let fast: Vec<f64> = (0..900).map(|i| 1.0 + (i % 10) as f64 * 0.01).collect();
        let slow: Vec<f64> = (0..100).map(|i| 40.0 + (i % 10) as f64 * 0.01).collect();
        let a = vec![stage_stats("denoise", &fast, 4)];
        let b = vec![stage_stats("denoise", &slow, 9)];
        let naive = (a[0].queue_wait_p95_secs + b[0].queue_wait_p95_secs) / 2.0;
        let pooled = StageQueueStats::pool(&[&a, &b]).unwrap();
        assert_eq!(pooled.len(), 1);
        assert_eq!(pooled[0].entered, 1000);
        assert_eq!(pooled[0].max_depth, 9, "depths max, not sum");
        assert!(pooled[0].queue_wait_p95_secs > 35.0, "pooled p95 in tail");
        assert!((naive - pooled[0].queue_wait_p95_secs).abs() > 10.0);
    }

    #[test]
    fn stage_stats_pool_refuses_mismatched_geometry_and_keeps_labels() {
        let a = vec![stage_stats("text-encode", &[1.0], 1)];
        let mut b = vec![stage_stats("text-encode", &[1.0], 1)];
        b[0].wait_hist = Histogram::new(0.0, 10.0, 10).unwrap();
        assert!(StageQueueStats::pool(&[&a, &b]).is_none());
        // Distinct labels never merge.
        let c = vec![stage_stats("vae-decode", &[2.0], 3)];
        let pooled = StageQueueStats::pool(&[&a, &c]).unwrap();
        assert_eq!(pooled.len(), 2);
    }

    #[test]
    fn stages_serialize_only_when_present() {
        let mut r = report();
        assert!(r.to_json().get("stages").is_none());
        r.stages = vec![stage_stats("denoise", &[0.5, 1.5], 2)];
        let j = r.to_json();
        let stages = j.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(
            stages[0].get("stage").and_then(Json::as_str),
            Some("denoise")
        );
        assert_eq!(stages[0].get("max_depth").and_then(Json::as_u64), Some(2));
    }
}
