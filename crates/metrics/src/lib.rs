//! Measurement utilities for the FlashPS experiments.
//!
//! - [`stats`] — percentiles and moment summaries for latency samples.
//! - [`histogram`] — fixed-width histograms (the mask-ratio
//!   distributions of Fig. 3).
//! - [`regression`] — least-squares linear fits with R², the latency
//!   estimators of Fig. 11 and Algorithm 2.
//! - [`latency`] — a recorder that accumulates per-request latency
//!   breakdowns (queueing, loading, compute) and summarizes them.
//! - [`report`] — fixed-width text tables for experiment binaries.
//! - [`degradation`] — resilience accounting (goodput, retries,
//!   fallback rate, lost-request conservation) under fault injection.
//! - [`slo`] — SLO-attainment accounting (goodput at deadline, shed
//!   rate, per-rung quality) for overload-controlled runs.
//! - [`fleet`] — cross-shard SLO aggregation with histogram-merged
//!   percentiles (fleet p95 is pooled, never averaged).
//! - [`recovery`] — goodput timelines and time-to-recover / dip-area
//!   accounting for fleet chaos runs.
//! - [`autoscaler`] — hysteretic pool scaling from windowed SLO
//!   signals (shed rate, queue-wait p95, utilization, cache pressure),
//!   shared by the fleet's per-shard pools and the stage-graph's
//!   per-stage pools.
//! - [`feedback`] — windowed per-shard/per-template cache hit rate and
//!   fetch-cost EWMAs, published by the cache tier and consumed as a
//!   routing cost term and an autoscaler signal.

pub mod autoscaler;
pub mod degradation;
pub mod feedback;
pub mod fleet;
pub mod histogram;
pub mod latency;
pub mod plot;
pub mod recovery;
pub mod regression;
pub mod report;
pub mod slo;
pub mod stats;
pub mod throughput;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleDecision, ScaleGuard, ShardSignal};
pub use degradation::DegradationReport;
pub use feedback::{CacheFeedback, FetchOutcome, PopularityHistogram};
pub use fleet::{FleetCacheCounters, FleetSloReport, ShardSloReport};
pub use histogram::Histogram;
pub use latency::{LatencyBreakdown, LatencyRecorder};
pub use plot::{line_plot, Series};
pub use recovery::{FleetRecoveryReport, GoodputTimeline};
pub use regression::LinearRegression;
pub use report::Table;
pub use slo::{RungServed, SloReport, StageQueueStats};
pub use stats::Summary;
pub use throughput::ThroughputCounter;
