//! Percentiles and moment summaries.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (P50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty input
    /// or any non-finite sample.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Some(Self {
            count,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }
}

/// Returns the `p`-th percentile (0–100) of already-sorted data using
/// linear interpolation between closest ranks. Returns `NAN` for empty
/// input.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Convenience: the `p`-th percentile of unsorted data.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    percentile_sorted(&sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 40.0);
        assert_eq!(percentile(&data, 50.0), 25.0);
        // 95th of 4 samples: rank 2.85 → between 30 and 40.
        let p95 = percentile(&data, 95.0);
        assert!(p95 > 38.0 && p95 < 40.0);
    }

    #[test]
    fn percentile_edge_cases() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // Out-of-range p clamps.
        assert_eq!(percentile(&[1.0, 2.0], 150.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], -5.0), 1.0);
    }

    proptest! {
        #[test]
        fn prop_percentiles_are_monotone(
            mut data in proptest::collection::vec(0.0f64..1e6, 2..64),
        ) {
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p25 = percentile_sorted(&data, 25.0);
            let p50 = percentile_sorted(&data, 50.0);
            let p95 = percentile_sorted(&data, 95.0);
            prop_assert!(p25 <= p50 && p50 <= p95);
            prop_assert!(p25 >= data[0] && p95 <= data[data.len() - 1]);
        }

        #[test]
        fn prop_summary_bounds(data in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            let s = Summary::of(&data).unwrap();
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
            prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99);
            prop_assert!(s.p99 <= s.max);
        }
    }
}
