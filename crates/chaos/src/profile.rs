//! Canonical fault profiles for the ablation experiments.

use fps_simtime::{FaultClock, FaultRng, SimDuration, SimTime};

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// The fault profiles exercised by `ablation_chaos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults: the control arm, expected to match the fault-free
    /// simulator within noise.
    Baseline,
    /// Recurring worker crashes with restarts, plus occasional
    /// transient slowdowns and a small request-drop probability.
    WorkerCrash,
    /// Cache-entry loss and corruption under a degraded disk tier.
    CacheLossSlowDisk,
    /// Capacity loss during traffic peaks: dense severe worker
    /// slowdowns plus a small transit-drop probability — the
    /// environment the overload controller's admission and ladder are
    /// designed for.
    OverloadBurst,
    /// Sustained disk brown-out: repeated, severe bandwidth collapse
    /// on the disk tier with recurring checksum corruption — the
    /// environment the cache-read circuit breaker is designed for.
    DiskBrownout,
}

impl FaultProfile {
    /// Every profile, in ablation order.
    pub const ALL: [FaultProfile; 5] = [
        FaultProfile::Baseline,
        FaultProfile::WorkerCrash,
        FaultProfile::CacheLossSlowDisk,
        FaultProfile::OverloadBurst,
        FaultProfile::DiskBrownout,
    ];

    /// Profile label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::WorkerCrash => "worker-crash",
            Self::CacheLossSlowDisk => "cache-loss-slow-disk",
            Self::OverloadBurst => "overload-burst",
            Self::DiskBrownout => "disk-brownout",
        }
    }

    /// Generates the profile's fault plan for a run of length
    /// `horizon` over `workers` workers and templates `0..num_templates`.
    pub fn plan(
        self,
        seed: u64,
        horizon: SimTime,
        workers: usize,
        num_templates: u64,
    ) -> FaultPlan {
        match self {
            Self::Baseline => FaultPlan::none(),
            Self::WorkerCrash => worker_crash_plan(seed, horizon, workers),
            Self::CacheLossSlowDisk => cache_loss_plan(seed, horizon, num_templates),
            Self::OverloadBurst => overload_burst_plan(seed, horizon, workers),
            Self::DiskBrownout => disk_brownout_plan(seed, horizon, num_templates),
        }
    }
}

/// Crashes roughly every quarter of the horizon per cluster, 1–4 s
/// downtime, plus transient 2–3× slowdowns and 1% request drops.
fn worker_crash_plan(seed: u64, horizon: SimTime, workers: usize) -> FaultPlan {
    let mut events = Vec::new();
    if workers > 0 {
        let mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 4.0).max(1.0));
        let mut crashes = FaultClock::new(seed, "profile/crash", mean);
        while let Some(at) = crashes.next_before(horizon) {
            let rng = crashes.rng();
            events.push(FaultEvent {
                at,
                kind: FaultKind::WorkerCrash {
                    worker: rng.below(workers as u64) as usize,
                    downtime: SimDuration::from_secs_f64(rng.range_f64(1.0, 4.0)),
                },
            });
        }
        let slow_mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 3.0).max(1.0));
        let mut slowdowns = FaultClock::new(seed, "profile/slowdown", slow_mean);
        while let Some(at) = slowdowns.next_before(horizon) {
            let rng = slowdowns.rng();
            events.push(FaultEvent {
                at,
                kind: FaultKind::WorkerSlowdown {
                    worker: rng.below(workers as u64) as usize,
                    factor: rng.range_f64(2.0, 3.0),
                    duration: SimDuration::from_secs_f64(rng.range_f64(3.0, 8.0)),
                },
            });
        }
    }
    FaultPlan::new(seed, 0.01, events)
}

/// Loses or corrupts cached templates throughout the run while the
/// disk tier serves reads at a fraction of its bandwidth.
fn cache_loss_plan(seed: u64, horizon: SimTime, num_templates: u64) -> FaultPlan {
    let mut events = Vec::new();
    if num_templates > 0 {
        let mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 6.0).max(1.0));
        let mut losses = FaultClock::new(seed, "profile/cache-loss", mean);
        while let Some(at) = losses.next_before(horizon) {
            let rng = losses.rng();
            let template_id = rng.below(num_templates);
            let kind = if rng.chance(0.5) {
                FaultKind::CacheLoss { template_id }
            } else {
                FaultKind::CacheCorrupt { template_id }
            };
            events.push(FaultEvent { at, kind });
        }
    }
    // One long disk brown-out covering the middle half of the run.
    let mut rng = FaultRng::new(seed, "profile/disk");
    events.push(FaultEvent {
        at: SimTime::from_nanos(horizon.as_nanos() / 4),
        kind: FaultKind::DiskDegrade {
            factor: rng.range_f64(3.0, 6.0),
            duration: SimDuration::from_nanos(horizon.as_nanos() / 2),
        },
    });
    FaultPlan::new(seed, 0.0, events)
}

/// Dense severe slowdowns — every worker loses most of its speed for
/// stretches that overlap the bursts — plus a 1% transit drop. No
/// crashes: the capacity loss is gradual, the kind the degradation
/// ladder absorbs.
fn overload_burst_plan(seed: u64, horizon: SimTime, workers: usize) -> FaultPlan {
    let mut events = Vec::new();
    if workers > 0 {
        let mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 8.0).max(1.0));
        let mut slowdowns = FaultClock::new(seed, "profile/overload-slow", mean);
        while let Some(at) = slowdowns.next_before(horizon) {
            let rng = slowdowns.rng();
            events.push(FaultEvent {
                at,
                kind: FaultKind::WorkerSlowdown {
                    worker: rng.below(workers as u64) as usize,
                    factor: rng.range_f64(3.0, 5.0),
                    duration: SimDuration::from_secs_f64(rng.range_f64(8.0, 20.0)),
                },
            });
        }
    }
    FaultPlan::new(seed, 0.01, events)
}

/// Repeated severe disk brown-outs (bandwidth cut ~25×) with recurring
/// checksum corruption. Reads served from the degraded tier are slow
/// enough to trip a latency-sensitive breaker; the corruptions trip a
/// failure-counting one.
fn disk_brownout_plan(seed: u64, horizon: SimTime, num_templates: u64) -> FaultPlan {
    let mut events = Vec::new();
    let horizon_s = horizon.as_secs_f64();
    // Four brown-outs, each covering an eighth of the run.
    let mut rng = FaultRng::new(seed, "profile/brownout");
    for k in 0..4u64 {
        let at = SimTime::from_nanos(horizon.as_nanos() / 8 * (2 * k + 1));
        events.push(FaultEvent {
            at,
            kind: FaultKind::DiskDegrade {
                factor: rng.range_f64(20.0, 30.0),
                duration: SimDuration::from_secs_f64((horizon_s / 8.0).max(0.5)),
            },
        });
        // Each onset garbles the whole cached set at once — the burst
        // of consecutive checksum failures is what distinguishes a
        // brown-out from scattered bit rot, and what a
        // failure-counting breaker is built to catch.
        for template_id in 0..num_templates {
            events.push(FaultEvent {
                at,
                kind: FaultKind::CacheCorrupt { template_id },
            });
        }
    }
    if num_templates > 0 {
        let mean = SimDuration::from_secs_f64((horizon_s / 10.0).max(1.0));
        let mut corrupt = FaultClock::new(seed, "profile/brownout-corrupt", mean);
        while let Some(at) = corrupt.next_before(horizon) {
            let rng = corrupt.rng();
            events.push(FaultEvent {
                at,
                kind: FaultKind::CacheCorrupt {
                    template_id: rng.below(num_templates),
                },
            });
        }
    }
    FaultPlan::new(seed, 0.0, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn baseline_is_trivial() {
        assert!(FaultProfile::Baseline
            .plan(1, secs(300.0), 4, 16)
            .is_trivial());
    }

    #[test]
    fn worker_crash_profile_crashes_and_drops() {
        let plan = FaultProfile::WorkerCrash.plan(2, secs(300.0), 4, 16);
        assert!(plan.validate(4).is_ok());
        assert!(plan.drop_probability > 0.0);
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerCrash { .. })));
    }

    #[test]
    fn cache_loss_profile_degrades_disk_and_loses_entries() {
        let plan = FaultProfile::CacheLossSlowDisk.plan(3, secs(300.0), 4, 16);
        assert!(plan.validate(4).is_ok());
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::DiskDegrade { .. })));
        assert!(plan.events.iter().any(|e| matches!(
            e.kind,
            FaultKind::CacheLoss { .. } | FaultKind::CacheCorrupt { .. }
        )));
    }

    #[test]
    fn plans_are_seed_deterministic() {
        for profile in FaultProfile::ALL {
            let a = profile.plan(9, secs(120.0), 3, 8);
            let b = profile.plan(9, secs(120.0), 3, 8);
            assert_eq!(a, b, "{}", profile.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = FaultProfile::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 5);
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn overload_burst_profile_slows_workers_and_drops() {
        let plan = FaultProfile::OverloadBurst.plan(7, secs(300.0), 4, 16);
        assert!(plan.validate(4).is_ok());
        assert!(plan.drop_probability > 0.0);
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerSlowdown { .. })));
        assert!(
            !plan
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::WorkerCrash { .. })),
            "overload burst degrades capacity without crashing it"
        );
    }

    #[test]
    fn disk_brownout_profile_is_severe_and_repeated() {
        let plan = FaultProfile::DiskBrownout.plan(8, secs(300.0), 4, 16);
        assert!(plan.validate(4).is_ok());
        let brownouts: Vec<f64> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::DiskDegrade { factor, .. } => Some(factor),
                _ => None,
            })
            .collect();
        assert!(brownouts.len() >= 4, "brown-outs must recur");
        assert!(
            brownouts.iter().all(|&f| f >= 20.0),
            "brown-outs must be severe enough to trip a breaker"
        );
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CacheCorrupt { .. })));
    }
}
