//! Canonical fault profiles for the ablation experiments.

use fps_simtime::{FaultClock, FaultRng, SimDuration, SimTime};

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// The fault profiles exercised by `ablation_chaos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults: the control arm, expected to match the fault-free
    /// simulator within noise.
    Baseline,
    /// Recurring worker crashes with restarts, plus occasional
    /// transient slowdowns and a small request-drop probability.
    WorkerCrash,
    /// Cache-entry loss and corruption under a degraded disk tier.
    CacheLossSlowDisk,
}

impl FaultProfile {
    /// Every profile, in ablation order.
    pub const ALL: [FaultProfile; 3] = [
        FaultProfile::Baseline,
        FaultProfile::WorkerCrash,
        FaultProfile::CacheLossSlowDisk,
    ];

    /// Profile label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::WorkerCrash => "worker-crash",
            Self::CacheLossSlowDisk => "cache-loss-slow-disk",
        }
    }

    /// Generates the profile's fault plan for a run of length
    /// `horizon` over `workers` workers and templates `0..num_templates`.
    pub fn plan(self, seed: u64, horizon: SimTime, workers: usize, num_templates: u64) -> FaultPlan {
        match self {
            Self::Baseline => FaultPlan::none(),
            Self::WorkerCrash => worker_crash_plan(seed, horizon, workers),
            Self::CacheLossSlowDisk => cache_loss_plan(seed, horizon, num_templates),
        }
    }
}

/// Crashes roughly every quarter of the horizon per cluster, 1–4 s
/// downtime, plus transient 2–3× slowdowns and 1% request drops.
fn worker_crash_plan(seed: u64, horizon: SimTime, workers: usize) -> FaultPlan {
    let mut events = Vec::new();
    if workers > 0 {
        let mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 4.0).max(1.0));
        let mut crashes = FaultClock::new(seed, "profile/crash", mean);
        while let Some(at) = crashes.next_before(horizon) {
            let rng = crashes.rng();
            events.push(FaultEvent {
                at,
                kind: FaultKind::WorkerCrash {
                    worker: rng.below(workers as u64) as usize,
                    downtime: SimDuration::from_secs_f64(rng.range_f64(1.0, 4.0)),
                },
            });
        }
        let slow_mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 3.0).max(1.0));
        let mut slowdowns = FaultClock::new(seed, "profile/slowdown", slow_mean);
        while let Some(at) = slowdowns.next_before(horizon) {
            let rng = slowdowns.rng();
            events.push(FaultEvent {
                at,
                kind: FaultKind::WorkerSlowdown {
                    worker: rng.below(workers as u64) as usize,
                    factor: rng.range_f64(2.0, 3.0),
                    duration: SimDuration::from_secs_f64(rng.range_f64(3.0, 8.0)),
                },
            });
        }
    }
    FaultPlan::new(seed, 0.01, events)
}

/// Loses or corrupts cached templates throughout the run while the
/// disk tier serves reads at a fraction of its bandwidth.
fn cache_loss_plan(seed: u64, horizon: SimTime, num_templates: u64) -> FaultPlan {
    let mut events = Vec::new();
    if num_templates > 0 {
        let mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 6.0).max(1.0));
        let mut losses = FaultClock::new(seed, "profile/cache-loss", mean);
        while let Some(at) = losses.next_before(horizon) {
            let rng = losses.rng();
            let template_id = rng.below(num_templates);
            let kind = if rng.chance(0.5) {
                FaultKind::CacheLoss { template_id }
            } else {
                FaultKind::CacheCorrupt { template_id }
            };
            events.push(FaultEvent { at, kind });
        }
    }
    // One long disk brown-out covering the middle half of the run.
    let mut rng = FaultRng::new(seed, "profile/disk");
    events.push(FaultEvent {
        at: SimTime::from_nanos(horizon.as_nanos() / 4),
        kind: FaultKind::DiskDegrade {
            factor: rng.range_f64(3.0, 6.0),
            duration: SimDuration::from_nanos(horizon.as_nanos() / 2),
        },
    });
    FaultPlan::new(seed, 0.0, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn baseline_is_trivial() {
        assert!(FaultProfile::Baseline.plan(1, secs(300.0), 4, 16).is_trivial());
    }

    #[test]
    fn worker_crash_profile_crashes_and_drops() {
        let plan = FaultProfile::WorkerCrash.plan(2, secs(300.0), 4, 16);
        assert!(plan.validate(4).is_ok());
        assert!(plan.drop_probability > 0.0);
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::WorkerCrash { .. })));
    }

    #[test]
    fn cache_loss_profile_degrades_disk_and_loses_entries() {
        let plan = FaultProfile::CacheLossSlowDisk.plan(3, secs(300.0), 4, 16);
        assert!(plan.validate(4).is_ok());
        assert!(plan
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::DiskDegrade { .. })));
        assert!(plan.events.iter().any(|e| matches!(
            e.kind,
            FaultKind::CacheLoss { .. } | FaultKind::CacheCorrupt { .. }
        )));
    }

    #[test]
    fn plans_are_seed_deterministic() {
        for profile in FaultProfile::ALL {
            let a = profile.plan(9, secs(120.0), 3, 8);
            let b = profile.plan(9, secs(120.0), 3, 8);
            assert_eq!(a, b, "{}", profile.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = FaultProfile::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.iter().all(|l| !l.is_empty()));
    }
}
