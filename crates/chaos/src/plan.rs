//! Fault plans: timestamped fault events plus request-level noise.

use fps_simtime::{FaultRng, SimDuration, SimTime};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Worker `worker` crashes, losing its in-flight batch, and
    /// restarts `downtime` later with cold state.
    WorkerCrash {
        /// Index of the crashing worker.
        worker: usize,
        /// Time until the worker rejoins.
        downtime: SimDuration,
    },
    /// Worker `worker` runs `factor`× slower for `duration` (thermal
    /// throttling, noisy neighbour).
    WorkerSlowdown {
        /// Index of the degraded worker.
        worker: usize,
        /// Step-latency multiplier (> 1).
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// The disk tier's read bandwidth drops by `factor`× for
    /// `duration`.
    DiskDegrade {
        /// Bandwidth divisor (> 1).
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// The cached template `template_id` disappears from every tier.
    CacheLoss {
        /// Template whose cache entry is lost.
        template_id: u64,
    },
    /// The cached template `template_id` is silently corrupted; reads
    /// must detect it and fall back.
    CacheCorrupt {
        /// Template whose cache entry is corrupted.
        template_id: u64,
    },
}

impl FaultKind {
    /// The worker index this fault targets, if any.
    pub fn worker(&self) -> Option<usize> {
        match *self {
            FaultKind::WorkerCrash { worker, .. } | FaultKind::WorkerSlowdown { worker, .. } => {
                Some(worker)
            }
            _ => None,
        }
    }
}

/// One fault at one instant of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, deterministic fault schedule for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was derived from (also seeds request-drop coins).
    pub seed: u64,
    /// Probability that any given request is dropped in transit before
    /// reaching a worker (the client retries it).
    pub drop_probability: f64,
    /// Timestamped faults, sorted by time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: nothing ever goes wrong.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_probability: 0.0,
            events: Vec::new(),
        }
    }

    /// Builds a plan from events, sorting them by time (ties keep
    /// their given order).
    pub fn new(seed: u64, drop_probability: f64, mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self {
            seed,
            drop_probability: drop_probability.clamp(0.0, 1.0),
            events,
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_trivial(&self) -> bool {
        self.events.is_empty() && self.drop_probability == 0.0
    }

    /// A randomized mixed plan over the given cluster shape — every
    /// fault kind with moderate rates. Used by property tests to
    /// explore the schedule space; identical seeds yield identical
    /// plans.
    pub fn random(seed: u64, horizon: SimTime, workers: usize, num_templates: u64) -> Self {
        let mut rng = FaultRng::new(seed, "chaos/random-plan");
        let mut events = Vec::new();
        let horizon_s = horizon.as_secs_f64().max(1.0);
        let count = rng.below(8) as usize + (horizon_s as usize / 20).min(8);
        for _ in 0..count {
            let at = SimTime::from_nanos((rng.unit_f64() * horizon.as_nanos() as f64) as u64);
            let kind = match rng.below(5) {
                0 if workers > 0 => FaultKind::WorkerCrash {
                    worker: rng.below(workers as u64) as usize,
                    downtime: SimDuration::from_secs_f64(rng.range_f64(0.5, 5.0)),
                },
                1 if workers > 0 => FaultKind::WorkerSlowdown {
                    worker: rng.below(workers as u64) as usize,
                    factor: rng.range_f64(1.5, 4.0),
                    duration: SimDuration::from_secs_f64(rng.range_f64(1.0, 10.0)),
                },
                2 => FaultKind::DiskDegrade {
                    factor: rng.range_f64(2.0, 8.0),
                    duration: SimDuration::from_secs_f64(rng.range_f64(2.0, 15.0)),
                },
                3 if num_templates > 0 => FaultKind::CacheLoss {
                    template_id: rng.below(num_templates),
                },
                _ if num_templates > 0 => FaultKind::CacheCorrupt {
                    template_id: rng.below(num_templates),
                },
                _ => continue,
            };
            events.push(FaultEvent { at, kind });
        }
        let drop_probability = if rng.chance(0.5) {
            rng.range_f64(0.0, 0.1)
        } else {
            0.0
        };
        Self::new(seed, drop_probability, events)
    }

    /// Validates the plan against a cluster shape.
    ///
    /// # Errors
    ///
    /// Describes the first fault referencing a worker index out of
    /// range or carrying a non-positive factor.
    pub fn validate(&self, workers: usize) -> Result<(), String> {
        for (i, event) in self.events.iter().enumerate() {
            if let Some(w) = event.kind.worker() {
                if w >= workers {
                    return Err(format!(
                        "fault {i} targets worker {w} but the cluster has {workers}"
                    ));
                }
            }
            match event.kind {
                FaultKind::WorkerSlowdown { factor, .. }
                | FaultKind::DiskDegrade { factor, .. }
                    if factor < 1.0 =>
                {
                    return Err(format!("fault {i} has speed-up factor {factor} (< 1)"));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// A deterministic per-request drop coin: whether request `id`
    /// (attempt `attempt`) is dropped in transit. Depends only on the
    /// plan seed and the pair, so replays agree.
    pub fn drops_request(&self, id: u64, attempt: u32) -> bool {
        if self.drop_probability <= 0.0 {
            return false;
        }
        let mut rng = FaultRng::new(
            self.seed ^ id.rotate_left(17) ^ u64::from(attempt).rotate_left(43),
            "chaos/request-drop",
        );
        rng.chance(self.drop_probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn plans_sort_events_by_time() {
        let plan = FaultPlan::new(
            1,
            0.0,
            vec![
                FaultEvent {
                    at: secs(5.0),
                    kind: FaultKind::CacheLoss { template_id: 0 },
                },
                FaultEvent {
                    at: secs(1.0),
                    kind: FaultKind::DiskDegrade {
                        factor: 2.0,
                        duration: SimDuration::from_secs_f64(1.0),
                    },
                },
            ],
        );
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn random_plans_are_reproducible_and_valid() {
        let a = FaultPlan::random(42, secs(120.0), 4, 16);
        let b = FaultPlan::random(42, secs(120.0), 4, 16);
        assert_eq!(a, b);
        assert!(a.validate(4).is_ok());
        let c = FaultPlan::random(43, secs(120.0), 4, 16);
        assert_ne!(a, c);
    }

    #[test]
    fn validation_rejects_out_of_range_workers() {
        let plan = FaultPlan::new(
            0,
            0.0,
            vec![FaultEvent {
                at: secs(1.0),
                kind: FaultKind::WorkerCrash {
                    worker: 9,
                    downtime: SimDuration::from_secs_f64(1.0),
                },
            }],
        );
        assert!(plan.validate(2).is_err());
        assert!(plan.validate(10).is_ok());
    }

    #[test]
    fn drop_coin_is_deterministic_and_tracks_probability() {
        let mut plan = FaultPlan::none();
        assert!(!plan.drops_request(1, 0));
        plan.drop_probability = 0.25;
        plan.seed = 7;
        let hits = (0..20_000u64).filter(|&i| plan.drops_request(i, 0)).count();
        assert!((hits as f64 / 20_000.0 - 0.25).abs() < 0.02);
        assert_eq!(plan.drops_request(5, 1), plan.drops_request(5, 1));
        // Retries reroll the coin.
        assert!((0..64).any(|a| plan.drops_request(5, a) != plan.drops_request(5, a + 1)));
    }

    #[test]
    fn trivial_plans_are_detected() {
        assert!(FaultPlan::none().is_trivial());
        assert!(!FaultPlan::random(1, secs(300.0), 2, 4).is_trivial());
    }
}
