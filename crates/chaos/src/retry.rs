//! Bounded retry with exponential backoff and per-request deadlines.

use fps_simtime::{SimDuration, SimTime};

/// Retry discipline applied to failed or dropped requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff per additional retry.
    pub backoff_multiplier: f64,
    /// Deadline from arrival; once exceeded the request is rejected
    /// instead of retried.
    pub deadline: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(50),
            backoff_multiplier: 2.0,
            deadline: SimDuration::from_secs_f64(300.0),
        }
    }
}

impl RetryPolicy {
    /// A deadline so far out it never fires (saturating arithmetic
    /// keeps `u64::MAX` nanoseconds unreachable).
    pub const NO_DEADLINE: SimDuration = SimDuration::from_nanos(u64::MAX);

    /// A policy that never retries and never rejects on time.
    pub fn no_retries() -> Self {
        Self {
            max_retries: 0,
            base_backoff: SimDuration::ZERO,
            backoff_multiplier: 1.0,
            deadline: Self::NO_DEADLINE,
        }
    }

    /// Backoff before retry number `retry` (1-based): `base ×
    /// multiplier^(retry−1)`.
    pub fn backoff(&self, retry: u32) -> SimDuration {
        if retry <= 1 {
            return self.base_backoff;
        }
        self.base_backoff
            .mul_f64(self.backoff_multiplier.powi(retry as i32 - 1))
    }

    /// Whether a request that has already used `retries` retries may
    /// try again at `now`, given its arrival time.
    pub fn allows_retry(&self, retries: u32, arrival: SimTime, now: SimTime) -> bool {
        retries < self.max_retries && !self.past_deadline(arrival, now)
    }

    /// Whether `now` is beyond the request's deadline.
    pub fn past_deadline(&self, arrival: SimTime, now: SimTime) -> bool {
        now.since(arrival) > self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            base_backoff: SimDuration::from_millis(100),
            backoff_multiplier: 2.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff(2), SimDuration::from_millis(200));
        assert_eq!(p.backoff(3), SimDuration::from_millis(400));
    }

    #[test]
    fn retries_are_bounded_and_deadline_checked() {
        let p = RetryPolicy {
            max_retries: 2,
            deadline: SimDuration::from_secs_f64(10.0),
            ..RetryPolicy::default()
        };
        let t0 = SimTime::ZERO;
        let t5 = SimTime::from_nanos(5_000_000_000);
        let t11 = SimTime::from_nanos(11_000_000_000);
        assert!(p.allows_retry(0, t0, t5));
        assert!(p.allows_retry(1, t0, t5));
        assert!(!p.allows_retry(2, t0, t5), "retry budget exhausted");
        assert!(!p.allows_retry(0, t0, t11), "past deadline");
        assert!(p.past_deadline(t0, t11));
        assert!(!p.past_deadline(t0, t5));
    }

    #[test]
    fn no_retries_policy_never_rejects_on_time() {
        let p = RetryPolicy::no_retries();
        let far = SimTime::from_nanos(u64::MAX / 2);
        assert!(!p.past_deadline(SimTime::ZERO, far));
        assert!(!p.allows_retry(0, SimTime::ZERO, far));
    }

    #[test]
    fn zero_retry_budget_denies_the_first_retry() {
        let p = RetryPolicy {
            max_retries: 0,
            deadline: RetryPolicy::NO_DEADLINE,
            ..RetryPolicy::default()
        };
        // Even a fresh request (zero retries used, nowhere near any
        // deadline) may not retry under a zero budget.
        assert!(!p.allows_retry(0, SimTime::ZERO, SimTime::ZERO));
        // The backoff schedule is still well-defined if queried.
        assert_eq!(p.backoff(1), p.base_backoff);
    }

    #[test]
    fn deadline_boundary_is_inclusive() {
        // `past_deadline` is a strict comparison: a request re-examined
        // at exactly arrival + deadline is still in time, one
        // nanosecond later it is not.
        let p = RetryPolicy {
            max_retries: 5,
            deadline: SimDuration::from_secs_f64(10.0),
            ..RetryPolicy::default()
        };
        let arrival = SimTime::from_nanos(3_000_000_000);
        let exact = SimTime::from_nanos(13_000_000_000);
        let after = SimTime::from_nanos(13_000_000_001);
        assert!(!p.past_deadline(arrival, exact), "boundary is in time");
        assert!(p.past_deadline(arrival, after), "one nanosecond late");
        assert!(p.allows_retry(0, arrival, exact));
        assert!(!p.allows_retry(0, arrival, after));
    }
}
