//! Fleet-level fault plans: shard churn, gray failure, partitions, and
//! replica cache loss.
//!
//! The per-cluster plans in [`crate::plan`] target *workers inside one
//! shard*; a fleet dies differently. Whole shards crash and restart,
//! new shards join mid-run, a shard turns gray (alive but slow), the
//! router loses its link to a shard that is otherwise healthy, and a
//! shard's replicated activation cache is silently wiped. Each of
//! those stresses a different recovery mechanism — ring rebalancing,
//! cache re-priming, retry budgets, failover through the replica
//! directory — so they are modelled as distinct, seeded, timestamped
//! events the fleet simulator replays deterministically.

use fps_simtime::{FaultClock, FaultRng, SimDuration, SimTime};

/// One kind of fleet-level fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetFaultKind {
    /// Shard `shard` crashes: its in-flight requests die, its caches go
    /// cold, and it rejoins the ring `downtime` later.
    ShardCrash {
        /// The crashing shard.
        shard: u32,
        /// Time until the shard rejoins with cold state.
        downtime: SimDuration,
    },
    /// Shard `shard` leaves gracefully: it stops taking new work and
    /// leaves the ring, but drains its in-flight requests to
    /// completion.
    ShardLeave {
        /// The departing shard.
        shard: u32,
    },
    /// Shard `shard` joins the fleet (a brand-new shard, or one that
    /// left earlier) with cold caches and a fresh worker pool.
    ShardJoin {
        /// The joining shard.
        shard: u32,
    },
    /// Gray failure: shard `shard` serves `factor`× slower for
    /// `duration` without failing health checks.
    ShardSlow {
        /// The degraded shard.
        shard: u32,
        /// Service-time multiplier (> 1).
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// Router↔shard partition: the router cannot reach `shard` for
    /// `duration`. In-flight work completes and peer shards can still
    /// fetch replicas from it; only *new placements* are blocked.
    Partition {
        /// The unreachable shard.
        shard: u32,
        /// How long the partition lasts.
        duration: SimDuration,
    },
    /// The shard's replicated activation cache is wiped (disk loss,
    /// bad deploy). Membership is unchanged — reads discover the loss
    /// and the circuit breaker learns to route around it.
    ReplicaLoss {
        /// The shard whose cached activations vanish.
        shard: u32,
    },
    /// Storage gray failure: shard `shard`'s disk tier reads `factor`×
    /// slower for `duration`. Compute and membership are untouched —
    /// host-tier hits stay free — but every disk→host promote and
    /// every peer read *sourced* from the shard pays the slowdown.
    /// Health checks see nothing; only fetch-cost feedback can tell.
    DiskDegrade {
        /// The shard with the sick disk.
        shard: u32,
        /// Disk read-time multiplier (> 1).
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
}

impl FleetFaultKind {
    /// The shard this fault targets.
    pub fn shard(&self) -> u32 {
        match *self {
            FleetFaultKind::ShardCrash { shard, .. }
            | FleetFaultKind::ShardLeave { shard }
            | FleetFaultKind::ShardJoin { shard }
            | FleetFaultKind::ShardSlow { shard, .. }
            | FleetFaultKind::Partition { shard, .. }
            | FleetFaultKind::ReplicaLoss { shard }
            | FleetFaultKind::DiskDegrade { shard, .. } => shard,
        }
    }

    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FleetFaultKind::ShardCrash { .. } => "shard-crash",
            FleetFaultKind::ShardLeave { .. } => "shard-leave",
            FleetFaultKind::ShardJoin { .. } => "shard-join",
            FleetFaultKind::ShardSlow { .. } => "shard-slow",
            FleetFaultKind::Partition { .. } => "partition",
            FleetFaultKind::ReplicaLoss { .. } => "replica-loss",
            FleetFaultKind::DiskDegrade { .. } => "disk-degrade",
        }
    }
}

/// One fleet fault at one instant of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FleetFaultKind,
}

/// A complete, deterministic fleet fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetFaultPlan {
    /// Seed the plan was derived from.
    pub seed: u64,
    /// Timestamped faults, sorted by time (ties keep their given
    /// order, which replays identically on every scheduler).
    pub events: Vec<FleetFaultEvent>,
}

impl FleetFaultPlan {
    /// The empty plan: no shard ever misbehaves.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from events, sorting them by time.
    pub fn new(seed: u64, mut events: Vec<FleetFaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { seed, events }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_trivial(&self) -> bool {
        self.events.is_empty()
    }

    /// When the first fault fires, if any.
    pub fn first_fault_at(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }

    /// The highest shard id any event references, if any. The fleet
    /// simulator pre-sizes its shard table to cover joins of shards
    /// that do not exist at start-of-run.
    pub fn max_shard(&self) -> Option<u32> {
        self.events.iter().map(|e| e.kind.shard()).max()
    }

    /// Validates the plan against a fleet that starts with
    /// `initial_shards` shards.
    ///
    /// # Errors
    ///
    /// Describes the first event with a non-positive duration, a
    /// slowdown factor below 1, or a crash/leave/slow/partition/wipe
    /// targeting a shard that can never exist (neither initial nor
    /// joined earlier in the plan).
    pub fn validate(&self, initial_shards: u32) -> Result<(), String> {
        let mut known: Vec<u32> = (0..initial_shards).collect();
        for (i, event) in self.events.iter().enumerate() {
            match event.kind {
                FleetFaultKind::ShardSlow {
                    factor, duration, ..
                } => {
                    if factor < 1.0 {
                        return Err(format!("fault {i} has speed-up factor {factor} (< 1)"));
                    }
                    if duration.as_nanos() == 0 {
                        return Err(format!("fault {i} has zero duration"));
                    }
                }
                FleetFaultKind::DiskDegrade {
                    factor, duration, ..
                } => {
                    if factor < 1.0 {
                        return Err(format!("fault {i} has disk speed-up factor {factor} (< 1)"));
                    }
                    if duration.as_nanos() == 0 {
                        return Err(format!("fault {i} has zero duration"));
                    }
                }
                FleetFaultKind::ShardCrash { downtime, .. } if downtime.as_nanos() == 0 => {
                    return Err(format!("fault {i} has zero crash downtime"));
                }
                FleetFaultKind::Partition { duration, .. } if duration.as_nanos() == 0 => {
                    return Err(format!("fault {i} has zero partition duration"));
                }
                _ => {}
            }
            let shard = event.kind.shard();
            match event.kind {
                FleetFaultKind::ShardJoin { .. } => {
                    if !known.contains(&shard) {
                        known.push(shard);
                    }
                }
                _ => {
                    if !known.contains(&shard) {
                        return Err(format!(
                            "fault {i} targets shard {shard}, which neither starts in the \
                             fleet of {initial_shards} nor joins earlier in the plan"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Canonical fleet fault profiles for the chaos experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetFaultProfile {
    /// No faults: the control arm.
    Baseline,
    /// A storm of staggered shard crashes with restarts — the headline
    /// profile `fig_chaos_fleet` gates recovery on.
    CrashStorm,
    /// Rolling churn: shards leave gracefully while fresh shards join,
    /// forcing repeated ring rebalancing and cache re-priming.
    RollingChurn,
    /// Gray failure: shards stay up but serve several times slower for
    /// long stretches.
    GrayShard,
    /// Router↔shard partitions: healthy shards become unreachable for
    /// placement while their caches stay warm.
    RouterPartition,
    /// Replicated-cache wipes: shards silently lose their cached
    /// activations without any membership change.
    ReplicaWipe,
    /// Storage gray failure: one shard's disk tier reads many times
    /// slower for a long stretch while compute and health stay green.
    SlowDisk,
}

impl FleetFaultProfile {
    /// Every profile, in ablation order.
    pub const ALL: [FleetFaultProfile; 7] = [
        FleetFaultProfile::Baseline,
        FleetFaultProfile::CrashStorm,
        FleetFaultProfile::RollingChurn,
        FleetFaultProfile::GrayShard,
        FleetFaultProfile::RouterPartition,
        FleetFaultProfile::ReplicaWipe,
        FleetFaultProfile::SlowDisk,
    ];

    /// Profile label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::CrashStorm => "crash-storm",
            Self::RollingChurn => "rolling-churn",
            Self::GrayShard => "gray-shard",
            Self::RouterPartition => "router-partition",
            Self::ReplicaWipe => "replica-wipe",
            Self::SlowDisk => "slow-disk",
        }
    }

    /// Generates the profile's fault plan for a run of length
    /// `horizon` over shards `0..shards`.
    ///
    /// Faults land in the first ~60% of the horizon and downtimes stay
    /// well inside it, so recovery is observable before arrivals end —
    /// `FleetRecoveryReport` needs post-recovery windows to measure
    /// time-to-recover against.
    pub fn plan(self, seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
        match self {
            Self::Baseline => FleetFaultPlan::none(),
            Self::CrashStorm => crash_storm_plan(seed, horizon, shards),
            Self::RollingChurn => rolling_churn_plan(seed, horizon, shards),
            Self::GrayShard => gray_shard_plan(seed, horizon, shards),
            Self::RouterPartition => partition_plan(seed, horizon, shards),
            Self::ReplicaWipe => replica_wipe_plan(seed, horizon, shards),
            Self::SlowDisk => slow_disk_plan(seed, horizon, shards),
        }
    }
}

/// Staggered crashes across distinct shards in the first 60% of the
/// run, each down for ~8–12% of the horizon. Never crashes the same
/// shard twice and never schedules overlapping downtimes on more than
/// half the fleet, so the storm degrades the fleet without (by itself)
/// emptying it.
fn crash_storm_plan(seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
    let mut events = Vec::new();
    if shards > 1 {
        let horizon_s = horizon.as_secs_f64();
        let mut rng = FaultRng::new(seed, "fleet/crash-storm");
        let crashes = (shards / 2).clamp(1, 4);
        for k in 0..crashes {
            // Evenly staggered onsets with seeded jitter keep crashes
            // from piling onto one instant.
            let base = horizon_s * 0.15 + horizon_s * 0.45 * k as f64 / crashes as f64;
            let at = base + rng.range_f64(0.0, horizon_s * 0.05);
            let shard = (rng.below(shards as u64) as u32).wrapping_add(k) % shards;
            events.push(FleetFaultEvent {
                at: SimTime::from_nanos((at * 1e9) as u64),
                kind: FleetFaultKind::ShardCrash {
                    shard,
                    downtime: SimDuration::from_secs_f64(
                        horizon_s * rng.range_f64(0.08, 0.12).max(0.001),
                    ),
                },
            });
        }
        // Deduplicate by shard: a shard that is already down cannot
        // crash again meaningfully.
        let mut seen = Vec::new();
        events.retain(|e| {
            let s = e.kind.shard();
            if seen.contains(&s) {
                false
            } else {
                seen.push(s);
                true
            }
        });
    }
    FleetFaultPlan::new(seed, events)
}

/// Graceful leaves paired with joins of brand-new shard ids: the ring
/// shrinks, re-primes, grows, and re-primes again.
fn rolling_churn_plan(seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
    let mut events = Vec::new();
    if shards > 1 {
        let horizon_s = horizon.as_secs_f64();
        let mut rng = FaultRng::new(seed, "fleet/rolling-churn");
        let waves = 2u32.min(shards - 1);
        for k in 0..waves {
            let leave_at = horizon_s * (0.15 + 0.25 * k as f64) + rng.range_f64(0.0, 5.0);
            let victim = rng.below(shards as u64) as u32;
            events.push(FleetFaultEvent {
                at: SimTime::from_nanos((leave_at * 1e9) as u64),
                kind: FleetFaultKind::ShardLeave { shard: victim },
            });
            // A fresh shard id joins shortly after, taking over an arc
            // of the ring with a cold cache.
            events.push(FleetFaultEvent {
                at: SimTime::from_nanos(((leave_at + horizon_s * 0.08) * 1e9) as u64),
                kind: FleetFaultKind::ShardJoin { shard: shards + k },
            });
        }
        // Deduplicate leaves targeting the same shard.
        let mut left = Vec::new();
        events.retain(|e| match e.kind {
            FleetFaultKind::ShardLeave { shard } => {
                if left.contains(&shard) {
                    false
                } else {
                    left.push(shard);
                    true
                }
            }
            _ => true,
        });
    }
    FleetFaultPlan::new(seed, events)
}

/// Long 2–4× slowdowns on a rotating set of shards.
fn gray_shard_plan(seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
    let mut events = Vec::new();
    if shards > 0 {
        let horizon_s = horizon.as_secs_f64();
        let mean = SimDuration::from_secs_f64((horizon_s / 5.0).max(1.0));
        let mut clock = FaultClock::new(seed, "fleet/gray", mean);
        let limit = SimTime::from_nanos((horizon.as_nanos() as f64 * 0.6) as u64);
        while let Some(at) = clock.next_before(limit) {
            let rng = clock.rng();
            events.push(FleetFaultEvent {
                at,
                kind: FleetFaultKind::ShardSlow {
                    shard: rng.below(shards as u64) as u32,
                    factor: rng.range_f64(2.0, 4.0),
                    duration: SimDuration::from_secs_f64(horizon_s * rng.range_f64(0.10, 0.20)),
                },
            });
        }
    }
    FleetFaultPlan::new(seed, events)
}

/// Two staggered router↔shard partitions on distinct shards.
fn partition_plan(seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
    let mut events = Vec::new();
    if shards > 1 {
        let horizon_s = horizon.as_secs_f64();
        let mut rng = FaultRng::new(seed, "fleet/partition");
        let first = rng.below(shards as u64) as u32;
        for (k, shard) in [first, (first + 1) % shards].into_iter().enumerate() {
            let at = horizon_s * (0.2 + 0.25 * k as f64) + rng.range_f64(0.0, 5.0);
            events.push(FleetFaultEvent {
                at: SimTime::from_nanos((at * 1e9) as u64),
                kind: FleetFaultKind::Partition {
                    shard,
                    duration: SimDuration::from_secs_f64(horizon_s * rng.range_f64(0.08, 0.15)),
                },
            });
        }
    }
    FleetFaultPlan::new(seed, events)
}

/// Repeated silent wipes of shards' replicated caches.
fn replica_wipe_plan(seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
    let mut events = Vec::new();
    if shards > 0 {
        let mean = SimDuration::from_secs_f64((horizon.as_secs_f64() / 4.0).max(1.0));
        let mut clock = FaultClock::new(seed, "fleet/replica-wipe", mean);
        let limit = SimTime::from_nanos((horizon.as_nanos() as f64 * 0.6) as u64);
        while let Some(at) = clock.next_before(limit) {
            let rng = clock.rng();
            events.push(FleetFaultEvent {
                at,
                kind: FleetFaultKind::ReplicaLoss {
                    shard: rng.below(shards as u64) as u32,
                },
            });
        }
    }
    FleetFaultPlan::new(seed, events)
}

/// Two long, staggered disk degradations on distinct shards: reads
/// turn 6–10× slower for ~25–35% of the horizon each. Long stretches
/// (not blips) so cost-aware routing has time to learn and the
/// blind/feedback gap is attributable to steady-state behavior.
fn slow_disk_plan(seed: u64, horizon: SimTime, shards: u32) -> FleetFaultPlan {
    let mut events = Vec::new();
    if shards > 0 {
        let horizon_s = horizon.as_secs_f64();
        let mut rng = FaultRng::new(seed, "fleet/slow-disk");
        let first = rng.below(shards as u64) as u32;
        let count = if shards > 1 { 2 } else { 1 };
        for (k, shard) in (0..count).map(|k| (k, (first + k) % shards)) {
            let at = horizon_s * (0.10 + 0.40 * k as f64) + rng.range_f64(0.0, 5.0);
            events.push(FleetFaultEvent {
                at: SimTime::from_nanos((at * 1e9) as u64),
                kind: FleetFaultKind::DiskDegrade {
                    shard,
                    factor: rng.range_f64(6.0, 10.0),
                    duration: SimDuration::from_secs_f64(horizon_s * rng.range_f64(0.25, 0.35)),
                },
            });
        }
    }
    FleetFaultPlan::new(seed, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn plans_sort_events_and_report_first_fault() {
        let plan = FleetFaultPlan::new(
            1,
            vec![
                FleetFaultEvent {
                    at: secs(9.0),
                    kind: FleetFaultKind::ReplicaLoss { shard: 0 },
                },
                FleetFaultEvent {
                    at: secs(2.0),
                    kind: FleetFaultKind::ShardLeave { shard: 1 },
                },
            ],
        );
        assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(plan.first_fault_at(), Some(secs(2.0)));
        assert_eq!(plan.max_shard(), Some(1));
        assert!(!plan.is_trivial());
        assert!(FleetFaultPlan::none().is_trivial());
    }

    #[test]
    fn validation_rejects_impossible_targets_and_degenerate_faults() {
        let ghost = FleetFaultPlan::new(
            0,
            vec![FleetFaultEvent {
                at: secs(1.0),
                kind: FleetFaultKind::ShardCrash {
                    shard: 7,
                    downtime: SimDuration::from_secs_f64(1.0),
                },
            }],
        );
        assert!(ghost.validate(4).is_err());
        assert!(ghost.validate(8).is_ok());
        // A join introduces the shard for later events.
        let join_then_crash = FleetFaultPlan::new(
            0,
            vec![
                FleetFaultEvent {
                    at: secs(1.0),
                    kind: FleetFaultKind::ShardJoin { shard: 7 },
                },
                FleetFaultEvent {
                    at: secs(2.0),
                    kind: FleetFaultKind::ShardCrash {
                        shard: 7,
                        downtime: SimDuration::from_secs_f64(1.0),
                    },
                },
            ],
        );
        assert!(join_then_crash.validate(4).is_ok());
        let slow = FleetFaultPlan::new(
            0,
            vec![FleetFaultEvent {
                at: secs(1.0),
                kind: FleetFaultKind::ShardSlow {
                    shard: 0,
                    factor: 0.5,
                    duration: SimDuration::from_secs_f64(1.0),
                },
            }],
        );
        assert!(slow.validate(4).is_err(), "factor < 1 is a speed-up");
    }

    #[test]
    fn profiles_are_seed_deterministic_and_valid() {
        for profile in FleetFaultProfile::ALL {
            let a = profile.plan(9, secs(600.0), 5);
            let b = profile.plan(9, secs(600.0), 5);
            assert_eq!(a, b, "{}", profile.label());
            assert!(a.validate(5).is_ok(), "{}", profile.label());
        }
        let a = FleetFaultProfile::CrashStorm.plan(9, secs(600.0), 5);
        let c = FleetFaultProfile::CrashStorm.plan(10, secs(600.0), 5);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn crash_storm_crashes_distinct_shards_inside_the_horizon() {
        let plan = FleetFaultProfile::CrashStorm.plan(3, secs(600.0), 6);
        let mut shards = Vec::new();
        for e in &plan.events {
            match e.kind {
                FleetFaultKind::ShardCrash { shard, downtime } => {
                    assert!(!shards.contains(&shard), "shard {shard} crashes twice");
                    shards.push(shard);
                    assert!(e.at + downtime < secs(600.0), "downtime exceeds horizon");
                }
                other => panic!("crash storm emitted {other:?}"),
            }
        }
        assert!(!shards.is_empty());
    }

    #[test]
    fn rolling_churn_pairs_leaves_with_new_joins() {
        let plan = FleetFaultProfile::RollingChurn.plan(4, secs(600.0), 4);
        let leaves = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FleetFaultKind::ShardLeave { .. }))
            .count();
        let joins: Vec<u32> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FleetFaultKind::ShardJoin { shard } => Some(shard),
                _ => None,
            })
            .collect();
        assert!(leaves >= 1);
        assert!(!joins.is_empty());
        assert!(
            joins.iter().all(|&s| s >= 4),
            "joins must bring brand-new shard ids"
        );
    }

    #[test]
    fn partition_and_wipe_profiles_emit_their_kind() {
        let p = FleetFaultProfile::RouterPartition.plan(5, secs(600.0), 4);
        assert!(p
            .events
            .iter()
            .all(|e| matches!(e.kind, FleetFaultKind::Partition { .. })));
        assert!(!p.events.is_empty());
        let w = FleetFaultProfile::ReplicaWipe.plan(5, secs(600.0), 4);
        assert!(w
            .events
            .iter()
            .all(|e| matches!(e.kind, FleetFaultKind::ReplicaLoss { .. })));
        assert!(!w.events.is_empty());
        let g = FleetFaultProfile::GrayShard.plan(5, secs(600.0), 4);
        assert!(g
            .events
            .iter()
            .all(|e| matches!(e.kind, FleetFaultKind::ShardSlow { .. })));
        let d = FleetFaultProfile::SlowDisk.plan(5, secs(600.0), 4);
        assert!(d
            .events
            .iter()
            .all(|e| matches!(e.kind, FleetFaultKind::DiskDegrade { .. })));
        assert!(!d.events.is_empty());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = FleetFaultProfile::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FleetFaultProfile::ALL.len());
    }
}
