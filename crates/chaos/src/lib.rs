//! Deterministic fault injection for FlashPS resilience experiments.
//!
//! Production image-editing clusters lose workers, see disks degrade,
//! and drop cache entries; the paper's goodput numbers only matter if
//! the system keeps serving through those events. This crate describes
//! *what goes wrong and when* as data — a [`FaultPlan`] of timestamped
//! [`FaultEvent`]s derived purely from a seed — so the cluster
//! simulator and the threaded server can replay identical fault
//! schedules across policies and the results stay comparable.
//!
//! The crate deliberately depends only on `fps-simtime`: it knows
//! nothing about workers, caches, or batches beyond their indices, so
//! every layer (simulator, store, threaded server) can consume the
//! same plan.

pub mod fleet;
pub mod plan;
pub mod profile;
pub mod retry;

pub use fleet::{FleetFaultEvent, FleetFaultKind, FleetFaultPlan, FleetFaultProfile};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use profile::FaultProfile;
pub use retry::RetryPolicy;
