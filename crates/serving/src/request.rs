//! Request lifecycle state inside the serving simulator.

use fps_overload::{Rung, ShedCause};
use fps_simtime::SimTime;
use fps_workload::RequestSpec;

/// Lifecycle phase of a simulated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Routed to a worker, waiting for preprocessing / cache readiness.
    Pending,
    /// Preprocessed and cache-ready, waiting to join the running batch.
    Ready,
    /// In the running batch, denoising.
    Running,
    /// Denoising done, postprocessing.
    Post,
    /// Fully served.
    Done,
}

/// A request moving through the simulator.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The workload spec (arrival, template, mask ratio, seed).
    pub spec: RequestSpec,
    /// Current phase.
    pub phase: Phase,
    /// Worker the request was routed to.
    pub worker: usize,
    /// Denoising steps remaining.
    pub steps_left: usize,
    /// When the template's cached activations are host-resident
    /// (prefetch-while-queued, §4.2).
    pub cache_ready_at: SimTime,
    /// When the cache prefetch for the current attempt was issued
    /// (`None` for cache-less engines). Only feeds tracing spans.
    pub cache_fetch_started_at: Option<SimTime>,
    /// Where the current attempt's cache fetch was served from
    /// ("host" / "disk" / "none"). Only feeds tracing spans.
    pub cache_fetch_source: Option<&'static str>,
    /// When the request joined the running batch (first step start).
    pub batch_joined_at: Option<SimTime>,
    /// When denoising finished.
    pub denoise_done_at: Option<SimTime>,
    /// When the request fully completed.
    pub completed_at: Option<SimTime>,
    /// Time spent in pre+post processing.
    pub processing_secs: f64,
    /// Interruptions suffered from CPU work under naive continuous
    /// batching (§6.4).
    pub interruptions: u32,
    /// Retries consumed so far (crashes, drops, parked re-dispatch).
    pub retries: u32,
    /// Whether the cached template was lost or corrupt and this request
    /// fell back to a full recompute (Diffusers-style, mask ratio 1).
    pub fallback: bool,
    /// Set when the request was explicitly rejected instead of served.
    pub rejected: Option<RejectReason>,
    /// Degradation rung the request is served at (None when overload
    /// control is off).
    pub rung: Option<Rung>,
    /// Whether the request has passed admission control (checked once,
    /// on the first attempt; retries and parked re-dispatches keep it).
    pub admitted: bool,
}

impl SimRequest {
    /// Wraps a spec for simulation with `steps` denoising steps.
    pub fn new(spec: RequestSpec, steps: usize) -> Self {
        Self {
            spec,
            phase: Phase::Pending,
            worker: usize::MAX,
            steps_left: steps,
            cache_ready_at: SimTime::ZERO,
            cache_fetch_started_at: None,
            cache_fetch_source: None,
            batch_joined_at: None,
            denoise_done_at: None,
            completed_at: None,
            processing_secs: 0.0,
            interruptions: 0,
            retries: 0,
            fallback: false,
            rejected: None,
            rung: None,
            admitted: false,
        }
    }

    /// Resets transient progress for a fresh attempt after a crash or
    /// drop. Accumulated processing seconds, interruptions, retries and
    /// the fallback flag persist — they are real costs already paid.
    pub fn reset_for_retry(&mut self, steps: usize) {
        self.phase = Phase::Pending;
        self.worker = usize::MAX;
        self.steps_left = steps;
        self.cache_ready_at = SimTime::ZERO;
        self.cache_fetch_started_at = None;
        self.cache_fetch_source = None;
        self.batch_joined_at = None;
        self.denoise_done_at = None;
    }
}

/// Why a request was rejected instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The per-request deadline elapsed before completion.
    DeadlineExceeded,
    /// The retry budget ran out.
    RetriesExhausted,
    /// Shed at admission: the overload controller judged the request
    /// infeasible before it consumed any cluster resources.
    Shed(ShedCause),
}

impl RejectReason {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::DeadlineExceeded => "deadline-exceeded",
            Self::RetriesExhausted => "retries-exhausted",
            Self::Shed(ShedCause::RateLimited) => "shed-rate-limited",
            Self::Shed(ShedCause::QueueFull) => "shed-queue-full",
            Self::Shed(ShedCause::Infeasible) => "shed-infeasible",
        }
    }

    /// Whether the request was shed at admission (as opposed to
    /// rejected after consuming queue or compute time).
    pub fn is_shed(self) -> bool {
        matches!(self, Self::Shed(_))
    }
}

/// An explicitly rejected request — never a silent drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejectedRequest {
    /// Request id from the trace.
    pub id: u64,
    /// Why it was rejected.
    pub reason: RejectReason,
    /// Retries it had consumed when rejected.
    pub retries: u32,
}

/// Final accounting of one served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Request id from the trace.
    pub id: u64,
    /// Worker that served it.
    pub worker: usize,
    /// Mask ratio of the edit.
    pub mask_ratio: f64,
    /// Arrival → batch-join (queueing) seconds.
    pub queueing: f64,
    /// Pre+post processing seconds.
    pub processing: f64,
    /// Batch-join → denoise-complete seconds (includes stalls).
    pub inference: f64,
    /// End-to-end seconds.
    pub total: f64,
    /// Interruption count under naive continuous batching.
    pub interruptions: u32,
    /// Retries consumed before the request completed.
    pub retries: u32,
    /// Whether the request was served via full-recompute fallback.
    pub fallback: bool,
    /// Degradation rung the request was served at (None when overload
    /// control was off).
    pub rung: Option<Rung>,
}

impl SimRequest {
    /// Builds the outcome record; `None` until the request completes.
    pub fn outcome(&self) -> Option<RequestOutcome> {
        let completed = self.completed_at?;
        let joined = self.batch_joined_at?;
        let denoised = self.denoise_done_at?;
        let arrival = self.spec.arrival();
        let total = completed.since(arrival).as_secs_f64();
        let queueing = joined.since(arrival).as_secs_f64();
        let inference = denoised.since(joined).as_secs_f64();
        Some(RequestOutcome {
            id: self.spec.id,
            worker: self.worker,
            mask_ratio: self.spec.mask_ratio,
            queueing,
            processing: self.processing_secs,
            inference,
            total,
            interruptions: self.interruptions,
            retries: self.retries,
            fallback: self.fallback,
            rung: self.rung,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_workload::trace::MaskShapeSpec;

    fn spec(arrival_ns: u64) -> RequestSpec {
        RequestSpec {
            id: 1,
            arrival_ns,
            template_id: 0,
            mask_ratio: 0.2,
            mask_shape: MaskShapeSpec::Rect,
            seed: 0,
        }
    }

    #[test]
    fn outcome_requires_completion() {
        let mut r = SimRequest::new(spec(0), 10);
        assert!(r.outcome().is_none());
        r.batch_joined_at = Some(SimTime::from_nanos(2_000_000_000));
        r.denoise_done_at = Some(SimTime::from_nanos(5_000_000_000));
        r.completed_at = Some(SimTime::from_nanos(6_000_000_000));
        r.processing_secs = 0.7;
        let o = r.outcome().unwrap();
        assert!((o.queueing - 2.0).abs() < 1e-9);
        assert!((o.inference - 3.0).abs() < 1e-9);
        assert!((o.total - 6.0).abs() < 1e-9);
        assert!((o.processing - 0.7).abs() < 1e-9);
    }

    #[test]
    fn new_request_starts_pending() {
        let r = SimRequest::new(spec(5), 8);
        assert_eq!(r.phase, Phase::Pending);
        assert_eq!(r.steps_left, 8);
        assert_eq!(r.interruptions, 0);
    }
}
