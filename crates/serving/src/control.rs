//! The shared control plane: policy decisions, separated from the
//! execution substrate that carries them out.
//!
//! FlashPS has two execution planes — the virtual-time [`ClusterSim`]
//! and the wall-clock `ThreadedServer` in fps-core — and one set of
//! serving policies: SLO-aware admission, the five-rung degradation
//! ladder, the cache-read circuit breaker, and mask-aware routing.
//! [`ControlPlane`] owns those policies behind a clock-generic
//! interface (every method takes an explicit [`SimTime`] stamp; a
//! [`TimeSource`] names the clock domain the stamps come from), so
//! both planes consult the exact same code and, given the same inputs,
//! produce the exact same [`Decision`] sequence. That property is what
//! the decision-parity differential test in
//! `tests/integration_control.rs` locks in.
//!
//! The split is strict: the plane decides (*admit or shed? which rung?
//! which worker?*) and the execution plane acts (schedules events or
//! sends on channels, charges batches, completes requests). The plane
//! never blocks, sleeps, or touches a queue.
//!
//! [`ClusterSim`]: crate::cluster::ClusterSim

use fps_json::Json;
use fps_overload::{AdmissionVerdict, CircuitBreaker, Rung, ShedCause, TimeSource};
use fps_simtime::{SimDuration, SimTime};
use fps_trace::{TraceSink, Track};
use fps_workload::RequestSpec;

use crate::overload::{rung_steps, OverloadState};
use crate::router::{HealthAwareRouter, Router, WorkerView};

/// One policy decision, in the order the plane made it.
///
/// The recorded sequence is the plane's observable behaviour: two
/// execution planes fed the same workload through the same policies
/// must produce identical sequences, even though their clocks (and
/// therefore outcome timings) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The request passed admission control.
    Admitted {
        /// Request id.
        id: u64,
    },
    /// The request was shed at admission.
    Shed {
        /// Request id.
        id: u64,
        /// Which admission gate rejected it.
        cause: ShedCause,
    },
    /// The ladder assigned this dispatch a degradation rung.
    Rung {
        /// Request id.
        id: u64,
        /// The rung in effect for this dispatch.
        rung: Rung,
    },
    /// The router chose a worker (pre-clamp: the raw router output).
    Routed {
        /// Request id.
        id: u64,
        /// Chosen worker index.
        worker: usize,
    },
}

/// What the plane decided to do with a submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Assessment {
    /// Serve the request, at `steps` denoising steps; `rung` is the
    /// degradation rung when overload control is active.
    Serve {
        /// Ladder rung for this dispatch (None without overload
        /// control).
        rung: Option<Rung>,
        /// Denoising steps to run (rung-scaled under overload).
        steps: usize,
    },
    /// Shed the request at admission.
    Shed(ShedCause),
}

/// Clock-generic policy pipeline: admission → ladder → routing, with
/// the cache-read breaker held for the execution plane's fetch path.
///
/// Construction picks the policy set: [`ControlPlane::with_overload`]
/// installs the full stack; [`ControlPlane::with_queue_cap`] installs
/// only the legacy bounded-queue gate (the threaded server's original
/// single policy, kept for configurations that opt out of overload
/// control). With neither, every submission is admitted at full
/// steps.
#[derive(Debug)]
pub struct ControlPlane<R> {
    router: HealthAwareRouter<R>,
    overload: Option<OverloadState>,
    queue_cap: Option<usize>,
    time: TimeSource,
    full_steps: usize,
    decisions: Option<Vec<Decision>>,
    trace: TraceSink,
    control_track: Track,
}

/// The default trace track decision events land on: distinct from the
/// per-worker execution tracks so policy and mechanism stay visually
/// separate in exported traces. Fleet shards override it (one control
/// track per shard) via [`ControlPlane::with_control_track`].
const CONTROL_TRACK: Track = Track::new(1, 0);

impl<R: Router> ControlPlane<R> {
    /// A plane with no overload control and no queue bound: routing
    /// only.
    pub fn new(router: R, time: TimeSource, full_steps: usize) -> Self {
        ControlPlane {
            router: HealthAwareRouter::new(router),
            overload: None,
            queue_cap: None,
            time,
            full_steps,
            decisions: None,
            trace: TraceSink::disabled(),
            control_track: CONTROL_TRACK,
        }
    }

    /// Overrides the trace track decision events land on. A fleet runs
    /// one plane per shard; giving each its own track keeps per-shard
    /// policy streams separable in one exported trace.
    pub fn with_control_track(mut self, track: Track) -> Self {
        self.control_track = track;
        self
    }

    /// Attaches a trace sink: every decision is emitted as an event
    /// whose args carry the plane's clock domain
    /// ([`TimeSource::clock_label`]), so a trace reader always knows
    /// which clock the decision stamps come from.
    pub fn with_trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Installs the full overload-control stack (admission, ladder,
    /// breaker).
    pub fn with_overload(mut self, overload: Option<OverloadState>) -> Self {
        self.overload = overload;
        self
    }

    /// Installs the legacy queue-depth bound, consulted only when no
    /// overload stack is installed.
    pub fn with_queue_cap(mut self, cap: Option<usize>) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Enables (or disables) recording of the decision sequence.
    pub fn record_decisions(mut self, on: bool) -> Self {
        self.decisions = if on { Some(Vec::new()) } else { None };
        self
    }

    /// The clock domain this plane's stamps are expected from.
    pub fn time(&self) -> &TimeSource {
        &self.time
    }

    /// Whether the full overload stack is installed.
    pub fn overload_enabled(&self) -> bool {
        self.overload.is_some()
    }

    /// The overload state, when installed.
    pub fn overload(&self) -> Option<&OverloadState> {
        self.overload.as_ref()
    }

    /// The cache-read circuit breaker, for the execution plane's
    /// guarded fetch path.
    pub fn breaker_mut(&mut self) -> Option<&mut CircuitBreaker> {
        self.overload.as_mut().map(|ov| &mut ov.breaker)
    }

    /// The SLO deadline work must meet at batch join, when overload
    /// control is active.
    pub fn slo_deadline(&self) -> Option<SimDuration> {
        self.overload.as_ref().map(|ov| ov.config.deadline)
    }

    /// The recorded decision sequence (empty unless recording was
    /// enabled).
    pub fn decisions(&self) -> &[Decision] {
        self.decisions.as_deref().unwrap_or(&[])
    }

    fn log(&mut self, d: Decision, now: SimTime) {
        if let Some(log) = self.decisions.as_mut() {
            log.push(d);
        }
        if !self.trace.is_enabled() {
            return;
        }
        // Stamp in the sink's own domain: a wall sink keeps one epoch
        // for the whole trace, a virtual sink takes the explicit
        // simulator stamp. The clock arg names the domain either way.
        let ts = if self.time.is_wall() {
            self.trace.now_ns()
        } else {
            now.as_nanos()
        };
        let clock = ("clock", Json::Str(self.time.clock_label().into()));
        let (name, mut args) = match d {
            Decision::Admitted { id } => ("admit", vec![("id", Json::U64(id))]),
            Decision::Shed { id, cause } => (
                "shed",
                vec![
                    ("id", Json::U64(id)),
                    ("cause", Json::Str(cause.label().into())),
                ],
            ),
            Decision::Rung { id, rung } => (
                "rung",
                vec![
                    ("id", Json::U64(id)),
                    ("rung", Json::Str(rung.label().into())),
                ],
            ),
            Decision::Routed { id, worker } => (
                "route_decision",
                vec![("id", Json::U64(id)), ("worker", Json::U64(worker as u64))],
            ),
        };
        args.push(clock);
        self.trace
            .event_at(name, "control", self.control_track, ts, args);
    }

    /// Admission and rung selection for one submission attempt.
    ///
    /// `backlog` is the work already in the system (outstanding plus
    /// parked/queued), *not* counting this request; `capacity` is the
    /// live concurrent service slots. `already_admitted` marks retries
    /// and parked re-dispatches, which have paid for their admission
    /// slot but are re-assessed by the ladder at the pressure
    /// prevailing when they re-enter.
    pub fn assess(
        &mut self,
        id: u64,
        now: SimTime,
        backlog: usize,
        capacity: usize,
        already_admitted: bool,
    ) -> Assessment {
        if self.overload.is_some() {
            if !already_admitted {
                let ov = self.overload.as_mut().expect("checked above");
                let est_floor = ov.est_completion_secs(backlog, capacity, ov.wave_floor);
                match ov.admission.check(now, backlog, est_floor) {
                    AdmissionVerdict::Admit => self.log(Decision::Admitted { id }, now),
                    AdmissionVerdict::Shed(cause) => {
                        self.log(Decision::Shed { id, cause }, now);
                        return Assessment::Shed(cause);
                    }
                }
            }
            let ov = self.overload.as_mut().expect("checked above");
            let pressure = ov.pressure(backlog, capacity);
            let rung = ov.ladder.observe(pressure, now);
            self.log(Decision::Rung { id, rung }, now);
            return Assessment::Serve {
                rung: Some(rung),
                steps: rung_steps(rung, self.full_steps),
            };
        }
        if let Some(cap) = self.queue_cap {
            if !already_admitted && backlog >= cap {
                self.log(
                    Decision::Shed {
                        id,
                        cause: ShedCause::QueueFull,
                    },
                    now,
                );
                return Assessment::Shed(ShedCause::QueueFull);
            }
        }
        if !already_admitted {
            self.log(Decision::Admitted { id }, now);
        }
        Assessment::Serve {
            rung: None,
            steps: self.full_steps,
        }
    }

    /// Routes a request over the given worker views, returning the
    /// raw (unclamped) router choice. Execution planes clamp
    /// out-of-range ids to a safe worker themselves, so a buggy custom
    /// router degrades instead of wedging the run.
    pub fn route(
        &mut self,
        id: u64,
        spec: &RequestSpec,
        views: &[WorkerView],
        now: SimTime,
    ) -> usize {
        let w = self.router.route(spec, views, now);
        self.log(Decision::Routed { id, worker: w }, now);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, GpuSpec};
    use crate::overload::OverloadConfig;
    use crate::router::LeastLoadedRouter;
    use crate::worker::WorkerHealth;
    use fps_diffusion::ModelConfig;
    use fps_simtime::SimDuration;
    use fps_workload::trace::MaskShapeSpec;

    fn view(id: usize) -> WorkerView {
        WorkerView {
            id,
            outstanding: Vec::new(),
            max_batch: 4,
            model_tokens: 4096,
            health: WorkerHealth::Healthy,
        }
    }

    fn spec(id: u64) -> RequestSpec {
        RequestSpec {
            id,
            arrival_ns: 0,
            template_id: 0,
            mask_ratio: 0.25,
            mask_shape: MaskShapeSpec::Rect,
            seed: id,
        }
    }

    fn overloaded_plane() -> ControlPlane<LeastLoadedRouter> {
        let cost = CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl());
        let config =
            OverloadConfig::for_cluster(&cost, 2, 4, 0.25, SimDuration::from_secs_f64(6.0));
        let state = OverloadState::new(config, &cost, 4, 0.25);
        ControlPlane::new(LeastLoadedRouter, TimeSource::virtual_clock(), 50)
            .with_overload(Some(state))
            .record_decisions(true)
    }

    #[test]
    fn plain_plane_admits_everything_at_full_steps() {
        let mut plane = ControlPlane::new(LeastLoadedRouter, TimeSource::virtual_clock(), 50)
            .record_decisions(true);
        for i in 0..100 {
            let got = plane.assess(i, SimTime::ZERO, i as usize, 4, false);
            assert_eq!(
                got,
                Assessment::Serve {
                    rung: None,
                    steps: 50
                }
            );
        }
        assert_eq!(plane.decisions().len(), 100);
    }

    #[test]
    fn queue_cap_sheds_above_bound_only() {
        let mut plane = ControlPlane::new(LeastLoadedRouter, TimeSource::virtual_clock(), 50)
            .with_queue_cap(Some(2));
        assert!(matches!(
            plane.assess(0, SimTime::ZERO, 1, 4, false),
            Assessment::Serve { .. }
        ));
        assert_eq!(
            plane.assess(1, SimTime::ZERO, 2, 4, false),
            Assessment::Shed(ShedCause::QueueFull)
        );
        // Retries never re-pay the queue bound.
        assert!(matches!(
            plane.assess(2, SimTime::ZERO, 99, 4, true),
            Assessment::Serve { .. }
        ));
    }

    #[test]
    fn overload_plane_sheds_and_degrades_under_pressure() {
        let mut plane = overloaded_plane();
        // A burst of fresh submissions all at t=0: the token bucket
        // never refills, so the tail of the burst must shed.
        let mut shed = 0;
        for i in 0..200 {
            if let Assessment::Shed(_) = plane.assess(i, SimTime::ZERO, 4, 8, false) {
                shed += 1;
            }
        }
        assert!(shed > 0, "admission never shed under saturation");
        // A retry re-entering against an enormous backlog skips
        // admission but is re-assessed by the ladder, which jumps
        // straight to the cheapest rung under unbounded pressure.
        match plane.assess(999, SimTime::ZERO, 1_000_000, 8, true) {
            Assessment::Serve { rung, steps } => {
                assert_eq!(rung, Some(Rung::ReducedSteps));
                assert_eq!(steps, rung_steps(Rung::ReducedSteps, 50));
                assert!(steps < 50);
            }
            other => panic!("retry path shed unexpectedly: {other:?}"),
        }
        // The decision log interleaves admits, sheds, and rungs.
        assert!(plane
            .decisions()
            .iter()
            .any(|d| matches!(d, Decision::Shed { .. })));
        assert!(plane
            .decisions()
            .iter()
            .any(|d| matches!(d, Decision::Rung { .. })));
    }

    #[test]
    fn route_logs_raw_choice() {
        let mut plane = overloaded_plane();
        let views = [view(0), view(1)];
        let w = plane.route(7, &spec(7), &views, SimTime::ZERO);
        assert_eq!(w, 0);
        assert!(plane
            .decisions()
            .contains(&Decision::Routed { id: 7, worker: 0 }));
    }

    #[test]
    fn decision_events_carry_the_clock_domain() {
        let sink = fps_trace::TraceSink::recording(fps_trace::Clock::Virtual);
        let mut plane = overloaded_plane().with_trace(sink.clone());
        let got = plane.assess(1, SimTime::ZERO, 0, 8, false);
        assert!(matches!(got, Assessment::Serve { .. }));
        let views = [view(0), view(1)];
        plane.route(1, &spec(1), &views, SimTime::ZERO);
        let t = sink.drain().expect("recording sink");
        for name in ["admit", "rung", "route_decision"] {
            let ev = t
                .events
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("missing {name} event"));
            assert_eq!(ev.cat, "control");
            assert_eq!(
                ev.arg("clock"),
                Some(&Json::Str("virtual".into())),
                "decision events must name the plane's clock domain"
            );
        }
    }

    #[test]
    fn breaker_is_shared_not_cloned() {
        let mut plane = overloaded_plane();
        for _ in 0..3 {
            let b = plane.breaker_mut().expect("overload installed");
            b.record_failure(SimTime::ZERO);
        }
        // Failures recorded through the accessor mutate the plane's
        // own breaker: the trip is visible through the shared state.
        assert_eq!(plane.overload().unwrap().breaker.trips(), 1);
    }
}
