//! The FlashPS worker engine and serving simulator.
//!
//! This crate hosts the performance substrate: analytic GPU/PCIe cost
//! models calibrated to the paper's setups ([`cost`]), the serving
//! engines under comparison ([`engine`]), the three batching policies
//! of §4.3 ([`worker`]) — static, naive continuous, and FlashPS's
//! disaggregated continuous batching — and a deterministic
//! discrete-event cluster simulator ([`cluster`]) that routes a request
//! trace through workers and records per-request latency breakdowns.
//!
//! Scheduling policies plug in through the [`router::Router`] trait;
//! the request-count and token-count baselines live here, while the
//! mask-aware policy (Algorithm 2) lives in the `flashps` core crate.
//!
//! Policy decisions themselves — admission, degradation rung, worker
//! choice — are owned by the clock-generic [`control::ControlPlane`],
//! which both this crate's simulator and the wall-clock
//! `ThreadedServer` in fps-core consult, so the two execution planes
//! share one policy implementation.

pub mod cluster;
pub mod control;
pub mod cost;
pub mod engine;
pub mod error;
pub mod overload;
pub mod profiler;
pub mod request;
pub mod router;
pub mod worker;

pub use cluster::{ClusterConfig, ClusterSim, RunReport};
pub use control::{Assessment, ControlPlane, Decision};
pub use cost::{CostModel, GpuSpec};
pub use engine::EngineKind;
pub use error::ServingError;
pub use overload::{OverloadConfig, OverloadState};
pub use request::{RejectReason, RejectedRequest, RequestOutcome, SimRequest};
pub use router::{
    HealthAwareRouter, LeastLoadedRouter, RoundRobinRouter, Router, TokenCountRouter, WorkerView,
};
pub use worker::{BatchingPolicy, WorkerConfig, WorkerHealth};

// Re-exported so embedders configuring `ClusterConfig::trace` don't
// need a direct fps-trace dependency.
pub use fps_trace::{Clock, Trace, TraceSink, Track};

// Re-exported so embedders building a `ControlPlane` (notably the
// threaded server in fps-core) don't need a direct fps-overload
// dependency.
pub use fps_overload::{Rung, ShedCause, TimeSource};

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, ServingError>;
