//! The discrete-event cluster simulator.
//!
//! Drives a request trace through a set of workers under a routing
//! policy, an engine, and a batching policy, and records per-request
//! latency breakdowns. This is the machinery behind the end-to-end
//! serving experiments (Fig. 12), the batching comparison (Fig. 16-
//! left, Fig. 4-middle), and the load-balancing comparison (Fig. 16-
//! right, Fig. 4-right).
//!
//! [`ClusterSim::run_with_faults`] additionally replays a
//! deterministic [`FaultPlan`]: worker crashes requeue their in-flight
//! batch under a bounded [`RetryPolicy`], slowdowns stretch step
//! latencies, cache loss/corruption triggers full-recompute fallback,
//! and dropped requests back off and retry. Every request either
//! completes or is explicitly rejected — never silently lost.

use fps_chaos::{FaultKind, FaultPlan, RetryPolicy};
use fps_json::Json;
use fps_maskcache::store::{HierarchicalStore, StoreConfig};
use fps_maskcache::VerifiedFetch;
use fps_metrics::{LatencyBreakdown, LatencyRecorder};
use fps_overload::{Rung, TimeSource};
use fps_simtime::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use fps_trace::{Clock, TraceSink, Track};
use fps_workload::Trace;

use crate::control::{Assessment, ControlPlane, Decision};
use crate::cost::{BatchItem, CostModel};
use crate::engine::EngineKind;
use crate::error::ServingError;
use crate::overload::{rung_engine, OverloadConfig, OverloadState};
use crate::request::{Phase, RejectReason, RejectedRequest, RequestOutcome, SimRequest};
use crate::router::{Router, WorkerView};
use crate::worker::{
    BatchingPolicy, CpuTask, OutstandingReq, WorkerConfig, WorkerHealth, WorkerState,
};
use crate::Result;

/// Simulation events.
///
/// Completion events are stamped with the scheduling worker's `epoch`
/// (and the request's `attempt`): a crash bumps both, so completions
/// belonging to a dead incarnation or a superseded attempt are
/// discarded instead of corrupting the new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A request arrives at the scheduler (also used for retries and
    /// parked re-dispatch).
    Arrival(usize),
    /// A request's preprocessing lands on a naive-CB engine process.
    PreQueued {
        worker: usize,
        req: usize,
        attempt: u32,
    },
    /// A request is preprocessed and cache-ready on a worker.
    Ready {
        worker: usize,
        req: usize,
        attempt: u32,
    },
    /// A denoising step completed.
    StepDone { worker: usize, epoch: u64 },
    /// The engine process finished a burst of CPU tasks (naive CB).
    CpuDone { worker: usize, epoch: u64 },
    /// Postprocessing of a request completed.
    PostDone {
        worker: usize,
        req: usize,
        attempt: u32,
    },
    /// The fault plan's event at this index fires.
    Fault(usize),
    /// A crashed worker rejoins the cluster.
    WorkerRestart { worker: usize },
    /// A transient slowdown ends (stale tokens are ignored).
    SlowdownEnd { worker: usize, token: u64 },
    /// A disk degradation window ends (stale tokens are ignored).
    DiskRestore { token: u64 },
}

/// Cluster-level configuration of a serving experiment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Cost model (GPU + analytic model).
    pub cost: CostModel,
    /// Engine on every worker.
    pub engine: EngineKind,
    /// Batching policy on every worker.
    pub batching: BatchingPolicy,
    /// Number of worker replicas (one GPU each).
    pub workers: usize,
    /// Requested maximum batch size per worker.
    pub max_batch: usize,
    /// CPU pool size per worker for disaggregated pre/post.
    pub cpu_workers: usize,
    /// Hierarchical store configuration (used by cache-consuming
    /// engines).
    pub store: StoreConfig,
    /// Scheduler decision overhead per request (0.6 ms, §6.6).
    pub scheduler_overhead: SimDuration,
    /// Overload control (admission, degradation ladder, cache-read
    /// circuit breaker). `None` admits everything and serves it at the
    /// configured engine, exactly as before.
    pub overload: Option<OverloadConfig>,
    /// Record the control plane's decision sequence in
    /// [`RunReport::decisions`] (off by default; used by the
    /// sim-vs-real decision-parity tests).
    pub record_decisions: bool,
    /// Structured-tracing sink. All simulator records carry **virtual**
    /// timestamps (`SimTime` nanoseconds); a wall-clock sink is
    /// rejected at run start. The default disabled sink records
    /// nothing and costs one branch per instrumentation point.
    pub trace: TraceSink,
}

impl ClusterConfig {
    /// A FlashPS-default cluster for the given cost model.
    pub fn flashps_default(cost: CostModel, workers: usize) -> Self {
        Self {
            cost,
            engine: EngineKind::FlashPs { kv: false },
            batching: BatchingPolicy::ContinuousDisaggregated,
            workers,
            max_batch: 8,
            cpu_workers: 4,
            store: StoreConfig::production_like(),
            scheduler_overhead: SimDuration::from_micros(600),
            overload: None,
            record_decisions: false,
            trace: TraceSink::disabled(),
        }
    }

    /// The FlashPS default with overload control enabled: the premium
    /// FlashPS-kv engine as rung 0 and an overload config derived from
    /// the cluster shape at the given SLO deadline. `mask_ratio` is
    /// the typical mask ratio of the offered load.
    pub fn with_overload_control(
        cost: CostModel,
        workers: usize,
        mask_ratio: f64,
        deadline: SimDuration,
    ) -> Self {
        let mut cfg = Self::flashps_default(cost, workers);
        cfg.engine = EngineKind::FlashPs { kv: true };
        cfg.overload = Some(OverloadConfig::for_cluster(
            &cfg.cost,
            workers,
            cfg.max_batch,
            mask_ratio,
            deadline,
        ));
        cfg
    }
}

/// Results of one cluster run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Latency recorder over all completed requests.
    pub recorder: LatencyRecorder,
    /// Virtual time when the last request completed.
    pub makespan_secs: f64,
    /// Served requests per second of virtual time.
    pub throughput_rps: f64,
    /// Steps executed per worker.
    pub steps_per_worker: Vec<u64>,
    /// GPU busy fraction per worker.
    pub utilization: Vec<f64>,
    /// Activation-store behaviour over the run (hits, prefetches,
    /// evictions, fallbacks).
    pub store_stats: fps_maskcache::store::StoreStats,
    /// Explicitly rejected requests (deadline or retry budget).
    pub rejected: Vec<RejectedRequest>,
    /// Retries consumed across all requests.
    pub total_retries: u64,
    /// Completed requests that were served via full-recompute fallback.
    pub fallback_serves: u64,
    /// Crashes suffered per worker.
    pub crashes_per_worker: Vec<u64>,
    /// Requests shed at admission (subset of `rejected`).
    pub shed: u64,
    /// Times the cache-read circuit breaker tripped to Open.
    pub breaker_trips: u64,
    /// The control plane's decision sequence (empty unless
    /// [`ClusterConfig::record_decisions`] was set).
    pub decisions: Vec<Decision>,
}

impl RunReport {
    /// Mean end-to-end latency in seconds (NaN when empty).
    pub fn mean_latency(&self) -> f64 {
        self.recorder
            .total_summary()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }

    /// P95 end-to-end latency in seconds (NaN when empty).
    pub fn p95_latency(&self) -> f64 {
        self.recorder
            .total_summary()
            .map(|s| s.p95)
            .unwrap_or(f64::NAN)
    }

    /// Mean queueing seconds (NaN when empty).
    pub fn mean_queueing(&self) -> f64 {
        self.recorder
            .queueing_summary()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }

    /// Served requests per second of virtual time, counting only
    /// completed (not rejected) requests — the resilience goodput.
    pub fn goodput_rps(&self) -> f64 {
        self.throughput_rps
    }

    /// Fraction of completed requests served via fallback recompute.
    pub fn fallback_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.fallback_serves as f64 / self.outcomes.len() as f64
        }
    }

    /// Requests rejected because their deadline elapsed in the queue
    /// (distinct from requests shed at admission).
    pub fn deadline_rejections(&self) -> u64 {
        self.rejected
            .iter()
            .filter(|r| r.reason == RejectReason::DeadlineExceeded)
            .count() as u64
    }

    /// Served requests whose end-to-end latency met the deadline.
    pub fn served_within(&self, deadline_secs: f64) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.total <= deadline_secs)
            .count() as u64
    }

    /// Requests per second of virtual time that completed *within* the
    /// deadline — the SLO goodput, which is what overload control
    /// optimizes (plain goodput counts late answers nobody wants).
    pub fn goodput_at_deadline(&self, deadline_secs: f64) -> f64 {
        if self.makespan_secs > 0.0 {
            self.served_within(deadline_secs) as f64 / self.makespan_secs
        } else {
            0.0
        }
    }

    /// Served-request counts per degradation rung, in ladder order.
    /// Requests served with overload control off count under `None`.
    pub fn rung_counts(&self) -> Vec<(Option<Rung>, u64)> {
        let mut counts: Vec<(Option<Rung>, u64)> = Rung::ALL
            .iter()
            .map(|&r| (Some(r), 0))
            .chain(std::iter::once((None, 0)))
            .collect();
        for o in &self.outcomes {
            if let Some(slot) = counts.iter_mut().find(|(k, _)| *k == o.rung) {
                slot.1 += 1;
            }
        }
        counts.retain(|&(_, n)| n > 0);
        counts
    }
}

/// The simulator world.
pub struct ClusterSim<'r> {
    config: ClusterConfig,
    workers: Vec<WorkerState>,
    requests: Vec<SimRequest>,
    /// Outstanding request indices per worker (routed, not yet done
    /// denoising) — the router's load signal.
    outstanding: Vec<Vec<usize>>,
    store: HierarchicalStore,
    /// The shared policy pipeline (admission, ladder, breaker,
    /// routing). The simulator is one of its two execution planes; the
    /// threaded server in fps-core is the other.
    plane: ControlPlane<&'r mut dyn Router>,
    /// Reused worker-view buffer for routing calls, so a route is
    /// allocation-light in steady state.
    views_scratch: Vec<WorkerView>,
    plan: &'r FaultPlan,
    retry: &'r RetryPolicy,
    /// Whether any fault machinery is active (verified reads etc.).
    chaos: bool,
    /// Denoising steps per request (for retry resets).
    steps: usize,
    /// Requests that arrived while every worker was down; re-dispatched
    /// on the next restart without consuming a retry.
    parked: Vec<usize>,
    /// Per-worker slowdown token; bumped on crash or a newer slowdown.
    slow_tokens: Vec<u64>,
    /// Disk degradation token; bumped on every new degradation window.
    disk_token: u64,
    rejected: Vec<RejectedRequest>,
    total_retries: u64,
}

impl<'r> ClusterSim<'r> {
    /// Runs a trace through the cluster and reports outcomes, with no
    /// fault injection.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] for zero workers and
    /// [`ServingError::BadRoute`] if the router misbehaves.
    pub fn run(config: ClusterConfig, trace: &Trace, router: &mut dyn Router) -> Result<RunReport> {
        let plan = FaultPlan::none();
        let retry = RetryPolicy::no_retries();
        ClusterSim::run_with_faults(config, trace, router, &plan, &retry)
    }

    /// Runs a trace through the cluster while replaying a deterministic
    /// fault plan under a bounded retry policy.
    ///
    /// The routing policy is wrapped in a
    /// [`HealthAwareRouter`](crate::router::HealthAwareRouter), so
    /// down workers take no new traffic; their in-flight requests are
    /// requeued (or explicitly rejected once the retry budget or
    /// deadline runs out).
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] for zero workers or a
    /// plan referencing workers outside the cluster.
    pub fn run_with_faults(
        config: ClusterConfig,
        trace: &Trace,
        router: &'r mut dyn Router,
        plan: &'r FaultPlan,
        retry: &'r RetryPolicy,
    ) -> Result<RunReport> {
        if config.workers == 0 {
            return Err(ServingError::InvalidConfig {
                reason: "cluster needs at least one worker".into(),
            });
        }
        if let Err(reason) = plan.validate(config.workers) {
            return Err(ServingError::InvalidConfig { reason });
        }
        // The simulator runs on virtual time; accepting a wall-clock
        // sink would let `Instant`-derived and `SimTime`-derived
        // nanoseconds mix in one trace.
        if config.trace.clock() == Some(Clock::Wall) {
            return Err(ServingError::InvalidConfig {
                reason: "ClusterSim requires a virtual-clock TraceSink \
                         (TraceSink::recording(Clock::Virtual)); wall-clock timestamps must \
                         never mix with simulator time in one trace"
                    .into(),
            });
        }
        if config.trace.is_enabled() {
            config.trace.name_track(Track::new(0, 0), "scheduler");
            for w in 0..config.workers {
                config
                    .trace
                    .name_track(Track::new(w as u32 + 1, 0), format!("worker{w} gpu"));
            }
        }
        let steps = config.cost.model.steps;
        let worker_cfg = WorkerConfig {
            engine: config.engine,
            batching: config.batching,
            max_batch: config.max_batch,
            cpu_workers: config.cpu_workers,
        };
        let workers: Vec<WorkerState> = (0..config.workers)
            .map(|i| WorkerState::new(i, worker_cfg.clone()))
            .collect();
        let requests: Vec<SimRequest> = trace
            .requests
            .iter()
            .map(|r| SimRequest::new(r.clone(), steps))
            .collect();

        // Pre-populate the activation store with every template the
        // trace touches (templates are primed offline, §2.2). Template
        // caches cover all tokens (mask ratio 0 sizing).
        let mut store = HierarchicalStore::new(config.store);
        if config.trace.is_enabled() {
            // Disk-stream spans go on a dedicated process row past the
            // worker rows.
            store.set_trace(
                config.trace.clone(),
                Track::new(config.workers as u32 + 1, 0),
            );
        }
        if config.engine.uses_cache() {
            let bytes = config.cost.model.cache_bytes_total(0.0);
            let mut seen = std::collections::HashSet::new();
            for r in &trace.requests {
                if seen.insert(r.template_id) {
                    // Oversized templates are silently capped to the
                    // host budget; the store rejects only pathological
                    // configs.
                    let b = bytes.min(config.store.host_capacity);
                    let _ = store.insert(r.template_id, b, SimTime::ZERO, None);
                }
            }
        }

        // Pressure and admission estimates are sized to the offered
        // load's typical mask ratio.
        let overload = config.overload.clone().map(|ov| {
            let n = trace.requests.len();
            let mean_ratio = if n == 0 {
                0.2
            } else {
                trace.requests.iter().map(|r| r.mask_ratio).sum::<f64>() / n as f64
            };
            OverloadState::new(ov, &config.cost, config.max_batch, mean_ratio)
        });

        let outstanding = vec![Vec::new(); config.workers];
        let mut sim = Simulation::new();
        for (i, r) in requests.iter().enumerate() {
            sim.queue_mut()
                .schedule_at(r.spec.arrival(), Ev::Arrival(i));
        }
        for (i, e) in plan.events.iter().enumerate() {
            sim.queue_mut().schedule_at(e.at, Ev::Fault(i));
        }
        let num_workers = config.workers;
        // All policy decisions go through the shared control plane;
        // the simulator supplies virtual-time stamps explicitly.
        let plane = ControlPlane::new(
            router as &'r mut dyn Router,
            TimeSource::virtual_clock(),
            steps,
        )
        .with_overload(overload)
        .record_decisions(config.record_decisions)
        .with_trace(config.trace.clone());
        let mut world = ClusterSim {
            config,
            workers,
            requests,
            outstanding,
            store,
            plane,
            views_scratch: Vec::new(),
            plan,
            retry,
            chaos: !plan.is_trivial(),
            steps,
            parked: Vec::new(),
            slow_tokens: vec![0; num_workers],
            disk_token: 0,
            rejected: Vec::new(),
            total_retries: 0,
        };
        sim.run(&mut world);

        // Collect the report.
        let mut outcomes = Vec::new();
        let mut recorder = LatencyRecorder::new();
        let mut makespan = 0.0f64;
        for (lane, r) in world.requests.iter().enumerate() {
            if let Some(o) = r.outcome() {
                if world.config.trace.is_enabled() {
                    emit_request_spans(&world.config.trace, lane as u32, r);
                }
                makespan = makespan.max(r.completed_at.map(|t| t.as_secs_f64()).unwrap_or(0.0));
                recorder.record(LatencyBreakdown {
                    queueing: o.queueing,
                    processing: o.processing,
                    inference: o.inference,
                });
                outcomes.push(o);
            }
        }
        let served = outcomes.len();
        let throughput = if makespan > 0.0 {
            served as f64 / makespan
        } else {
            0.0
        };
        let fallback_serves = outcomes.iter().filter(|o| o.fallback).count() as u64;
        let end = sim.now();
        let store_stats = world.store.stats();
        let shed = world.rejected.iter().filter(|r| r.reason.is_shed()).count() as u64;
        let breaker_trips = world
            .plane
            .overload()
            .map(|o| o.breaker.trips())
            .unwrap_or(0);
        Ok(RunReport {
            outcomes,
            recorder,
            makespan_secs: makespan,
            throughput_rps: throughput,
            steps_per_worker: world.workers.iter().map(|w| w.steps_executed).collect(),
            utilization: world
                .workers
                .iter()
                .map(|w| {
                    let elapsed = end.as_secs_f64();
                    if elapsed > 0.0 {
                        (w.busy_secs / elapsed).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
            store_stats,
            rejected: world.rejected,
            total_retries: world.total_retries,
            fallback_serves,
            crashes_per_worker: world.workers.iter().map(|w| w.crashes).collect(),
            shed,
            breaker_trips,
            decisions: world.plane.decisions().to_vec(),
        })
    }

    /// Engine a request is served with: its degradation rung's engine
    /// under overload control, the configured engine otherwise.
    fn engine_for(&self, req: usize) -> EngineKind {
        match self.requests[req].rung {
            Some(r) => rung_engine(r),
            None => self.config.engine,
        }
    }

    /// Outstanding work across the cluster plus currently parked
    /// requests — the backlog the admission and pressure estimates see.
    fn backlog(&self) -> usize {
        self.outstanding.iter().map(Vec::len).sum::<usize>() + self.parked.len()
    }

    /// Concurrent service slots currently available (healthy or
    /// degraded workers × batch size).
    fn live_capacity(&self) -> usize {
        let available = self
            .workers
            .iter()
            .filter(|w| w.health.is_available())
            .count();
        available * self.config.max_batch.max(1)
    }

    /// Refreshes the reusable worker-view buffer in place: the outer
    /// vec and every view's `outstanding` vec keep their allocations
    /// across routing calls.
    fn fill_views(&self, views: &mut Vec<WorkerView>) {
        views.truncate(self.workers.len());
        while views.len() < self.workers.len() {
            views.push(WorkerView {
                id: 0,
                outstanding: Vec::new(),
                max_batch: 0,
                model_tokens: 0,
                health: WorkerHealth::Healthy,
            });
        }
        for (v, w) in views.iter_mut().zip(self.workers.iter()) {
            v.id = w.id;
            v.max_batch = w.config.effective_max_batch();
            v.model_tokens = self.config.cost.model.tokens();
            v.health = w.health;
            v.outstanding.clear();
            v.outstanding
                .extend(self.outstanding[w.id].iter().map(|&i| OutstandingReq {
                    mask_ratio: self.requests[i].spec.mask_ratio,
                    steps_left: self.requests[i].steps_left,
                }));
        }
    }

    fn handle_arrival(&mut self, now: SimTime, req: usize, q: &mut EventQueue<Ev>) {
        if self.requests[req].rejected.is_some() || self.requests[req].phase == Phase::Done {
            return;
        }
        if self.plane.overload_enabled() {
            let backlog = self.backlog();
            let capacity = self.live_capacity();
            // Admission runs once, at first submission; retries and
            // parked re-dispatches have already paid for their slot
            // but are re-assessed by the ladder at the pressure
            // prevailing when they re-enter.
            let already = self.requests[req].admitted;
            let id = self.requests[req].spec.id;
            match self.plane.assess(id, now, backlog, capacity, already) {
                Assessment::Shed(cause) => {
                    self.reject(req, now, RejectReason::Shed(cause));
                    return;
                }
                Assessment::Serve { rung, steps } => {
                    self.requests[req].admitted = true;
                    self.requests[req].rung = rung;
                    self.requests[req].steps_left = steps;
                }
            }
        }
        if self.chaos {
            let arrival = self.requests[req].spec.arrival();
            if self.retry.past_deadline(arrival, now) {
                self.reject(req, now, RejectReason::DeadlineExceeded);
                return;
            }
            // The transit drop coin rerolls per attempt.
            let attempt = self.requests[req].retries;
            if self.plan.drops_request(self.requests[req].spec.id, attempt) {
                self.retry_or_reject(req, now, q);
                return;
            }
        }

        let mut views = std::mem::take(&mut self.views_scratch);
        self.fill_views(&mut views);
        let id = self.requests[req].spec.id;
        let w = self.plane.route(id, &self.requests[req].spec, &views, now);
        self.views_scratch = views;
        // A misrouted request falls back to worker 0 rather than
        // wedging the run; tests assert on router behaviour directly.
        let w = if w < self.workers.len() { w } else { 0 };
        if !self.workers[w].health.is_available() {
            // Every worker is down (the health-aware wrapper never
            // picks a down worker otherwise). Park until a restart;
            // parking does not consume a retry.
            self.parked.push(req);
            return;
        }
        self.requests[req].worker = w;
        self.workers[w].total_assigned += 1;
        self.outstanding[w].push(req);

        let t0 = now + self.config.scheduler_overhead;
        let cache_ready = if self.engine_for(req).uses_cache() {
            let template = self.requests[req].spec.template_id;
            self.requests[req].cache_fetch_started_at = Some(t0);
            let stats_before = self.store.stats();
            let fetched = if let Some(breaker) = self.plane.breaker_mut() {
                // Breaker-guarded read: stateful protection replaces
                // the per-read fallback — while Open, the read
                // short-circuits to recompute with no disk I/O.
                self.store.fetch_guarded(breaker, template, t0)
            } else if self.chaos {
                // Verified read: a lost or corrupt template falls back
                // to full recompute instead of failing the request.
                self.store.fetch_verified(template, t0)
            } else {
                // Prefetch starts at arrival and overlaps queueing.
                VerifiedFetch::Intact(self.store.fetch(template, t0).unwrap_or(t0))
            };
            // Classify where the bytes came from for tracing; the
            // store already counted the read, so diffing its stats
            // keeps the span payload purely observational.
            let stats_after = self.store.stats();
            self.requests[req].cache_fetch_source =
                Some(if stats_after.host_hits > stats_before.host_hits {
                    "host"
                } else if stats_after.disk_hits > stats_before.disk_hits {
                    "disk"
                } else {
                    "none"
                });
            match fetched {
                VerifiedFetch::Intact(ready) => ready,
                VerifiedFetch::Fallback(reason) => {
                    self.requests[req].cache_fetch_source = Some("none");
                    self.requests[req].fallback = true;
                    if self.config.trace.is_enabled() {
                        self.config.trace.event_at(
                            "cache_fallback",
                            "cache",
                            Track::new(0, 0),
                            t0.as_nanos(),
                            vec![
                                ("template", Json::U64(template)),
                                ("reason", Json::Str(reason.label().into())),
                            ],
                        );
                    }
                    t0
                }
            }
        } else {
            t0
        };
        self.requests[req].cache_ready_at = cache_ready;

        let attempt = self.requests[req].retries;
        match self.config.batching {
            BatchingPolicy::ContinuousNaive => {
                // Preprocessing runs on the engine process.
                q.schedule_at(
                    t0,
                    Ev::PreQueued {
                        worker: w,
                        req,
                        attempt,
                    },
                );
            }
            _ => {
                // Preprocessing runs on the CPU pool.
                let pre = self.config.cost.cpu.preprocess;
                let (_, done) = self.workers[w].cpu_pool.acquire(t0, pre);
                self.requests[req].processing_secs += pre.as_secs_f64();
                let ready_at = done.max(cache_ready);
                q.schedule_at(
                    ready_at,
                    Ev::Ready {
                        worker: w,
                        req,
                        attempt,
                    },
                );
            }
        }
    }

    /// Explicitly rejects a request — it leaves the system with a
    /// recorded reason, never silently.
    fn reject(&mut self, req: usize, now: SimTime, reason: RejectReason) {
        if self.requests[req].rejected.is_some() {
            return;
        }
        if self.config.trace.is_enabled() {
            self.config.trace.event_at(
                "reject",
                "overload",
                Track::new(0, 0),
                now.as_nanos(),
                vec![
                    ("id", Json::U64(self.requests[req].spec.id)),
                    ("reason", Json::Str(reason.label().into())),
                ],
            );
        }
        self.scrub(req);
        self.requests[req].rejected = Some(reason);
        self.requests[req].phase = Phase::Done;
        self.rejected.push(RejectedRequest {
            id: self.requests[req].spec.id,
            reason,
            retries: self.requests[req].retries,
        });
    }

    /// Removes a request from every queue it might sit in (idempotent).
    fn scrub(&mut self, req: usize) {
        let w = self.requests[req].worker;
        if w < self.workers.len() {
            if let Some(pos) = self.outstanding[w].iter().position(|&x| x == req) {
                self.outstanding[w].swap_remove(pos);
            }
            self.workers[w].running.retain(|&x| x != req);
            self.workers[w].ready.retain(|&x| x != req);
            self.workers[w]
                .pending_cpu
                .retain(|t| !matches!(*t, CpuTask::Pre(i) | CpuTask::Post(i) if i == req));
        }
    }

    /// Gives a failed attempt another try under the retry policy, or
    /// rejects the request when the budget or deadline is exhausted.
    fn retry_or_reject(&mut self, req: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        let arrival = self.requests[req].spec.arrival();
        if self.retry.past_deadline(arrival, now) {
            self.reject(req, now, RejectReason::DeadlineExceeded);
            return;
        }
        if self.requests[req].retries >= self.retry.max_retries {
            self.reject(req, now, RejectReason::RetriesExhausted);
            return;
        }
        self.scrub(req);
        self.requests[req].retries += 1;
        self.total_retries += 1;
        self.requests[req].reset_for_retry(self.steps);
        let delay = self.retry.backoff(self.requests[req].retries);
        q.schedule_at(now + delay, Ev::Arrival(req));
    }

    fn kick(&mut self, w: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.workers[w].busy || self.workers[w].health == WorkerHealth::Down {
            return;
        }
        // Naive CB: the engine process first drains CPU tasks,
        // stalling every inflight request.
        if !self.workers[w].pending_cpu.is_empty() {
            let mut cursor = now;
            let inflight: Vec<usize> = self.workers[w].running.clone();
            while let Some(task) = self.workers[w].pending_cpu.pop_front() {
                match task {
                    CpuTask::Pre(i) => {
                        cursor += self.config.cost.cpu.preprocess;
                        self.requests[i].processing_secs +=
                            self.config.cost.cpu.preprocess.as_secs_f64();
                        let ready_at = cursor.max(self.requests[i].cache_ready_at);
                        let attempt = self.requests[i].retries;
                        q.schedule_at(
                            ready_at,
                            Ev::Ready {
                                worker: w,
                                req: i,
                                attempt,
                            },
                        );
                    }
                    CpuTask::Post(i) => {
                        cursor += self.config.cost.cpu.postprocess;
                        self.requests[i].processing_secs +=
                            self.config.cost.cpu.postprocess.as_secs_f64();
                        let attempt = self.requests[i].retries;
                        q.schedule_at(
                            cursor,
                            Ev::PostDone {
                                worker: w,
                                req: i,
                                attempt,
                            },
                        );
                    }
                }
                for &r in &inflight {
                    self.requests[r].interruptions += 1;
                }
            }
            if cursor > now {
                self.workers[w].busy = true;
                let epoch = self.workers[w].epoch;
                q.schedule_at(cursor, Ev::CpuDone { worker: w, epoch });
                return;
            }
        }

        // Admission.
        let max_batch = self.workers[w].config.effective_max_batch();
        let continuous = self.config.batching.is_continuous();
        let can_admit = if continuous {
            self.workers[w].running.len() < max_batch
        } else {
            self.workers[w].running.is_empty()
        };
        // Under overload control, work whose SLO deadline elapsed in
        // the queue is shed at batch join instead of burning GPU time
        // on an answer nobody is waiting for.
        let slo = self.plane.slo_deadline();
        if can_admit {
            while self.workers[w].running.len() < max_batch {
                let Some(i) = self.workers[w].ready.pop_front() else {
                    break;
                };
                if let Some(deadline) = slo {
                    let arrival = self.requests[i].spec.arrival();
                    if now.since(arrival) > deadline {
                        self.reject(i, now, RejectReason::DeadlineExceeded);
                        continue;
                    }
                }
                self.requests[i].phase = Phase::Running;
                if self.requests[i].batch_joined_at.is_none() {
                    self.requests[i].batch_joined_at = Some(now);
                }
                self.workers[w].running.push(i);
            }
        }
        if self.workers[w].running.is_empty() {
            return;
        }

        // Execute one denoising step for the batch. A fallback request
        // lost its cached activations and recomputes all tokens.
        let item_for = |r: &SimRequest| BatchItem {
            mask_ratio: if r.fallback { 1.0 } else { r.spec.mask_ratio },
        };
        let mut lat = if self.plane.overload_enabled() {
            // A mixed-rung batch executes per-rung groups back to
            // back: heterogeneous engines cannot fuse into one kernel
            // launch. With a single rung this degenerates to the plain
            // whole-batch cost.
            let mut groups: Vec<(Option<Rung>, Vec<BatchItem>)> = Vec::new();
            for &i in &self.workers[w].running {
                let key = self.requests[i].rung;
                let item = item_for(&self.requests[i]);
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, items)) => items.push(item),
                    None => groups.push((key, vec![item])),
                }
            }
            let mut lat = SimDuration::ZERO;
            for (key, items) in &groups {
                let engine = key.map(rung_engine).unwrap_or(self.config.engine);
                lat += engine.step_latency(&self.config.cost, items);
            }
            lat
        } else {
            let items: Vec<BatchItem> = self.workers[w]
                .running
                .iter()
                .map(|&i| item_for(&self.requests[i]))
                .collect();
            self.config.engine.step_latency(&self.config.cost, &items)
        };
        if continuous {
            lat += self.config.cost.cpu.batch_overhead;
        }
        if self.workers[w].slow_factor > 1.0 {
            lat = lat.mul_f64(self.workers[w].slow_factor);
        }
        self.workers[w].busy = true;
        self.workers[w].steps_executed += 1;
        self.workers[w].busy_secs += lat.as_secs_f64();
        let epoch = self.workers[w].epoch;
        if self.config.trace.is_enabled() {
            self.config.trace.span_at(
                "step",
                "gpu",
                Track::new(w as u32 + 1, 0),
                now.as_nanos(),
                (now + lat).as_nanos(),
                0,
                vec![("batch", Json::U64(self.workers[w].running.len() as u64))],
            );
        }
        q.schedule_at(now + lat, Ev::StepDone { worker: w, epoch });
    }

    fn handle_step_done(&mut self, now: SimTime, w: usize, q: &mut EventQueue<Ev>) {
        self.workers[w].busy = false;
        let mut finished = Vec::new();
        let running = std::mem::take(&mut self.workers[w].running);
        for i in running {
            self.requests[i].steps_left -= 1;
            if self.requests[i].steps_left == 0 {
                finished.push(i);
            } else {
                self.workers[w].running.push(i);
            }
        }
        for i in finished {
            self.requests[i].denoise_done_at = Some(now);
            self.requests[i].phase = Phase::Post;
            // Denoising load is gone: drop from the router's signal.
            if let Some(pos) = self.outstanding[w].iter().position(|&x| x == i) {
                self.outstanding[w].swap_remove(pos);
            }
            // A fallback recompute regenerated the template's
            // activations; re-insert so later requests hit again.
            if self.requests[i].fallback && self.engine_for(i).uses_cache() {
                let bytes = self
                    .config
                    .cost
                    .model
                    .cache_bytes_total(0.0)
                    .min(self.config.store.host_capacity);
                let _ = self
                    .store
                    .insert(self.requests[i].spec.template_id, bytes, now, None);
            }
            let attempt = self.requests[i].retries;
            match self.config.batching {
                BatchingPolicy::ContinuousNaive => {
                    self.workers[w].pending_cpu.push_back(CpuTask::Post(i));
                }
                BatchingPolicy::ContinuousDisaggregated => {
                    let start = now + self.config.cost.cpu.disagg_handoff;
                    let post = self.config.cost.cpu.postprocess;
                    let (_, done) = self.workers[w].cpu_pool.acquire(start, post);
                    self.requests[i].processing_secs +=
                        post.as_secs_f64() + self.config.cost.cpu.disagg_handoff.as_secs_f64();
                    q.schedule_at(
                        done,
                        Ev::PostDone {
                            worker: w,
                            req: i,
                            attempt,
                        },
                    );
                }
                BatchingPolicy::Static => {
                    let post = self.config.cost.cpu.postprocess;
                    let (_, done) = self.workers[w].cpu_pool.acquire(now, post);
                    self.requests[i].processing_secs += post.as_secs_f64();
                    q.schedule_at(
                        done,
                        Ev::PostDone {
                            worker: w,
                            req: i,
                            attempt,
                        },
                    );
                }
            }
        }
        self.kick(w, now, q);
    }

    /// Applies the plan's fault at index `idx`.
    fn handle_fault(&mut self, now: SimTime, idx: usize, q: &mut EventQueue<Ev>) {
        let event = self.plan.events[idx];
        match event.kind {
            FaultKind::WorkerCrash { worker, downtime } => {
                self.crash_worker(worker, downtime, now, q);
            }
            FaultKind::WorkerSlowdown {
                worker,
                factor,
                duration,
            } => {
                if self.workers[worker].health == WorkerHealth::Down {
                    return;
                }
                self.workers[worker].health = WorkerHealth::Degraded;
                self.workers[worker].slow_factor = factor.max(1.0);
                self.slow_tokens[worker] += 1;
                let token = self.slow_tokens[worker];
                q.schedule_at(now + duration, Ev::SlowdownEnd { worker, token });
            }
            FaultKind::DiskDegrade { factor, duration } => {
                self.store.set_disk_degradation(factor);
                self.disk_token += 1;
                let token = self.disk_token;
                q.schedule_at(now + duration, Ev::DiskRestore { token });
            }
            FaultKind::CacheLoss { template_id } => {
                self.store.invalidate(template_id);
            }
            FaultKind::CacheCorrupt { template_id } => {
                self.store.corrupt(template_id);
            }
        }
    }

    /// Kills a worker: its in-flight batch, queues and pending CPU work
    /// are lost; every affected request is retried or rejected.
    fn crash_worker(
        &mut self,
        w: usize,
        downtime: SimDuration,
        now: SimTime,
        q: &mut EventQueue<Ev>,
    ) {
        if self.workers[w].health == WorkerHealth::Down {
            return;
        }
        self.workers[w].health = WorkerHealth::Down;
        self.workers[w].epoch += 1;
        self.workers[w].crashes += 1;
        self.workers[w].busy = false;
        self.workers[w].slow_factor = 1.0;
        self.slow_tokens[w] += 1;

        // Victims: everything routed here and not yet done denoising,
        // plus naive-CB postprocessing queued on the dead engine
        // process. Disaggregated/static post runs on the CPU pool and
        // survives the GPU crash.
        let mut victims = std::mem::take(&mut self.outstanding[w]);
        for task in self.workers[w].pending_cpu.iter() {
            if let CpuTask::Post(i) = *task {
                victims.push(i);
            }
        }
        victims.sort_unstable();
        victims.dedup();
        self.workers[w].running.clear();
        self.workers[w].ready.clear();
        self.workers[w].pending_cpu.clear();
        for i in victims {
            if self.requests[i].phase == Phase::Done || self.requests[i].rejected.is_some() {
                continue;
            }
            self.retry_or_reject(i, now, q);
        }
        q.schedule_at(now + downtime, Ev::WorkerRestart { worker: w });
    }

    /// Brings a crashed worker back (cold) and re-dispatches parked
    /// requests.
    fn handle_restart(&mut self, now: SimTime, w: usize, q: &mut EventQueue<Ev>) {
        self.workers[w].health = WorkerHealth::Healthy;
        self.workers[w].slow_factor = 1.0;
        self.workers[w].busy = false;
        for req in std::mem::take(&mut self.parked) {
            q.schedule_at(now, Ev::Arrival(req));
        }
    }
}

impl<'r> EventHandler<Ev> for ClusterSim<'r> {
    fn handle(&mut self, now: SimTime, event: Ev, q: &mut EventQueue<Ev>) {
        // An event carrying a request's attempt number is stale when
        // the request has since been requeued (crash/drop) — the new
        // attempt owns the request now.
        let stale = |requests: &[SimRequest], req: usize, attempt: u32| {
            requests[req].retries != attempt || requests[req].rejected.is_some()
        };
        match event {
            Ev::Arrival(i) => self.handle_arrival(now, i, q),
            Ev::PreQueued {
                worker,
                req,
                attempt,
            } => {
                if stale(&self.requests, req, attempt) {
                    return;
                }
                if self.workers[worker].health == WorkerHealth::Down {
                    self.retry_or_reject(req, now, q);
                    return;
                }
                self.workers[worker]
                    .pending_cpu
                    .push_back(CpuTask::Pre(req));
                self.kick(worker, now, q);
            }
            Ev::Ready {
                worker,
                req,
                attempt,
            } => {
                if stale(&self.requests, req, attempt) {
                    return;
                }
                if self.workers[worker].health == WorkerHealth::Down {
                    self.retry_or_reject(req, now, q);
                    return;
                }
                self.requests[req].phase = Phase::Ready;
                self.workers[worker].ready.push_back(req);
                self.kick(worker, now, q);
            }
            Ev::StepDone { worker, epoch } => {
                if self.workers[worker].epoch != epoch {
                    return; // Completion from a dead incarnation.
                }
                self.handle_step_done(now, worker, q);
            }
            Ev::CpuDone { worker, epoch } => {
                if self.workers[worker].epoch != epoch {
                    return;
                }
                self.workers[worker].busy = false;
                self.kick(worker, now, q);
            }
            Ev::PostDone {
                worker: _,
                req,
                attempt,
            } => {
                if stale(&self.requests, req, attempt) {
                    return;
                }
                self.requests[req].phase = Phase::Done;
                self.requests[req].completed_at = Some(now);
            }
            Ev::Fault(idx) => self.handle_fault(now, idx, q),
            Ev::WorkerRestart { worker } => self.handle_restart(now, worker, q),
            Ev::SlowdownEnd { worker, token } => {
                if self.slow_tokens[worker] == token
                    && self.workers[worker].health == WorkerHealth::Degraded
                {
                    self.workers[worker].health = WorkerHealth::Healthy;
                    self.workers[worker].slow_factor = 1.0;
                }
            }
            Ev::DiskRestore { token } => {
                if self.disk_token == token {
                    self.store.set_disk_degradation(1.0);
                }
            }
        }
    }
}

/// Emits the span tree of one completed request from its recorded
/// virtual timestamps: a `request` root on the scheduler process (one
/// lane per request) with `queue` / `cache_fetch` / `denoise` /
/// `postprocess` children. Runs after the simulation, so emission
/// order — and therefore the drained trace — is deterministic.
fn emit_request_spans(sink: &TraceSink, lane: u32, r: &SimRequest) {
    let (Some(joined), Some(denoised), Some(completed)) =
        (r.batch_joined_at, r.denoise_done_at, r.completed_at)
    else {
        return;
    };
    let arrival = r.spec.arrival();
    let t = Track::new(0, lane + 1);
    let mut args = vec![
        ("id", Json::U64(r.spec.id)),
        ("worker", Json::U64(r.worker as u64)),
        ("mask_ratio", Json::F64(r.spec.mask_ratio)),
        ("retries", Json::U64(u64::from(r.retries))),
        ("fallback", Json::Bool(r.fallback)),
    ];
    if let Some(rung) = r.rung {
        args.push(("rung", Json::Str(rung.label().into())));
    }
    let root = sink.span_at(
        "request",
        "request",
        t,
        arrival.as_nanos(),
        completed.as_nanos(),
        0,
        args,
    );
    let queue_args = match r.rung {
        Some(rung) => vec![("rung", Json::Str(rung.label().into()))],
        None => Vec::new(),
    };
    sink.span_at(
        "queue",
        "stage",
        t,
        arrival.as_nanos(),
        joined.as_nanos(),
        root,
        queue_args,
    );
    // Zero-duration spans are kept: a host hit costs ~nothing, and
    // that is precisely what per-placement fetch attribution measures.
    if let Some(fetch_start) = r.cache_fetch_started_at {
        if r.cache_ready_at >= fetch_start {
            // `replica_source` / `hit` / `policy` let trace analysis
            // attribute fetch cost per placement decision; the
            // single-cluster store has no replica placement, so the
            // policy is always "local" here (the fleet plane emits
            // "ring-order" / "popularity").
            let source = r.cache_fetch_source.unwrap_or("none");
            sink.span_at(
                "cache_fetch",
                "cache",
                t,
                fetch_start.as_nanos(),
                r.cache_ready_at.as_nanos(),
                root,
                vec![
                    ("template", Json::U64(r.spec.template_id)),
                    ("replica_source", Json::Str(source.into())),
                    ("hit", Json::Bool(source != "none")),
                    ("policy", Json::Str("local".into())),
                ],
            );
        }
    }
    sink.span_at(
        "denoise",
        "stage",
        t,
        joined.as_nanos(),
        denoised.as_nanos(),
        root,
        Vec::new(),
    );
    sink.span_at(
        "postprocess",
        "stage",
        t,
        denoised.as_nanos(),
        completed.as_nanos(),
        root,
        Vec::new(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuSpec;
    use crate::router::{LeastLoadedRouter, RoundRobinRouter};
    use fps_diffusion::ModelConfig;
    use fps_workload::{RatioDistribution, TraceConfig};

    fn small_trace(rps: f64, secs: f64, seed: u64) -> Trace {
        Trace::generate(&TraceConfig {
            rps,
            arrivals: fps_workload::trace::ArrivalProcess::Poisson,
            duration_secs: secs,
            ratio_dist: RatioDistribution::ProductionTrace,
            num_templates: 4,
            zipf_s: 1.0,
            seed,
        })
    }

    fn base_config(engine: EngineKind, batching: BatchingPolicy, workers: usize) -> ClusterConfig {
        ClusterConfig {
            cost: CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl()),
            engine,
            batching,
            workers,
            max_batch: 8,
            cpu_workers: 4,
            store: StoreConfig::production_like(),
            scheduler_overhead: SimDuration::from_micros(600),
            overload: None,
            record_decisions: false,
            trace: TraceSink::disabled(),
        }
    }

    #[test]
    fn all_requests_complete() {
        let trace = small_trace(0.5, 60.0, 1);
        let n = trace.len();
        assert!(n > 10);
        for (engine, batching) in [
            (EngineKind::Diffusers, BatchingPolicy::Static),
            (
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
            ),
            (
                EngineKind::TeaCache {
                    compute_fraction: 0.6,
                },
                BatchingPolicy::Static,
            ),
            (EngineKind::FisEdit, BatchingPolicy::Static),
            (
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousNaive,
            ),
            (EngineKind::FlashPs { kv: false }, BatchingPolicy::Static),
        ] {
            let mut router = RoundRobinRouter::default();
            let report =
                ClusterSim::run(base_config(engine, batching, 2), &trace, &mut router).unwrap();
            assert_eq!(
                report.outcomes.len(),
                n,
                "{}/{}: all requests must complete",
                engine.label(),
                batching.label()
            );
            assert!(report.mean_latency() > 0.0);
            assert!(report.throughput_rps > 0.0);
        }
    }

    #[test]
    fn flashps_beats_diffusers_end_to_end() {
        // The headline Fig. 12 ordering at moderate load.
        let trace = small_trace(1.0, 120.0, 2);
        let mut r1 = LeastLoadedRouter;
        let flash = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                4,
            ),
            &trace,
            &mut r1,
        )
        .unwrap();
        let mut r2 = LeastLoadedRouter;
        let diff = ClusterSim::run(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 4),
            &trace,
            &mut r2,
        )
        .unwrap();
        assert!(
            flash.mean_latency() < diff.mean_latency() / 2.0,
            "flashps {} vs diffusers {}",
            flash.mean_latency(),
            diff.mean_latency()
        );
        assert!(flash.mean_queueing() < diff.mean_queueing());
    }

    #[test]
    fn continuous_batching_cuts_queueing() {
        // Fig. 4-middle: same engine, static vs disaggregated CB.
        let trace = small_trace(1.5, 120.0, 3);
        let mut r1 = LeastLoadedRouter;
        let cb = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            ),
            &trace,
            &mut r1,
        )
        .unwrap();
        let mut r2 = LeastLoadedRouter;
        let st = ClusterSim::run(
            base_config(EngineKind::FlashPs { kv: false }, BatchingPolicy::Static, 2),
            &trace,
            &mut r2,
        )
        .unwrap();
        assert!(
            cb.mean_queueing() < st.mean_queueing(),
            "cb queueing {} vs static {}",
            cb.mean_queueing(),
            st.mean_queueing()
        );
    }

    #[test]
    fn naive_cb_interrupts_requests() {
        // §6.4: pre/post on the engine process interrupts inflight
        // requests several times and inflates tail latency.
        let trace = small_trace(1.0, 100.0, 4);
        let mut r1 = LeastLoadedRouter;
        let naive = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousNaive,
                1,
            ),
            &trace,
            &mut r1,
        )
        .unwrap();
        let mut r2 = LeastLoadedRouter;
        let disagg = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                1,
            ),
            &trace,
            &mut r2,
        )
        .unwrap();
        let max_interruptions = naive
            .outcomes
            .iter()
            .map(|o| o.interruptions)
            .max()
            .unwrap_or(0);
        assert!(
            max_interruptions >= 2,
            "expected interruptions, got max {max_interruptions}"
        );
        assert!(disagg.outcomes.iter().all(|o| o.interruptions == 0));
        assert!(
            naive.p95_latency() > disagg.p95_latency(),
            "naive P95 {} vs disagg {}",
            naive.p95_latency(),
            disagg.p95_latency()
        );
    }

    #[test]
    fn zero_workers_rejected() {
        let trace = small_trace(1.0, 5.0, 5);
        let mut router = RoundRobinRouter::default();
        assert!(ClusterSim::run(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 0),
            &trace,
            &mut router
        )
        .is_err());
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace { requests: vec![] };
        let mut router = RoundRobinRouter::default();
        let report = ClusterSim::run(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 2),
            &trace,
            &mut router,
        )
        .unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.throughput_rps, 0.0);
    }

    #[test]
    fn interruption_counts_match_paper_scale() {
        // The paper reports median ≈ 6, P95 ≈ 8 interruptions per
        // request under naive CB at RPS 0.5 on one worker. Expect the
        // same order of magnitude.
        let trace = small_trace(0.5, 300.0, 6);
        let mut router = LeastLoadedRouter;
        let naive = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousNaive,
                1,
            ),
            &trace,
            &mut router,
        )
        .unwrap();
        let mut ints: Vec<f64> = naive
            .outcomes
            .iter()
            .map(|o| o.interruptions as f64)
            .collect();
        ints.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ints[ints.len() / 2];
        assert!(
            (1.0..=20.0).contains(&median),
            "median interruptions {median} outside plausible range"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        #[test]
        fn prop_simulation_invariants(
            rps in 0.2f64..1.2,
            seed in 0u64..1000,
            workers in 1usize..4,
            batching_idx in 0usize..3,
        ) {
            let batching = [
                BatchingPolicy::Static,
                BatchingPolicy::ContinuousNaive,
                BatchingPolicy::ContinuousDisaggregated,
            ][batching_idx];
            let trace = small_trace(rps, 40.0, seed);
            let n = trace.len();
            let mut router = RoundRobinRouter::default();
            let report = ClusterSim::run(
                base_config(EngineKind::FlashPs { kv: false }, batching, workers),
                &trace,
                &mut router,
            )
            .expect("run");
            // Conservation: every arrival completes exactly once.
            proptest::prop_assert_eq!(report.outcomes.len(), n);
            let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), n);
            // Every latency component is non-negative and finite; the
            // total is at least the inference time.
            for o in &report.outcomes {
                proptest::prop_assert!(o.queueing >= 0.0 && o.queueing.is_finite());
                proptest::prop_assert!(o.inference > 0.0 && o.inference.is_finite());
                proptest::prop_assert!(o.total + 1e-9 >= o.queueing + o.inference);
                proptest::prop_assert!(o.worker < workers);
                // Only naive CB interrupts requests.
                if batching != BatchingPolicy::ContinuousNaive {
                    proptest::prop_assert_eq!(o.interruptions, 0);
                }
            }
            // Step conservation: workers executed between the
            // perfectly-batched lower bound and the one-request-per-
            // step upper bound.
            if n > 0 {
                let steps: u64 = report.steps_per_worker.iter().sum();
                let model_steps = 50u64; // paper_sdxl schedule
                let max_batch = 8u64;
                proptest::prop_assert!(steps >= n as u64 * model_steps / max_batch);
                proptest::prop_assert!(steps <= n as u64 * model_steps);
            }
            // Utilization is a fraction.
            proptest::prop_assert!(report.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn worker_crash_requeues_and_everything_completes() {
        use fps_chaos::{FaultEvent, FaultKind};
        let trace = small_trace(1.0, 60.0, 11);
        let n = trace.len();
        let plan = FaultPlan::new(
            9,
            0.0,
            vec![FaultEvent {
                at: SimTime::from_nanos(10_000_000_000),
                kind: FaultKind::WorkerCrash {
                    worker: 0,
                    downtime: SimDuration::from_secs_f64(5.0),
                },
            }],
        );
        let retry = RetryPolicy::default();
        let mut router = RoundRobinRouter::default();
        // The slow engine guarantees worker 0 has work in flight when
        // the crash lands.
        let report = ClusterSim::run_with_faults(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 2),
            &trace,
            &mut router,
            &plan,
            &retry,
        )
        .unwrap();
        assert_eq!(report.crashes_per_worker, vec![1, 0]);
        assert_eq!(
            report.outcomes.len() + report.rejected.len(),
            n,
            "no request may vanish"
        );
        assert!(
            report.total_retries > 0,
            "the crashed worker had in-flight requests"
        );
        assert!(report.outcomes.iter().any(|o| o.retries > 0));
    }

    #[test]
    fn cache_loss_triggers_fallback_not_failure() {
        use fps_chaos::{FaultEvent, FaultKind};
        let trace = small_trace(0.8, 60.0, 12);
        let n = trace.len();
        // Lose and corrupt every template early in the run.
        let mut events = Vec::new();
        for t in 0..4 {
            events.push(FaultEvent {
                at: SimTime::from_nanos(1_000_000_000),
                kind: FaultKind::CacheLoss { template_id: t },
            });
        }
        let plan = FaultPlan::new(3, 0.0, events);
        let retry = RetryPolicy::default();
        let mut router = RoundRobinRouter::default();
        let report = ClusterSim::run_with_faults(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            ),
            &trace,
            &mut router,
            &plan,
            &retry,
        )
        .unwrap();
        assert_eq!(report.outcomes.len(), n, "fallback serves, never fails");
        assert!(report.fallback_serves > 0, "lost templates force recompute");
        assert!(
            report.fallback_serves < n as u64,
            "recompute re-populates the cache, so later requests hit"
        );
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn slowdown_stretches_latency_deterministically() {
        use fps_chaos::{FaultEvent, FaultKind};
        let trace = small_trace(0.5, 40.0, 13);
        let cfg = || {
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                1,
            )
        };
        let slow = FaultPlan::new(
            1,
            0.0,
            vec![FaultEvent {
                at: SimTime::ZERO,
                kind: FaultKind::WorkerSlowdown {
                    worker: 0,
                    factor: 3.0,
                    duration: SimDuration::from_secs_f64(40.0),
                },
            }],
        );
        let retry = RetryPolicy::default();
        let mut r1 = RoundRobinRouter::default();
        let degraded = ClusterSim::run_with_faults(cfg(), &trace, &mut r1, &slow, &retry).unwrap();
        let mut r2 = RoundRobinRouter::default();
        let nominal = ClusterSim::run(cfg(), &trace, &mut r2).unwrap();
        assert!(
            degraded.mean_latency() > nominal.mean_latency() * 1.5,
            "3x slowdown must show: {} vs {}",
            degraded.mean_latency(),
            nominal.mean_latency()
        );
        // Determinism: replaying the same plan reproduces the report.
        let mut r3 = RoundRobinRouter::default();
        let replay = ClusterSim::run_with_faults(cfg(), &trace, &mut r3, &slow, &retry).unwrap();
        assert_eq!(degraded.outcomes, replay.outcomes);
    }

    #[test]
    fn trivial_plan_matches_plain_run_exactly() {
        let trace = small_trace(1.0, 60.0, 14);
        let cfg = || {
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            )
        };
        let mut r1 = LeastLoadedRouter;
        let plain = ClusterSim::run(cfg(), &trace, &mut r1).unwrap();
        let plan = FaultPlan::none();
        let retry = RetryPolicy::default();
        let mut r2 = LeastLoadedRouter;
        let chaos = ClusterSim::run_with_faults(cfg(), &trace, &mut r2, &plan, &retry).unwrap();
        assert_eq!(plain.outcomes, chaos.outcomes);
        assert_eq!(plain.steps_per_worker, chaos.steps_per_worker);
    }

    #[test]
    fn plan_validation_is_enforced() {
        use fps_chaos::{FaultEvent, FaultKind};
        let trace = small_trace(0.5, 10.0, 15);
        let plan = FaultPlan::new(
            0,
            0.0,
            vec![FaultEvent {
                at: SimTime::ZERO,
                kind: FaultKind::WorkerCrash {
                    worker: 5,
                    downtime: SimDuration::from_secs_f64(1.0),
                },
            }],
        );
        let retry = RetryPolicy::default();
        let mut router = RoundRobinRouter::default();
        assert!(ClusterSim::run_with_faults(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 2),
            &trace,
            &mut router,
            &plan,
            &retry,
        )
        .is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        // The resilience contract: under ANY seeded fault plan, as
        // long as one worker stays healthy often enough for retries,
        // every request either completes or is explicitly rejected.
        // Nothing is silently dropped.
        #[test]
        fn prop_no_silent_drops_under_chaos(
            plan_seed in 0u64..10_000,
            trace_seed in 0u64..1000,
            workers in 1usize..4,
            batching_idx in 0usize..3,
        ) {
            let batching = [
                BatchingPolicy::Static,
                BatchingPolicy::ContinuousNaive,
                BatchingPolicy::ContinuousDisaggregated,
            ][batching_idx];
            let trace = small_trace(0.8, 30.0, trace_seed);
            let n = trace.len();
            let horizon = SimTime::from_nanos(60_000_000_000);
            let plan = FaultPlan::random(plan_seed, horizon, workers, 4);
            let retry = RetryPolicy::default();
            let mut router = RoundRobinRouter::default();
            let report = ClusterSim::run_with_faults(
                base_config(EngineKind::FlashPs { kv: false }, batching, workers),
                &trace,
                &mut router,
                &plan,
                &retry,
            )
            .expect("run");
            // Conservation: served + rejected covers every arrival,
            // with no duplicates across the two sets.
            proptest::prop_assert_eq!(report.outcomes.len() + report.rejected.len(), n);
            let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
            ids.extend(report.rejected.iter().map(|r| r.id));
            ids.sort_unstable();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), n);
            for o in &report.outcomes {
                proptest::prop_assert!(o.total.is_finite() && o.total >= 0.0);
                proptest::prop_assert!(o.retries <= retry.max_retries);
                proptest::prop_assert!(o.worker < workers);
            }
            for r in &report.rejected {
                proptest::prop_assert!(r.retries <= retry.max_retries);
            }
            // Determinism: the same plan replays identically.
            let mut router2 = RoundRobinRouter::default();
            let replay = ClusterSim::run_with_faults(
                base_config(EngineKind::FlashPs { kv: false }, batching, workers),
                &trace,
                &mut router2,
                &plan,
                &retry,
            )
            .expect("replay");
            proptest::prop_assert_eq!(&report.outcomes, &replay.outcomes);
            proptest::prop_assert_eq!(&report.rejected, &replay.rejected);
        }
    }

    fn bursty_trace(rps: f64, secs: f64, seed: u64) -> Trace {
        Trace::generate(&TraceConfig {
            rps,
            arrivals: fps_workload::trace::ArrivalProcess::bursty_default(),
            duration_secs: secs,
            ratio_dist: RatioDistribution::VitonHd,
            num_templates: 4,
            zipf_s: 1.0,
            seed,
        })
    }

    fn overload_config(workers: usize, deadline_secs: f64) -> ClusterConfig {
        ClusterConfig::with_overload_control(
            CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl()),
            workers,
            0.35,
            SimDuration::from_secs_f64(deadline_secs),
        )
    }

    #[test]
    fn overload_control_sheds_under_saturation_and_conserves() {
        // ~2 workers sustain ≈ 2 rps of VITON-HD edits; offer 5 rps.
        let trace = bursty_trace(5.0, 120.0, 24);
        let n = trace.len();
        let mut router = LeastLoadedRouter;
        let report = ClusterSim::run(overload_config(2, 30.0), &trace, &mut router).unwrap();
        assert!(report.shed > 0, "saturation must shed at admission");
        assert_eq!(
            report.outcomes.len() + report.rejected.len(),
            n,
            "shed requests are rejected explicitly, never lost"
        );
        // Every shed reason is a Shed variant, counted apart from
        // in-queue deadline rejections.
        let shed_listed = report
            .rejected
            .iter()
            .filter(|r| r.reason.is_shed())
            .count() as u64;
        assert_eq!(shed_listed, report.shed);
        // The ladder engaged: some work served below the premium rung.
        assert!(
            report
                .outcomes
                .iter()
                .any(|o| o.rung.is_some() && o.rung != Some(Rung::FlashPsKv)),
            "saturation must push the ladder down"
        );
        // Served-at-deadline accounting is consistent.
        assert!(report.served_within(30.0) <= report.outcomes.len() as u64);
        assert!(report.goodput_at_deadline(30.0) <= report.goodput_rps() + 1e-12);

        // Determinism: same trace, same config, same report.
        let mut router2 = LeastLoadedRouter;
        let replay = ClusterSim::run(overload_config(2, 30.0), &trace, &mut router2).unwrap();
        assert_eq!(report.outcomes, replay.outcomes);
        assert_eq!(report.rejected, replay.rejected);
    }

    #[test]
    fn overload_control_off_stays_byte_identical() {
        // The overload field is None by default: flashps_default runs
        // must be unchanged by this feature existing.
        let trace = small_trace(1.0, 60.0, 22);
        let cfg = || {
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            )
        };
        let mut r1 = LeastLoadedRouter;
        let a = ClusterSim::run(cfg(), &trace, &mut r1).unwrap();
        let mut r2 = LeastLoadedRouter;
        let b = ClusterSim::run(cfg(), &trace, &mut r2).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.shed, 0);
        assert_eq!(a.breaker_trips, 0);
        assert!(a.outcomes.iter().all(|o| o.rung.is_none()));
    }

    #[test]
    fn ladder_recovers_after_burst_passes() {
        // A short saturating burst followed by a long quiet tail: late
        // arrivals must be served at the premium rung again.
        let mut requests = bursty_trace(6.0, 30.0, 23).requests;
        let quiet = small_trace(0.2, 120.0, 24);
        let offset = 90_000_000_000u64; // quiet phase starts at 90 s
        for (k, r) in quiet.requests.iter().enumerate() {
            let mut r = r.clone();
            r.id = 10_000 + k as u64;
            r.arrival_ns += offset;
            requests.push(r);
        }
        let trace = Trace { requests };
        let mut router = LeastLoadedRouter;
        let report = ClusterSim::run(overload_config(2, 30.0), &trace, &mut router).unwrap();
        let late_rungs: Vec<Option<Rung>> = report
            .outcomes
            .iter()
            .filter(|o| o.id >= 10_000)
            .map(|o| o.rung)
            .collect();
        assert!(!late_rungs.is_empty());
        assert!(
            late_rungs
                .iter()
                .rev()
                .take(5)
                .all(|r| *r == Some(Rung::FlashPsKv)),
            "hysteresis must let the ladder climb back after the burst: {late_rungs:?}"
        );
    }

    #[test]
    fn utilization_and_steps_are_reported() {
        let trace = small_trace(1.0, 60.0, 7);
        let mut router = RoundRobinRouter::default();
        let report = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            ),
            &trace,
            &mut router,
        )
        .unwrap();
        assert_eq!(report.steps_per_worker.len(), 2);
        assert!(report.steps_per_worker.iter().all(|&s| s > 0));
        // The FlashPS engine touched the activation store.
        assert!(report.store_stats.host_hits > 0);
        assert!(report.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
    }

    #[test]
    fn wall_clock_sink_is_rejected() {
        let trace = small_trace(0.5, 30.0, 3);
        let mut cfg = base_config(
            EngineKind::FlashPs { kv: false },
            BatchingPolicy::ContinuousDisaggregated,
            2,
        );
        cfg.trace = TraceSink::recording(Clock::Wall);
        let mut router = RoundRobinRouter::default();
        let err = ClusterSim::run(cfg, &trace, &mut router).unwrap_err();
        assert!(matches!(err, crate::ServingError::InvalidConfig { .. }));
    }

    #[test]
    fn tracing_emits_request_and_step_spans_without_changing_outcomes() {
        let trace = small_trace(0.5, 60.0, 5);
        let cfg = |sink: TraceSink| {
            let mut c = base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            );
            c.trace = sink;
            c
        };
        let mut router = RoundRobinRouter::default();
        let quiet = ClusterSim::run(cfg(TraceSink::disabled()), &trace, &mut router).unwrap();
        let sink = TraceSink::recording(Clock::Virtual);
        let mut router = RoundRobinRouter::default();
        let traced = ClusterSim::run(cfg(sink.clone()), &trace, &mut router).unwrap();
        assert_eq!(
            quiet.outcomes, traced.outcomes,
            "tracing must be purely passive"
        );
        let t = sink.drain().unwrap();
        assert_eq!(t.clock, Clock::Virtual);
        assert_eq!(t.spans_named("request").count(), traced.outcomes.len());
        assert!(t.spans_named("queue").count() > 0);
        assert!(t.spans_named("denoise").count() > 0);
        assert!(t.spans_named("postprocess").count() > 0);
        assert!(t.spans_named("step").count() > 0, "per-step gpu spans");
        // Fetch spans attribute their cost: where the bytes came from,
        // whether the read hit, and under which placement policy.
        let mut fetches = 0;
        for s in t.spans_named("cache_fetch") {
            fetches += 1;
            let source = match s.arg("replica_source") {
                Some(Json::Str(v)) => v.as_str(),
                other => panic!("replica_source missing or not a string: {other:?}"),
            };
            assert!(matches!(source, "host" | "disk" | "none"));
            assert_eq!(
                s.arg("hit"),
                Some(&Json::Bool(source != "none")),
                "hit arg must agree with the fetch source"
            );
            assert_eq!(s.arg("policy"), Some(&Json::Str("local".into())));
        }
        assert!(fetches > 0, "no cache_fetch spans recorded");
        // Every request span's children nest inside it.
        for root in t.spans_named("request") {
            for child in t.spans.iter().filter(|s| s.parent == root.id) {
                assert!(child.start_ns >= root.start_ns && child.end_ns <= root.end_ns);
            }
        }
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn traced_run_is_deterministic_across_reruns() {
        let trace = small_trace(0.8, 45.0, 11);
        let run = || {
            let sink = TraceSink::recording(Clock::Virtual);
            let mut cfg = base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            );
            cfg.trace = sink.clone();
            let mut router = LeastLoadedRouter;
            ClusterSim::run(cfg, &trace, &mut router).unwrap();
            fps_trace::chrome_trace_string(&sink.drain().unwrap())
        };
        assert_eq!(run(), run(), "chrome export must be byte-identical");
    }
}
