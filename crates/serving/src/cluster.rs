//! The discrete-event cluster simulator.
//!
//! Drives a request trace through a set of workers under a routing
//! policy, an engine, and a batching policy, and records per-request
//! latency breakdowns. This is the machinery behind the end-to-end
//! serving experiments (Fig. 12), the batching comparison (Fig. 16-
//! left, Fig. 4-middle), and the load-balancing comparison (Fig. 16-
//! right, Fig. 4-right).

use fps_maskcache::store::{HierarchicalStore, StoreConfig};
use fps_metrics::{LatencyBreakdown, LatencyRecorder};
use fps_simtime::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use fps_workload::Trace;

use crate::cost::{BatchItem, CostModel};
use crate::engine::EngineKind;
use crate::error::ServingError;
use crate::request::{Phase, RequestOutcome, SimRequest};
use crate::router::{Router, WorkerView};
use crate::worker::{BatchingPolicy, CpuTask, OutstandingReq, WorkerConfig, WorkerState};
use crate::Result;

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A request arrives at the scheduler.
    Arrival(usize),
    /// A request's preprocessing lands on a naive-CB engine process.
    PreQueued { worker: usize, req: usize },
    /// A request is preprocessed and cache-ready on a worker.
    Ready { worker: usize, req: usize },
    /// A denoising step completed.
    StepDone { worker: usize },
    /// The engine process finished a burst of CPU tasks (naive CB).
    CpuDone { worker: usize },
    /// Postprocessing of a request completed.
    PostDone { worker: usize, req: usize },
}

/// Cluster-level configuration of a serving experiment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Cost model (GPU + analytic model).
    pub cost: CostModel,
    /// Engine on every worker.
    pub engine: EngineKind,
    /// Batching policy on every worker.
    pub batching: BatchingPolicy,
    /// Number of worker replicas (one GPU each).
    pub workers: usize,
    /// Requested maximum batch size per worker.
    pub max_batch: usize,
    /// CPU pool size per worker for disaggregated pre/post.
    pub cpu_workers: usize,
    /// Hierarchical store configuration (used by cache-consuming
    /// engines).
    pub store: StoreConfig,
    /// Scheduler decision overhead per request (0.6 ms, §6.6).
    pub scheduler_overhead: SimDuration,
}

impl ClusterConfig {
    /// A FlashPS-default cluster for the given cost model.
    pub fn flashps_default(cost: CostModel, workers: usize) -> Self {
        Self {
            cost,
            engine: EngineKind::FlashPs { kv: false },
            batching: BatchingPolicy::ContinuousDisaggregated,
            workers,
            max_batch: 8,
            cpu_workers: 4,
            store: StoreConfig::production_like(),
            scheduler_overhead: SimDuration::from_micros(600),
        }
    }
}

/// Results of one cluster run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request outcomes, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Latency recorder over all completed requests.
    pub recorder: LatencyRecorder,
    /// Virtual time when the last request completed.
    pub makespan_secs: f64,
    /// Served requests per second of virtual time.
    pub throughput_rps: f64,
    /// Steps executed per worker.
    pub steps_per_worker: Vec<u64>,
    /// GPU busy fraction per worker.
    pub utilization: Vec<f64>,
    /// Activation-store behaviour over the run (hits, prefetches,
    /// evictions).
    pub store_stats: fps_maskcache::store::StoreStats,
}

impl RunReport {
    /// Mean end-to-end latency in seconds (NaN when empty).
    pub fn mean_latency(&self) -> f64 {
        self.recorder
            .total_summary()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }

    /// P95 end-to-end latency in seconds (NaN when empty).
    pub fn p95_latency(&self) -> f64 {
        self.recorder
            .total_summary()
            .map(|s| s.p95)
            .unwrap_or(f64::NAN)
    }

    /// Mean queueing seconds (NaN when empty).
    pub fn mean_queueing(&self) -> f64 {
        self.recorder
            .queueing_summary()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }
}

/// The simulator world.
pub struct ClusterSim<'r> {
    config: ClusterConfig,
    workers: Vec<WorkerState>,
    requests: Vec<SimRequest>,
    /// Outstanding request indices per worker (routed, not yet done
    /// denoising) — the router's load signal.
    outstanding: Vec<Vec<usize>>,
    store: HierarchicalStore,
    router: &'r mut dyn Router,
}

impl<'r> ClusterSim<'r> {
    /// Runs a trace through the cluster and reports outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`ServingError::InvalidConfig`] for zero workers and
    /// [`ServingError::BadRoute`] if the router misbehaves.
    pub fn run(
        config: ClusterConfig,
        trace: &Trace,
        router: &'r mut dyn Router,
    ) -> Result<RunReport> {
        if config.workers == 0 {
            return Err(ServingError::InvalidConfig {
                reason: "cluster needs at least one worker".into(),
            });
        }
        let steps = config.cost.model.steps;
        let worker_cfg = WorkerConfig {
            engine: config.engine,
            batching: config.batching,
            max_batch: config.max_batch,
            cpu_workers: config.cpu_workers,
        };
        let workers: Vec<WorkerState> = (0..config.workers)
            .map(|i| WorkerState::new(i, worker_cfg.clone()))
            .collect();
        let requests: Vec<SimRequest> = trace
            .requests
            .iter()
            .map(|r| SimRequest::new(r.clone(), steps))
            .collect();

        // Pre-populate the activation store with every template the
        // trace touches (templates are primed offline, §2.2). Template
        // caches cover all tokens (mask ratio 0 sizing).
        let mut store = HierarchicalStore::new(config.store);
        if config.engine.uses_cache() {
            let bytes = config.cost.model.cache_bytes_total(0.0);
            let mut seen = std::collections::HashSet::new();
            for r in &trace.requests {
                if seen.insert(r.template_id) {
                    // Oversized templates are silently capped to the
                    // host budget; the store rejects only pathological
                    // configs.
                    let b = bytes.min(config.store.host_capacity);
                    let _ = store.insert(r.template_id, b, SimTime::ZERO, None);
                }
            }
        }

        let outstanding = vec![Vec::new(); config.workers];
        let mut sim = Simulation::new();
        for (i, r) in requests.iter().enumerate() {
            sim.queue_mut().schedule_at(r.spec.arrival(), Ev::Arrival(i));
        }
        let mut world = ClusterSim {
            config,
            workers,
            requests,
            outstanding,
            store,
            router,
        };
        sim.run(&mut world);

        // Collect the report.
        let mut outcomes = Vec::new();
        let mut recorder = LatencyRecorder::new();
        let mut makespan = 0.0f64;
        for r in &world.requests {
            if let Some(o) = r.outcome() {
                makespan = makespan.max(
                    r.completed_at
                        .map(|t| t.as_secs_f64())
                        .unwrap_or(0.0),
                );
                recorder.record(LatencyBreakdown {
                    queueing: o.queueing,
                    processing: o.processing,
                    inference: o.inference,
                });
                outcomes.push(o);
            }
        }
        let served = outcomes.len();
        let throughput = if makespan > 0.0 {
            served as f64 / makespan
        } else {
            0.0
        };
        let end = sim.now();
        let store_stats = world.store.stats();
        Ok(RunReport {
            outcomes,
            recorder,
            makespan_secs: makespan,
            throughput_rps: throughput,
            steps_per_worker: world.workers.iter().map(|w| w.steps_executed).collect(),
            utilization: world
                .workers
                .iter()
                .map(|w| {
                    let elapsed = end.as_secs_f64();
                    if elapsed > 0.0 {
                        (w.busy_secs / elapsed).min(1.0)
                    } else {
                        0.0
                    }
                })
                .collect(),
            store_stats,
        })
    }

    fn views(&self) -> Vec<WorkerView> {
        self.workers
            .iter()
            .map(|w| WorkerView {
                id: w.id,
                outstanding: self.outstanding[w.id]
                    .iter()
                    .map(|&i| OutstandingReq {
                        mask_ratio: self.requests[i].spec.mask_ratio,
                        steps_left: self.requests[i].steps_left,
                    })
                    .collect(),
                max_batch: w.config.effective_max_batch(),
                model_tokens: self.config.cost.model.tokens(),
            })
            .collect()
    }

    fn handle_arrival(&mut self, now: SimTime, req: usize, q: &mut EventQueue<Ev>) {
        let views = self.views();
        let w = self.router.route(&self.requests[req].spec, &views, now);
        // A misrouted request falls back to worker 0 rather than
        // wedging the run; tests assert on router behaviour directly.
        let w = if w < self.workers.len() { w } else { 0 };
        self.requests[req].worker = w;
        self.workers[w].total_assigned += 1;
        self.outstanding[w].push(req);

        let t0 = now + self.config.scheduler_overhead;
        let cache_ready = if self.config.engine.uses_cache() {
            // Prefetch starts at arrival and overlaps queueing.
            self.store
                .fetch(self.requests[req].spec.template_id, t0)
                .unwrap_or(t0)
        } else {
            t0
        };
        self.requests[req].cache_ready_at = cache_ready;

        match self.config.batching {
            BatchingPolicy::ContinuousNaive => {
                // Preprocessing runs on the engine process.
                q.schedule_at(t0, Ev::PreQueued { worker: w, req });
            }
            _ => {
                // Preprocessing runs on the CPU pool.
                let pre = self.config.cost.cpu.preprocess;
                let (_, done) = self.workers[w].cpu_pool.acquire(t0, pre);
                self.requests[req].processing_secs += pre.as_secs_f64();
                let ready_at = done.max(cache_ready);
                q.schedule_at(ready_at, Ev::Ready { worker: w, req });
            }
        }
    }

    fn kick(&mut self, w: usize, now: SimTime, q: &mut EventQueue<Ev>) {
        if self.workers[w].busy {
            return;
        }
        // Naive CB: the engine process first drains CPU tasks,
        // stalling every inflight request.
        if !self.workers[w].pending_cpu.is_empty() {
            let mut cursor = now;
            let inflight: Vec<usize> = self.workers[w].running.clone();
            while let Some(task) = self.workers[w].pending_cpu.pop_front() {
                match task {
                    CpuTask::Pre(i) => {
                        cursor += self.config.cost.cpu.preprocess;
                        self.requests[i].processing_secs +=
                            self.config.cost.cpu.preprocess.as_secs_f64();
                        let ready_at = cursor.max(self.requests[i].cache_ready_at);
                        q.schedule_at(ready_at, Ev::Ready { worker: w, req: i });
                    }
                    CpuTask::Post(i) => {
                        cursor += self.config.cost.cpu.postprocess;
                        self.requests[i].processing_secs +=
                            self.config.cost.cpu.postprocess.as_secs_f64();
                        q.schedule_at(cursor, Ev::PostDone { worker: w, req: i });
                    }
                }
                for &r in &inflight {
                    self.requests[r].interruptions += 1;
                }
            }
            if cursor > now {
                self.workers[w].busy = true;
                q.schedule_at(cursor, Ev::CpuDone { worker: w });
                return;
            }
        }

        // Admission.
        let max_batch = self.workers[w].config.effective_max_batch();
        let continuous = self.config.batching.is_continuous();
        let can_admit = if continuous {
            self.workers[w].running.len() < max_batch
        } else {
            self.workers[w].running.is_empty()
        };
        if can_admit {
            while self.workers[w].running.len() < max_batch {
                let Some(i) = self.workers[w].ready.pop_front() else {
                    break;
                };
                self.requests[i].phase = Phase::Running;
                if self.requests[i].batch_joined_at.is_none() {
                    self.requests[i].batch_joined_at = Some(now);
                }
                self.workers[w].running.push(i);
            }
        }
        if self.workers[w].running.is_empty() {
            return;
        }

        // Execute one denoising step for the batch.
        let items: Vec<BatchItem> = self.workers[w]
            .running
            .iter()
            .map(|&i| BatchItem {
                mask_ratio: self.requests[i].spec.mask_ratio,
            })
            .collect();
        let mut lat = self.config.engine.step_latency(&self.config.cost, &items);
        if continuous {
            lat += self.config.cost.cpu.batch_overhead;
        }
        self.workers[w].busy = true;
        self.workers[w].steps_executed += 1;
        self.workers[w].busy_secs += lat.as_secs_f64();
        q.schedule_at(now + lat, Ev::StepDone { worker: w });
    }

    fn handle_step_done(&mut self, now: SimTime, w: usize, q: &mut EventQueue<Ev>) {
        self.workers[w].busy = false;
        let mut finished = Vec::new();
        let running = std::mem::take(&mut self.workers[w].running);
        for i in running {
            self.requests[i].steps_left -= 1;
            if self.requests[i].steps_left == 0 {
                finished.push(i);
            } else {
                self.workers[w].running.push(i);
            }
        }
        for i in finished {
            self.requests[i].denoise_done_at = Some(now);
            self.requests[i].phase = Phase::Post;
            // Denoising load is gone: drop from the router's signal.
            if let Some(pos) = self.outstanding[w].iter().position(|&x| x == i) {
                self.outstanding[w].swap_remove(pos);
            }
            match self.config.batching {
                BatchingPolicy::ContinuousNaive => {
                    self.workers[w].pending_cpu.push_back(CpuTask::Post(i));
                }
                BatchingPolicy::ContinuousDisaggregated => {
                    let start = now + self.config.cost.cpu.disagg_handoff;
                    let post = self.config.cost.cpu.postprocess;
                    let (_, done) = self.workers[w].cpu_pool.acquire(start, post);
                    self.requests[i].processing_secs += post.as_secs_f64()
                        + self.config.cost.cpu.disagg_handoff.as_secs_f64();
                    q.schedule_at(done, Ev::PostDone { worker: w, req: i });
                }
                BatchingPolicy::Static => {
                    let post = self.config.cost.cpu.postprocess;
                    let (_, done) = self.workers[w].cpu_pool.acquire(now, post);
                    self.requests[i].processing_secs += post.as_secs_f64();
                    q.schedule_at(done, Ev::PostDone { worker: w, req: i });
                }
            }
        }
        self.kick(w, now, q);
    }
}

impl<'r> EventHandler<Ev> for ClusterSim<'r> {
    fn handle(&mut self, now: SimTime, event: Ev, q: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrival(i) => self.handle_arrival(now, i, q),
            Ev::PreQueued { worker, req } => {
                self.workers[worker].pending_cpu.push_back(CpuTask::Pre(req));
                self.kick(worker, now, q);
            }
            Ev::Ready { worker, req } => {
                self.requests[req].phase = Phase::Ready;
                self.workers[worker].ready.push_back(req);
                self.kick(worker, now, q);
            }
            Ev::StepDone { worker } => self.handle_step_done(now, worker, q),
            Ev::CpuDone { worker } => {
                self.workers[worker].busy = false;
                self.kick(worker, now, q);
            }
            Ev::PostDone { worker: _, req } => {
                self.requests[req].phase = Phase::Done;
                self.requests[req].completed_at = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuSpec;
    use crate::router::{LeastLoadedRouter, RoundRobinRouter};
    use fps_diffusion::ModelConfig;
    use fps_workload::{RatioDistribution, TraceConfig};

    fn small_trace(rps: f64, secs: f64, seed: u64) -> Trace {
        Trace::generate(&TraceConfig {
            rps,
            arrivals: fps_workload::trace::ArrivalProcess::Poisson,
            duration_secs: secs,
            ratio_dist: RatioDistribution::ProductionTrace,
            num_templates: 4,
            zipf_s: 1.0,
            seed,
        })
    }

    fn base_config(engine: EngineKind, batching: BatchingPolicy, workers: usize) -> ClusterConfig {
        ClusterConfig {
            cost: CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl()),
            engine,
            batching,
            workers,
            max_batch: 8,
            cpu_workers: 4,
            store: StoreConfig::production_like(),
            scheduler_overhead: SimDuration::from_micros(600),
        }
    }

    #[test]
    fn all_requests_complete() {
        let trace = small_trace(0.5, 60.0, 1);
        let n = trace.len();
        assert!(n > 10);
        for (engine, batching) in [
            (EngineKind::Diffusers, BatchingPolicy::Static),
            (
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
            ),
            (
                EngineKind::TeaCache {
                    compute_fraction: 0.6,
                },
                BatchingPolicy::Static,
            ),
            (EngineKind::FisEdit, BatchingPolicy::Static),
            (
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousNaive,
            ),
            (
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::Static,
            ),
        ] {
            let mut router = RoundRobinRouter::default();
            let report =
                ClusterSim::run(base_config(engine, batching, 2), &trace, &mut router).unwrap();
            assert_eq!(
                report.outcomes.len(),
                n,
                "{}/{}: all requests must complete",
                engine.label(),
                batching.label()
            );
            assert!(report.mean_latency() > 0.0);
            assert!(report.throughput_rps > 0.0);
        }
    }

    #[test]
    fn flashps_beats_diffusers_end_to_end() {
        // The headline Fig. 12 ordering at moderate load.
        let trace = small_trace(1.0, 120.0, 2);
        let mut r1 = LeastLoadedRouter;
        let flash = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                4,
            ),
            &trace,
            &mut r1,
        )
        .unwrap();
        let mut r2 = LeastLoadedRouter;
        let diff = ClusterSim::run(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 4),
            &trace,
            &mut r2,
        )
        .unwrap();
        assert!(
            flash.mean_latency() < diff.mean_latency() / 2.0,
            "flashps {} vs diffusers {}",
            flash.mean_latency(),
            diff.mean_latency()
        );
        assert!(flash.mean_queueing() < diff.mean_queueing());
    }

    #[test]
    fn continuous_batching_cuts_queueing() {
        // Fig. 4-middle: same engine, static vs disaggregated CB.
        let trace = small_trace(1.5, 120.0, 3);
        let mut r1 = LeastLoadedRouter;
        let cb = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            ),
            &trace,
            &mut r1,
        )
        .unwrap();
        let mut r2 = LeastLoadedRouter;
        let st = ClusterSim::run(
            base_config(EngineKind::FlashPs { kv: false }, BatchingPolicy::Static, 2),
            &trace,
            &mut r2,
        )
        .unwrap();
        assert!(
            cb.mean_queueing() < st.mean_queueing(),
            "cb queueing {} vs static {}",
            cb.mean_queueing(),
            st.mean_queueing()
        );
    }

    #[test]
    fn naive_cb_interrupts_requests() {
        // §6.4: pre/post on the engine process interrupts inflight
        // requests several times and inflates tail latency.
        let trace = small_trace(1.0, 100.0, 4);
        let mut r1 = LeastLoadedRouter;
        let naive = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousNaive,
                1,
            ),
            &trace,
            &mut r1,
        )
        .unwrap();
        let mut r2 = LeastLoadedRouter;
        let disagg = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                1,
            ),
            &trace,
            &mut r2,
        )
        .unwrap();
        let max_interruptions = naive
            .outcomes
            .iter()
            .map(|o| o.interruptions)
            .max()
            .unwrap_or(0);
        assert!(
            max_interruptions >= 2,
            "expected interruptions, got max {max_interruptions}"
        );
        assert!(disagg.outcomes.iter().all(|o| o.interruptions == 0));
        assert!(
            naive.p95_latency() > disagg.p95_latency(),
            "naive P95 {} vs disagg {}",
            naive.p95_latency(),
            disagg.p95_latency()
        );
    }

    #[test]
    fn zero_workers_rejected() {
        let trace = small_trace(1.0, 5.0, 5);
        let mut router = RoundRobinRouter::default();
        assert!(ClusterSim::run(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 0),
            &trace,
            &mut router
        )
        .is_err());
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace { requests: vec![] };
        let mut router = RoundRobinRouter::default();
        let report = ClusterSim::run(
            base_config(EngineKind::Diffusers, BatchingPolicy::Static, 2),
            &trace,
            &mut router,
        )
        .unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.throughput_rps, 0.0);
    }

    #[test]
    fn interruption_counts_match_paper_scale() {
        // The paper reports median ≈ 6, P95 ≈ 8 interruptions per
        // request under naive CB at RPS 0.5 on one worker. Expect the
        // same order of magnitude.
        let trace = small_trace(0.5, 300.0, 6);
        let mut router = LeastLoadedRouter;
        let naive = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousNaive,
                1,
            ),
            &trace,
            &mut router,
        )
        .unwrap();
        let mut ints: Vec<f64> = naive.outcomes.iter().map(|o| o.interruptions as f64).collect();
        ints.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ints[ints.len() / 2];
        assert!(
            (1.0..=20.0).contains(&median),
            "median interruptions {median} outside plausible range"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        #[test]
        fn prop_simulation_invariants(
            rps in 0.2f64..1.2,
            seed in 0u64..1000,
            workers in 1usize..4,
            batching_idx in 0usize..3,
        ) {
            let batching = [
                BatchingPolicy::Static,
                BatchingPolicy::ContinuousNaive,
                BatchingPolicy::ContinuousDisaggregated,
            ][batching_idx];
            let trace = small_trace(rps, 40.0, seed);
            let n = trace.len();
            let mut router = RoundRobinRouter::default();
            let report = ClusterSim::run(
                base_config(EngineKind::FlashPs { kv: false }, batching, workers),
                &trace,
                &mut router,
            )
            .expect("run");
            // Conservation: every arrival completes exactly once.
            proptest::prop_assert_eq!(report.outcomes.len(), n);
            let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            ids.dedup();
            proptest::prop_assert_eq!(ids.len(), n);
            // Every latency component is non-negative and finite; the
            // total is at least the inference time.
            for o in &report.outcomes {
                proptest::prop_assert!(o.queueing >= 0.0 && o.queueing.is_finite());
                proptest::prop_assert!(o.inference > 0.0 && o.inference.is_finite());
                proptest::prop_assert!(o.total + 1e-9 >= o.queueing + o.inference);
                proptest::prop_assert!(o.worker < workers);
                // Only naive CB interrupts requests.
                if batching != BatchingPolicy::ContinuousNaive {
                    proptest::prop_assert_eq!(o.interruptions, 0);
                }
            }
            // Step conservation: workers executed between the
            // perfectly-batched lower bound and the one-request-per-
            // step upper bound.
            if n > 0 {
                let steps: u64 = report.steps_per_worker.iter().sum();
                let model_steps = 50u64; // paper_sdxl schedule
                let max_batch = 8u64;
                proptest::prop_assert!(steps >= n as u64 * model_steps / max_batch);
                proptest::prop_assert!(steps <= n as u64 * model_steps);
            }
            // Utilization is a fraction.
            proptest::prop_assert!(report.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn utilization_and_steps_are_reported() {
        let trace = small_trace(1.0, 60.0, 7);
        let mut router = RoundRobinRouter::default();
        let report = ClusterSim::run(
            base_config(
                EngineKind::FlashPs { kv: false },
                BatchingPolicy::ContinuousDisaggregated,
                2,
            ),
            &trace,
            &mut router,
        )
        .unwrap();
        assert_eq!(report.steps_per_worker.len(), 2);
        assert!(report.steps_per_worker.iter().all(|&s| s > 0));
        // The FlashPS engine touched the activation store.
        assert!(report.store_stats.host_hits > 0);
        assert!(report
            .utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
    }
}
