//! Request routing policies.
//!
//! The paper's load-balancing baselines (§6.5): request-granularity
//! (balance outstanding request counts) and token-granularity (balance
//! outstanding masked-token counts). The mask-aware policy
//! (Algorithm 2) lives in the `flashps` core crate and plugs in through
//! the same [`Router`] trait.

use fps_simtime::SimTime;
use fps_workload::RequestSpec;

use crate::worker::OutstandingReq;

/// What a router sees of each worker when placing a request.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Worker id (its index).
    pub id: usize,
    /// Outstanding requests: running batch plus ready/pending queue.
    pub outstanding: Vec<OutstandingReq>,
    /// Effective maximum batch size.
    pub max_batch: usize,
    /// Total tokens of the served model (for token-count scoring).
    pub model_tokens: usize,
}

/// A request routing policy.
pub trait Router {
    /// Chooses a worker index for the request.
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], now: SimTime) -> usize;

    /// Policy name for experiment output.
    fn name(&self) -> &'static str;
}

/// Round-robin placement, ignoring load entirely.
#[derive(Debug, Default)]
pub struct RoundRobinRouter {
    next: usize,
}

impl Router for RoundRobinRouter {
    fn route(&mut self, _req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        let w = self.next % workers.len().max(1);
        self.next = self.next.wrapping_add(1);
        w
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Request-granularity balancing: place on the worker with the fewest
/// outstanding requests (ties to the lowest id).
#[derive(Debug, Default)]
pub struct LeastLoadedRouter;

impl Router for LeastLoadedRouter {
    fn route(&mut self, _req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        workers
            .iter()
            .min_by_key(|w| (w.outstanding.len(), w.id))
            .map(|w| w.id)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "request-count"
    }
}

/// Token-granularity balancing: place on the worker with the fewest
/// outstanding masked tokens (mask ratio × model tokens, summed over
/// outstanding requests).
#[derive(Debug, Default)]
pub struct TokenCountRouter;

impl Router for TokenCountRouter {
    fn route(&mut self, _req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        workers
            .iter()
            .min_by(|a, b| {
                let ta = outstanding_tokens(a);
                let tb = outstanding_tokens(b);
                ta.partial_cmp(&tb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.id.cmp(&b.id))
            })
            .map(|w| w.id)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "token-count"
    }
}

/// Total outstanding masked tokens on a worker.
pub fn outstanding_tokens(w: &WorkerView) -> f64 {
    w.outstanding
        .iter()
        .map(|r| r.mask_ratio * w.model_tokens as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_workload::trace::MaskShapeSpec;

    fn spec() -> RequestSpec {
        RequestSpec {
            id: 0,
            arrival_ns: 0,
            template_id: 0,
            mask_ratio: 0.2,
            mask_shape: MaskShapeSpec::Rect,
            seed: 0,
        }
    }

    fn view(id: usize, ratios: &[f64]) -> WorkerView {
        WorkerView {
            id,
            outstanding: ratios
                .iter()
                .map(|&m| OutstandingReq {
                    mask_ratio: m,
                    steps_left: 50,
                })
                .collect(),
            max_batch: 8,
            model_tokens: 4096,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = RoundRobinRouter::default();
        let ws = vec![view(0, &[]), view(1, &[]), view(2, &[])];
        let picks: Vec<usize> = (0..6).map(|_| r.route(&spec(), &ws, SimTime::ZERO)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(r.name(), "round-robin");
    }

    #[test]
    fn least_loaded_picks_fewest_requests() {
        let mut r = LeastLoadedRouter;
        let ws = vec![view(0, &[0.1, 0.1]), view(1, &[0.9]), view(2, &[0.1, 0.2, 0.3])];
        assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 1);
    }

    #[test]
    fn token_count_sees_mask_sizes() {
        let mut r = TokenCountRouter;
        // Worker 0 has fewer requests but far more masked tokens.
        let ws = vec![view(0, &[0.9]), view(1, &[0.1, 0.1])];
        assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 1);
        // Request-count balancing would pick worker 0 instead.
        let mut lc = LeastLoadedRouter;
        assert_eq!(lc.route(&spec(), &ws, SimTime::ZERO), 0);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut r = LeastLoadedRouter;
        let ws = vec![view(0, &[]), view(1, &[])];
        assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 0);
    }
}
