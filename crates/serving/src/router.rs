//! Request routing policies.
//!
//! The paper's load-balancing baselines (§6.5): request-granularity
//! (balance outstanding request counts) and token-granularity (balance
//! outstanding masked-token counts). The mask-aware policy
//! (Algorithm 2) lives in the `flashps` core crate and plugs in through
//! the same [`Router`] trait.

use fps_simtime::SimTime;
use fps_workload::RequestSpec;

use crate::worker::{OutstandingReq, WorkerHealth};

/// What a router sees of each worker when placing a request.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Worker id. Views are not necessarily a dense index range — a
    /// health-aware wrapper hands policies a filtered slice — so
    /// policies must return an `id` from the slice, never a position.
    pub id: usize,
    /// Outstanding requests: running batch plus ready/pending queue.
    pub outstanding: Vec<OutstandingReq>,
    /// Effective maximum batch size.
    pub max_batch: usize,
    /// Total tokens of the served model (for token-count scoring).
    pub model_tokens: usize,
    /// Current health of the worker.
    pub health: WorkerHealth,
}

/// A request routing policy.
pub trait Router {
    /// Chooses a worker id (from the given views) for the request.
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], now: SimTime) -> usize;

    /// Policy name for experiment output.
    fn name(&self) -> &'static str;
}

impl<R: Router + ?Sized> Router for &mut R {
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], now: SimTime) -> usize {
        (**self).route(req, workers, now)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<R: Router + ?Sized> Router for Box<R> {
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], now: SimTime) -> usize {
        (**self).route(req, workers, now)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Round-robin placement, ignoring load entirely.
#[derive(Debug, Default)]
pub struct RoundRobinRouter {
    next: usize,
}

impl Router for RoundRobinRouter {
    fn route(&mut self, _req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        if workers.is_empty() {
            return 0;
        }
        let w = workers[self.next % workers.len()].id;
        self.next = self.next.wrapping_add(1);
        w
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Request-granularity balancing: place on the worker with the fewest
/// outstanding requests (ties to the lowest id).
#[derive(Debug, Default)]
pub struct LeastLoadedRouter;

impl Router for LeastLoadedRouter {
    fn route(&mut self, _req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        workers
            .iter()
            .min_by_key(|w| (w.outstanding.len(), w.id))
            .map(|w| w.id)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "request-count"
    }
}

/// Token-granularity balancing: place on the worker with the fewest
/// outstanding masked tokens (mask ratio × model tokens, summed over
/// outstanding requests).
#[derive(Debug, Default)]
pub struct TokenCountRouter;

impl Router for TokenCountRouter {
    fn route(&mut self, _req: &RequestSpec, workers: &[WorkerView], _now: SimTime) -> usize {
        workers
            .iter()
            .min_by(|a, b| {
                let ta = outstanding_tokens(a);
                let tb = outstanding_tokens(b);
                ta.partial_cmp(&tb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.id.cmp(&b.id))
            })
            .map(|w| w.id)
            .unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "token-count"
    }
}

/// Health-aware wrapper: hides down workers from the inner policy so
/// any of the three baselines (and Algorithm 2) composes with fault
/// injection unchanged.
///
/// When every worker is down the wrapper routes over the full slice —
/// the caller (cluster simulator or server) is responsible for parking
/// or retrying requests it sent to a down worker.
#[derive(Debug)]
pub struct HealthAwareRouter<R> {
    inner: R,
}

impl<R: Router> HealthAwareRouter<R> {
    /// Wraps a routing policy.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &R {
        &self.inner
    }
}

impl<R: Router> Router for HealthAwareRouter<R> {
    fn route(&mut self, req: &RequestSpec, workers: &[WorkerView], now: SimTime) -> usize {
        // Fast path: with every worker available (the steady state)
        // the filtered slice would equal the input, so skip the
        // per-call clone entirely and route over the borrowed views.
        if !workers.is_empty() && workers.iter().all(|w| w.health.is_available()) {
            let choice = self.inner.route(req, workers, now);
            return if workers.iter().any(|w| w.id == choice) {
                choice
            } else {
                workers[0].id
            };
        }
        let available: Vec<WorkerView> = workers
            .iter()
            .filter(|w| w.health.is_available())
            .cloned()
            .collect();
        if available.is_empty() {
            return self.inner.route(req, workers, now);
        }
        let choice = self.inner.route(req, &available, now);
        if available.iter().any(|w| w.id == choice) {
            choice
        } else {
            // Defensive: a policy that returned a hidden id gets the
            // first available worker instead.
            available[0].id
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Total outstanding masked tokens on a worker.
pub fn outstanding_tokens(w: &WorkerView) -> f64 {
    w.outstanding
        .iter()
        .map(|r| r.mask_ratio * w.model_tokens as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_workload::trace::MaskShapeSpec;

    fn spec() -> RequestSpec {
        RequestSpec {
            id: 0,
            arrival_ns: 0,
            template_id: 0,
            mask_ratio: 0.2,
            mask_shape: MaskShapeSpec::Rect,
            seed: 0,
        }
    }

    fn view(id: usize, ratios: &[f64]) -> WorkerView {
        WorkerView {
            id,
            outstanding: ratios
                .iter()
                .map(|&m| OutstandingReq {
                    mask_ratio: m,
                    steps_left: 50,
                })
                .collect(),
            max_batch: 8,
            model_tokens: 4096,
            health: WorkerHealth::Healthy,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = RoundRobinRouter::default();
        let ws = vec![view(0, &[]), view(1, &[]), view(2, &[])];
        let picks: Vec<usize> = (0..6)
            .map(|_| r.route(&spec(), &ws, SimTime::ZERO))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(r.name(), "round-robin");
    }

    #[test]
    fn least_loaded_picks_fewest_requests() {
        let mut r = LeastLoadedRouter;
        let ws = vec![
            view(0, &[0.1, 0.1]),
            view(1, &[0.9]),
            view(2, &[0.1, 0.2, 0.3]),
        ];
        assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 1);
    }

    #[test]
    fn token_count_sees_mask_sizes() {
        let mut r = TokenCountRouter;
        // Worker 0 has fewer requests but far more masked tokens.
        let ws = vec![view(0, &[0.9]), view(1, &[0.1, 0.1])];
        assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 1);
        // Request-count balancing would pick worker 0 instead.
        let mut lc = LeastLoadedRouter;
        assert_eq!(lc.route(&spec(), &ws, SimTime::ZERO), 0);
    }

    #[test]
    fn ties_break_deterministically() {
        let mut r = LeastLoadedRouter;
        let ws = vec![view(0, &[]), view(1, &[])];
        assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 0);
    }

    #[test]
    fn round_robin_returns_ids_not_positions() {
        // A filtered slice with sparse ids: positions would be 0/1,
        // ids are 3 and 7.
        let mut r = RoundRobinRouter::default();
        let ws = vec![view(3, &[]), view(7, &[])];
        let picks: Vec<usize> = (0..4)
            .map(|_| r.route(&spec(), &ws, SimTime::ZERO))
            .collect();
        assert_eq!(picks, vec![3, 7, 3, 7]);
    }

    #[test]
    fn health_aware_wrapper_skips_down_workers() {
        let mut ws = vec![view(0, &[]), view(1, &[]), view(2, &[])];
        ws[0].health = WorkerHealth::Down;
        ws[1].health = WorkerHealth::Degraded;

        let mut rr = HealthAwareRouter::new(RoundRobinRouter::default());
        let picks: Vec<usize> = (0..4)
            .map(|_| rr.route(&spec(), &ws, SimTime::ZERO))
            .collect();
        assert_eq!(picks, vec![1, 2, 1, 2], "down worker 0 never chosen");

        let mut ll = HealthAwareRouter::new(LeastLoadedRouter);
        assert_eq!(ll.route(&spec(), &ws, SimTime::ZERO), 1);
        assert_eq!(ll.name(), "request-count");

        let mut tc = HealthAwareRouter::new(TokenCountRouter);
        assert_eq!(tc.route(&spec(), &ws, SimTime::ZERO), 1);
    }

    #[test]
    fn health_aware_wrapper_composes_with_boxed_policies() {
        let boxed: Box<dyn Router> = Box::new(RoundRobinRouter::default());
        let mut r = HealthAwareRouter::new(boxed);
        let mut ws = vec![view(0, &[]), view(1, &[])];
        ws[1].health = WorkerHealth::Down;
        for _ in 0..3 {
            assert_eq!(r.route(&spec(), &ws, SimTime::ZERO), 0);
        }
    }

    #[test]
    fn all_down_falls_back_to_inner_choice() {
        let mut ws = vec![view(0, &[]), view(1, &[])];
        ws[0].health = WorkerHealth::Down;
        ws[1].health = WorkerHealth::Down;
        let mut r = HealthAwareRouter::new(LeastLoadedRouter);
        let pick = r.route(&spec(), &ws, SimTime::ZERO);
        assert!(pick == 0 || pick == 1);
    }

    #[test]
    fn health_aware_wrapper_with_every_worker_down_still_routes() {
        // With no available worker the wrapper falls through to the
        // inner policy over the full (unhealthy) view: it must return
        // a valid worker id, not panic or go out of range — the
        // cluster parks the request against that worker's recovery.
        let mut ws = vec![view(0, &[]), view(1, &[]), view(2, &[])];
        for w in &mut ws {
            w.health = WorkerHealth::Down;
        }
        let mut rr = HealthAwareRouter::new(RoundRobinRouter::default());
        let mut ll = HealthAwareRouter::new(LeastLoadedRouter);
        let mut tc = HealthAwareRouter::new(TokenCountRouter);
        for _ in 0..4 {
            assert!(rr.route(&spec(), &ws, SimTime::ZERO) < 3);
            assert_eq!(ll.route(&spec(), &ws, SimTime::ZERO), 0);
            assert_eq!(tc.route(&spec(), &ws, SimTime::ZERO), 0);
        }
    }
}
