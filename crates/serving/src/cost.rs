//! Analytic GPU and PCIe cost models.
//!
//! These stand in for the paper's A10/H800 testbeds (see DESIGN.md's
//! substitution table). The key modelling choice, taken from the
//! paper's own observations (§6.2, Fig. 14), is an **SM-saturation
//! efficiency curve**: a kernel over few tokens cannot fill the GPU, so
//! effective FLOPs throughput scales with the token count until
//! saturation. This is what makes FlashPS *slower* than TeaCache at
//! batch size 1 yet far faster once batching raises occupancy — the
//! crossover Fig. 14 reports.

use fps_diffusion::config::{Architecture, ModelConfig};
use fps_diffusion::flops;
use fps_simtime::SimDuration;

/// Static description of a GPU and its host link.
///
/// The numbers are *effective* figures calibrated so the analytic
/// model lands in the latency regimes the paper reports (SDXL ≈
/// seconds per 50-step generation on H800, SD2.1 similar on A10), not
/// datasheet peaks. `pcie_bw` is the pipelined (pinned, async,
/// batched) host→HBM throughput the cache-load stream achieves;
/// `sync_copy_bw` is the much lower throughput of the naive
/// sequential, per-tensor synchronous copies of Fig. 9-top — the gap
/// between the two is exactly what Fig. 4-left measures.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Effective peak throughput in FLOP/s (discounted from datasheet
    /// peaks for real-kernel efficiency).
    pub peak_flops: f64,
    /// Pipelined host→device PCIe bandwidth in bytes/s.
    pub pcie_bw: f64,
    /// Synchronous per-tensor copy throughput in bytes/s (naive
    /// loading path).
    pub sync_copy_bw: f64,
    /// Token count at which kernels saturate the SMs.
    pub saturation_tokens: f64,
    /// Fixed per-block launch/dispatch overhead.
    pub launch_overhead: SimDuration,
}

impl GpuSpec {
    /// NVIDIA A10 with PCIe Gen4 ×16.
    pub fn a10() -> Self {
        Self {
            name: "A10".into(),
            peak_flops: 40e12,
            pcie_bw: 20e9,
            sync_copy_bw: 3e9,
            saturation_tokens: 1536.0,
            launch_overhead: SimDuration::from_micros(30),
        }
    }

    /// NVIDIA H800 with PCIe Gen5 ×16.
    pub fn h800() -> Self {
        Self {
            name: "H800".into(),
            peak_flops: 200e12,
            pcie_bw: 40e9,
            sync_copy_bw: 6e9,
            saturation_tokens: 3072.0,
            launch_overhead: SimDuration::from_micros(20),
        }
    }

    /// SM efficiency for a kernel touching `tokens` query tokens:
    /// `t / (t + saturation)`, a smooth occupancy ramp that approaches
    /// 1 as kernels grow.
    pub fn efficiency(&self, tokens: f64) -> f64 {
        let t = tokens.max(1.0);
        t / (t + self.saturation_tokens)
    }
}

/// CPU-side costs of request handling (§4.3, §6.6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// Image preprocessing (decode, resize, mask rasterize, encode).
    pub preprocess: SimDuration,
    /// Image postprocessing (decode latent, serialize output).
    pub postprocess: SimDuration,
    /// Per-step batch-organization overhead under continuous batching
    /// (1.2 ms, §6.6).
    pub batch_overhead: SimDuration,
    /// Latent serialization + IPC to the postprocess process under
    /// disaggregation (1.1 ms + 1.3 ms, §6.6).
    pub disagg_handoff: SimDuration,
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self {
            // The paper measures 0.36 s average overhead per
            // interruption; pre/post split asymmetrically.
            preprocess: SimDuration::from_millis(360),
            postprocess: SimDuration::from_millis(360),
            batch_overhead: SimDuration::from_micros(1200),
            disagg_handoff: SimDuration::from_micros(2400),
        }
    }
}

/// Work contributed by one request to a denoising step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchItem {
    /// Mask ratio of the request.
    pub mask_ratio: f64,
}

/// The analytic cost model for one (model, GPU) pair.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// GPU executing the model.
    pub gpu: GpuSpec,
    /// The (paper-scale, analytic) model being served.
    pub model: ModelConfig,
    /// CPU-side costs.
    pub cpu: CpuCosts,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(gpu: GpuSpec, model: ModelConfig) -> Self {
        Self {
            gpu,
            model,
            cpu: CpuCosts::default(),
        }
    }

    /// Latency of executing `flop` FLOPs at the occupancy of `tokens`
    /// query tokens.
    pub fn compute_latency(&self, flop: u64, tokens: f64) -> SimDuration {
        let eff = self.gpu.efficiency(tokens);
        SimDuration::from_secs_f64(flop as f64 / (self.gpu.peak_flops * eff))
    }

    /// Latency of moving `bytes` host→HBM on the pipelined copy
    /// stream.
    pub fn load_latency(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.gpu.pcie_bw)
    }

    /// Latency of moving `bytes` with naive synchronous per-tensor
    /// copies (Fig. 9-top).
    pub fn sync_load_latency(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.gpu.sync_copy_bw)
    }

    /// Latency of one *naively loaded* mask-aware step: cached compute
    /// plus blocking synchronous loads (the Fig. 4-left "naive" bar).
    pub fn step_latency_naive_loading(&self, batch: &[BatchItem]) -> SimDuration {
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        let costs = self.mask_aware_block_costs(batch, false);
        let per_block_bytes: u64 = batch
            .iter()
            .map(|i| self.model.cache_bytes_per_block(i.mask_ratio))
            .sum();
        let mut total = SimDuration::ZERO;
        for _ in 0..self.model.blocks {
            total += costs.compute_cached + self.sync_load_latency(per_block_bytes);
        }
        total
    }

    /// Architecture overhead factor (UNet convolution scaffold).
    fn arch_factor(&self) -> f64 {
        match self.model.arch {
            Architecture::UNet => 1.0 / flops::UNET_TRANSFORMER_FRACTION,
            Architecture::Dit => 1.0,
        }
    }

    /// Latency of one full-computation denoising step for a batch.
    pub fn step_latency_full(&self, batch: usize) -> SimDuration {
        let batch = batch.max(1);
        let l = self.model.tokens();
        let per_block = flops::block_flops(&self.model, l, l, l) * batch as u64;
        let tokens = (l * batch) as f64;
        let mut total = SimDuration::ZERO;
        for _ in 0..self.model.blocks {
            total += self.compute_latency(per_block, tokens) + self.gpu.launch_overhead;
        }
        total.mul_f64(self.arch_factor())
    }

    /// Per-block costs of a mask-aware step for a batch, feeding
    /// Algorithm 1: (compute-with-cache, compute-without-cache, load).
    ///
    /// The cached-block compute is split into two kernel families with
    /// separate occupancies: the Y variant's full-length K/V
    /// projections run over all `L` tokens (good occupancy) while the
    /// query-side work (Q projection, attention, FFN) runs over the
    /// masked tokens only (poor occupancy at small masks and batches —
    /// the Fig. 14 underutilization effect).
    pub fn mask_aware_block_costs(
        &self,
        batch: &[BatchItem],
        kv_variant: bool,
    ) -> fps_maskcache::BlockCosts {
        let l = self.model.tokens();
        let h = self.model.hidden as u64;
        let mut q_flops = 0u64;
        let mut kv_flops = 0u64;
        let mut masked_tokens_total = 0usize;
        let mut load_bytes = 0u64;
        for item in batch {
            let ml = flops::masked_tokens(&self.model, item.mask_ratio);
            masked_tokens_total += ml;
            let per_block = self.model.cache_bytes_per_block(item.mask_ratio);
            if kv_variant {
                // Cached K/V: only masked rows' K/V are recomputed; 2×
                // the load bytes.
                q_flops += flops::block_flops(&self.model, ml, l, ml);
                load_bytes += 2 * per_block;
            } else {
                // Y variant: full-length K/V recomputed from the
                // replenished rows (the §3.1 LLM-decoding analogy).
                let full_kv_proj = 2 * 2 * l as u64 * h * h;
                kv_flops += full_kv_proj;
                q_flops += flops::block_flops(&self.model, ml, l, l) - full_kv_proj;
                load_bytes += per_block;
            }
        }
        let b = batch.len().max(1);
        let full_flops = flops::block_flops(&self.model, l, l, l) * b as u64;
        let full_tokens = (l * b) as f64;
        let af = self.arch_factor();
        let cached = self.compute_latency(q_flops, masked_tokens_total as f64)
            + self.compute_latency(kv_flops, full_tokens)
            + self.gpu.launch_overhead;
        fps_maskcache::BlockCosts {
            compute_cached: cached.mul_f64(af),
            compute_full: (self.compute_latency(full_flops, full_tokens)
                + self.gpu.launch_overhead)
                .mul_f64(af),
            load: self.load_latency(load_bytes),
        }
    }

    /// Latency of one mask-aware step for a batch: Algorithm 1's
    /// optimal pipeline over the per-block costs. Also returns the
    /// per-block cache decisions.
    pub fn step_latency_mask_aware(
        &self,
        batch: &[BatchItem],
        kv_variant: bool,
    ) -> (SimDuration, Vec<bool>) {
        if batch.is_empty() {
            return (SimDuration::ZERO, Vec::new());
        }
        let costs = self.mask_aware_block_costs(batch, kv_variant);
        let plan = fps_maskcache::pipeline::plan_uniform(self.model.blocks, costs);
        (plan.latency, plan.use_cache)
    }

    /// Latency of one FISEdit-style sparse step: masked tokens only,
    /// with a sparse-kernel inefficiency factor, no cache loads.
    pub fn step_latency_sparse(&self, batch: &[BatchItem]) -> SimDuration {
        const SPARSE_KERNEL_OVERHEAD: f64 = 1.6;
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        let mut fl = 0u64;
        let mut tokens = 0usize;
        for item in batch {
            let ml = flops::masked_tokens(&self.model, item.mask_ratio);
            tokens += ml;
            fl += flops::block_flops(&self.model, ml, ml, ml);
        }
        let mut total = SimDuration::ZERO;
        for _ in 0..self.model.blocks {
            total += self.compute_latency(fl, tokens as f64) + self.gpu.launch_overhead;
        }
        total
            .mul_f64(self.arch_factor())
            .mul_f64(SPARSE_KERNEL_OVERHEAD)
    }

    /// Total bytes of one request's per-step cache loads (all blocks).
    pub fn cache_bytes_per_step(&self, mask_ratio: f64) -> u64 {
        self.model.cache_bytes_per_block(mask_ratio) * self.model.blocks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h800_sdxl() -> CostModel {
        CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl())
    }

    #[test]
    fn full_step_latency_is_realistic() {
        // SDXL on H800: tens of milliseconds per step, seconds per
        // 50-step generation — the regime the paper reports.
        let cm = h800_sdxl();
        let step = cm.step_latency_full(1).as_secs_f64();
        assert!(step > 0.01 && step < 0.5, "step {step}s");
        let gen = step * cm.model.steps as f64;
        assert!(gen > 1.0 && gen < 15.0, "full generation {gen}s");
    }

    #[test]
    fn efficiency_curve_saturates() {
        let g = GpuSpec::h800();
        assert!(g.efficiency(100.0) < 0.1);
        assert!(g.efficiency(1e7) > 0.99);
        let e1 = g.efficiency(1000.0);
        let e2 = g.efficiency(4000.0);
        assert!(e2 > e1);
    }

    #[test]
    fn mask_aware_step_beats_full_at_small_ratios() {
        let cm = h800_sdxl();
        let batch = vec![BatchItem { mask_ratio: 0.2 }; 4];
        let full = cm.step_latency_full(4);
        let (aware, plan) = cm.step_latency_mask_aware(&batch, false);
        assert!(aware < full, "mask-aware {aware} should beat full {full}");
        assert_eq!(plan.len(), cm.model.blocks);
        // The paper reports ~2.2× speedup for SDXL at m = 0.2 including
        // loading overheads; expect the same ballpark (1.5–4×).
        let speedup = full.as_secs_f64() / aware.as_secs_f64();
        assert!(speedup > 1.3 && speedup < 5.0, "speedup {speedup}");
    }

    #[test]
    fn image_level_latency_scales_with_mask_ratio() {
        // Fig. 15-right: latency grows roughly linearly with the mask
        // ratio.
        let cm = h800_sdxl();
        let lat = |m: f64| {
            cm.step_latency_mask_aware(&[BatchItem { mask_ratio: m }], false)
                .0
                .as_secs_f64()
        };
        let l01 = lat(0.1);
        let l05 = lat(0.5);
        let l09 = lat(0.9);
        assert!(l01 < l05 && l05 < l09);
        // Sub-linear due to the efficiency curve, but monotone and
        // substantial.
        assert!(l09 / l01 > 1.3, "ratio {}", l09 / l01);
    }

    #[test]
    fn batch_size_one_underutilizes_flashps() {
        // Fig. 14: at B=1 mask-aware computation underutilizes the SMs,
        // so its throughput advantage over full computation shrinks
        // well below the FLOP ratio.
        let cm = CostModel::new(GpuSpec::h800(), ModelConfig::paper_flux());
        let item = BatchItem { mask_ratio: 0.11 };
        let (aware_1, _) = cm.step_latency_mask_aware(&[item], false);
        let full_1 = cm.step_latency_full(1);
        let flop_ratio = 0.11f64;
        let latency_ratio = aware_1.as_secs_f64() / full_1.as_secs_f64();
        assert!(
            latency_ratio > flop_ratio * 2.0,
            "latency ratio {latency_ratio} should be far above flop ratio {flop_ratio}"
        );
        // Batching restores the advantage: per-request step time at
        // B=8 is much lower than at B=1.
        let (aware_8, _) = cm.step_latency_mask_aware(&[item; 8], false);
        let per_req_8 = aware_8.as_secs_f64() / 8.0;
        let per_req_1 = aware_1.as_secs_f64();
        assert!(
            per_req_8 < per_req_1 * 0.5,
            "batching gain too small: {per_req_1} -> {per_req_8}"
        );
    }

    #[test]
    fn kv_variant_loads_twice_the_bytes() {
        let cm = h800_sdxl();
        let batch = [BatchItem { mask_ratio: 0.2 }];
        let y = cm.mask_aware_block_costs(&batch, false);
        let kv = cm.mask_aware_block_costs(&batch, true);
        let ratio = kv.load.as_secs_f64() / y.load.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "load ratio {ratio}");
        // §3.1: the K/V variant skips the full-length K/V recompute,
        // so its cached compute is cheaper (the ~10% latency saving).
        assert!(kv.compute_cached < y.compute_cached);
    }

    #[test]
    fn sparse_step_has_kernel_overhead() {
        let cm = CostModel::new(GpuSpec::a10(), ModelConfig::paper_sd21());
        let batch = [BatchItem { mask_ratio: 0.2 }];
        let sparse = cm.step_latency_sparse(&batch);
        // FISEdit computes strictly less (masked-only attention, no
        // K/V recompute) but pays a 1.6× sparse-kernel penalty; it
        // must still be slower than the full-compute baseline scaled
        // by its FLOP fraction.
        let full = cm.step_latency_full(1);
        assert!(sparse > SimDuration::ZERO);
        assert!(sparse < full, "sparse must beat full recompute");
        assert_eq!(cm.step_latency_sparse(&[]), SimDuration::ZERO);
    }

    #[test]
    fn empty_batch_is_free() {
        let cm = h800_sdxl();
        let (lat, plan) = cm.step_latency_mask_aware(&[], false);
        assert_eq!(lat, SimDuration::ZERO);
        assert!(plan.is_empty());
    }

    #[test]
    fn cache_bytes_per_step_matches_config() {
        let cm = h800_sdxl();
        let per_block = cm.model.cache_bytes_per_block(0.3);
        assert_eq!(
            cm.cache_bytes_per_step(0.3),
            per_block * cm.model.blocks as u64
        );
    }

    #[test]
    fn load_latency_uses_pcie_bandwidth() {
        let cm = h800_sdxl();
        let one_gib = 1u64 << 30;
        let lat = cm.load_latency(one_gib).as_secs_f64();
        assert!((lat - one_gib as f64 / cm.gpu.pcie_bw).abs() < 1e-6);
        let sync = cm.sync_load_latency(one_gib).as_secs_f64();
        assert!(sync > lat, "sync copies are slower than pipelined");
    }
}
