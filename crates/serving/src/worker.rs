//! Worker state: batching policies and per-worker bookkeeping.
//!
//! A worker owns one GPU. Its behaviour under the three batching
//! policies of §4.3:
//!
//! - **Static**: a batch is formed from the ready queue only when the
//!   GPU is idle *and* the previous batch has fully completed; late
//!   arrivals wait for the whole batch.
//! - **Naive continuous** (the strawman of Fig. 10-top): requests join
//!   and leave at step boundaries, but pre/post-processing executes on
//!   the engine process between steps, stalling every inflight request
//!   (an *interruption*).
//! - **Disaggregated continuous** (FlashPS, Fig. 10-bottom): pre/post
//!   runs on a separate CPU pool; the denoise stream never stalls, and
//!   joins cost one step plus the 1.2 ms batch-organization overhead.

use std::collections::VecDeque;

use fps_simtime::MultiResource;

use crate::engine::EngineKind;

/// The batching policy of a worker (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchingPolicy {
    /// Fixed batch until completion.
    Static,
    /// Step-level continuous batching with CPU work on the engine
    /// process.
    ContinuousNaive,
    /// Step-level continuous batching with disaggregated CPU work.
    ContinuousDisaggregated,
}

impl BatchingPolicy {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Static => "static",
            Self::ContinuousNaive => "naive-cb",
            Self::ContinuousDisaggregated => "disagg-cb",
        }
    }

    /// Whether the policy admits requests at step boundaries.
    pub fn is_continuous(&self) -> bool {
        !matches!(self, Self::Static)
    }
}

/// Static configuration of one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Engine executing steps.
    pub engine: EngineKind,
    /// Batching policy.
    pub batching: BatchingPolicy,
    /// Maximum running-batch size (further capped by the engine).
    pub max_batch: usize,
    /// CPU pool size for disaggregated pre/post-processing.
    pub cpu_workers: usize,
}

impl WorkerConfig {
    /// Effective maximum batch after engine capping.
    pub fn effective_max_batch(&self) -> usize {
        self.engine.cap_batch(self.max_batch)
    }
}

/// A CPU task queued on the engine process under naive continuous
/// batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuTask {
    /// Preprocessing of a request (by index).
    Pre(usize),
    /// Postprocessing of a request (by index).
    Post(usize),
}

/// Health of a worker as seen by routing and fault handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkerHealth {
    /// Serving at nominal speed.
    #[default]
    Healthy,
    /// Serving, but slower than nominal (transient slowdown).
    Degraded,
    /// Crashed; takes no traffic until restart.
    Down,
}

impl WorkerHealth {
    /// Whether the worker can accept traffic.
    pub fn is_available(self) -> bool {
        !matches!(self, Self::Down)
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::Down => "down",
        }
    }
}

/// Mutable state of one worker during simulation.
#[derive(Debug)]
pub struct WorkerState {
    /// Worker id.
    pub id: usize,
    /// Static configuration.
    pub config: WorkerConfig,
    /// CPU pool for disaggregated/static pre/post.
    pub cpu_pool: MultiResource,
    /// Requests currently in the running batch (indices into the
    /// cluster's request table).
    pub running: Vec<usize>,
    /// Preprocessed, cache-ready requests waiting to join.
    pub ready: VecDeque<usize>,
    /// CPU tasks pending on the engine process (naive CB only).
    pub pending_cpu: VecDeque<CpuTask>,
    /// Whether the GPU (or, under naive CB, the engine process) is
    /// busy.
    pub busy: bool,
    /// Requests ever routed here.
    pub total_assigned: usize,
    /// Denoising steps executed.
    pub steps_executed: u64,
    /// Busy seconds accumulated on the GPU.
    pub busy_secs: f64,
    /// Current health (fault injection flips this).
    pub health: WorkerHealth,
    /// Step-latency multiplier while degraded (1.0 when healthy).
    pub slow_factor: f64,
    /// Incremented on every crash; completion events stamped with an
    /// older epoch belong to a dead incarnation and are ignored.
    pub epoch: u64,
    /// Crashes suffered so far.
    pub crashes: u64,
}

impl WorkerState {
    /// Creates an idle worker.
    pub fn new(id: usize, config: WorkerConfig) -> Self {
        let cpu_pool = MultiResource::new(config.cpu_workers.max(1));
        Self {
            id,
            config,
            cpu_pool,
            running: Vec::new(),
            ready: VecDeque::new(),
            pending_cpu: VecDeque::new(),
            busy: false,
            total_assigned: 0,
            steps_executed: 0,
            busy_secs: 0.0,
            health: WorkerHealth::Healthy,
            slow_factor: 1.0,
            epoch: 0,
            crashes: 0,
        }
    }

    /// Whether the worker has no work at all.
    pub fn is_idle(&self) -> bool {
        !self.busy
            && self.running.is_empty()
            && self.ready.is_empty()
            && self.pending_cpu.is_empty()
    }
}

/// Snapshot of a worker handed to routing policies.
#[derive(Debug, Clone)]
pub struct OutstandingReq {
    /// Mask ratio of the outstanding request.
    pub mask_ratio: f64,
    /// Denoising steps left (full count if not yet started).
    pub steps_left: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels() {
        assert_eq!(BatchingPolicy::Static.label(), "static");
        assert_eq!(BatchingPolicy::ContinuousNaive.label(), "naive-cb");
        assert_eq!(BatchingPolicy::ContinuousDisaggregated.label(), "disagg-cb");
        assert!(!BatchingPolicy::Static.is_continuous());
        assert!(BatchingPolicy::ContinuousNaive.is_continuous());
    }

    #[test]
    fn fisedit_caps_effective_batch() {
        let cfg = WorkerConfig {
            engine: EngineKind::FisEdit,
            batching: BatchingPolicy::Static,
            max_batch: 8,
            cpu_workers: 2,
        };
        assert_eq!(cfg.effective_max_batch(), 1);
        let cfg2 = WorkerConfig {
            engine: EngineKind::Diffusers,
            ..cfg
        };
        assert_eq!(cfg2.effective_max_batch(), 8);
    }

    #[test]
    fn new_worker_is_idle() {
        let w = WorkerState::new(
            0,
            WorkerConfig {
                engine: EngineKind::Diffusers,
                batching: BatchingPolicy::Static,
                max_batch: 4,
                cpu_workers: 0,
            },
        );
        assert!(w.is_idle());
        assert_eq!(w.cpu_pool.servers(), 1, "pool clamps to one server");
    }
}
