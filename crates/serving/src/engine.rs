//! The serving engines under comparison (§6.1 baselines).

use fps_simtime::SimDuration;

use crate::cost::{BatchItem, CostModel};

/// Which engine executes denoising steps on a worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// HuggingFace Diffusers: full-image regeneration, no cache.
    Diffusers,
    /// FlashPS: mask-aware computation with Algorithm-1 pipelined cache
    /// loading; `kv` selects the Fig. 7 cached-K/V variant.
    FlashPs {
        /// Use the K/V-cache variant (2× load bytes, fuller attention
        /// context).
        kv: bool,
    },
    /// FISEdit: sparse masked-only kernels; SD2.1 only, no batching,
    /// OOM above batch size 2 in the paper's runs.
    FisEdit,
    /// TeaCache: full-image computation with a fraction of denoising
    /// steps skipped by reusing cached step outputs.
    TeaCache {
        /// Fraction of steps actually computed (e.g. 0.6 ⇒ 40 %
        /// skipped), the latency/quality knob of §6.1.
        compute_fraction: f64,
    },
}

impl EngineKind {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Diffusers => "diffusers",
            Self::FlashPs { kv: false } => "flashps",
            Self::FlashPs { kv: true } => "flashps-kv",
            Self::FisEdit => "fisedit",
            Self::TeaCache { .. } => "teacache",
        }
    }

    /// Whether the engine consumes the template activation cache.
    pub fn uses_cache(&self) -> bool {
        matches!(self, Self::FlashPs { .. })
    }

    /// Clamp a requested max batch size to what the engine supports.
    /// FISEdit cannot batch heterogeneous masks (§2.4), so it serves
    /// one request at a time.
    pub fn cap_batch(&self, requested: usize) -> usize {
        match self {
            Self::FisEdit => 1,
            _ => requested.max(1),
        }
    }

    /// Latency of one denoising step for a batch.
    pub fn step_latency(&self, cm: &CostModel, batch: &[BatchItem]) -> SimDuration {
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        match *self {
            Self::Diffusers => cm.step_latency_full(batch.len()),
            Self::FlashPs { kv } => cm.step_latency_mask_aware(batch, kv).0,
            Self::FisEdit => cm.step_latency_sparse(batch),
            Self::TeaCache { compute_fraction } => cm
                .step_latency_full(batch.len())
                .mul_f64(compute_fraction.clamp(0.05, 1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuSpec;
    use fps_diffusion::ModelConfig;

    fn cm() -> CostModel {
        CostModel::new(GpuSpec::h800(), ModelConfig::paper_flux())
    }

    fn batch(n: usize, m: f64) -> Vec<BatchItem> {
        vec![BatchItem { mask_ratio: m }; n]
    }

    #[test]
    fn labels_and_caps() {
        assert_eq!(EngineKind::Diffusers.label(), "diffusers");
        assert_eq!(EngineKind::FlashPs { kv: true }.label(), "flashps-kv");
        assert_eq!(EngineKind::FisEdit.cap_batch(8), 1);
        assert_eq!(EngineKind::Diffusers.cap_batch(8), 8);
        assert_eq!(EngineKind::Diffusers.cap_batch(0), 1);
        assert!(EngineKind::FlashPs { kv: false }.uses_cache());
        assert!(!EngineKind::TeaCache {
            compute_fraction: 0.6
        }
        .uses_cache());
    }

    #[test]
    fn engine_latency_ordering_at_batch() {
        // At production mask ratios and a real batch, FlashPS steps are
        // the fastest; TeaCache beats Diffusers by its skip fraction.
        let cm = cm();
        let b = batch(4, 0.11);
        let flash = EngineKind::FlashPs { kv: false }.step_latency(&cm, &b);
        let diff = EngineKind::Diffusers.step_latency(&cm, &b);
        let tea = EngineKind::TeaCache {
            compute_fraction: 0.6,
        }
        .step_latency(&cm, &b);
        assert!(flash < tea, "flashps {flash} vs teacache {tea}");
        assert!(tea < diff, "teacache {tea} vs diffusers {diff}");
        let ratio = tea.as_secs_f64() / diff.as_secs_f64();
        assert!((ratio - 0.6).abs() < 1e-9);
    }

    #[test]
    fn teacache_wins_at_batch_one() {
        // Fig. 14: without batching, TeaCache's full-width kernels
        // saturate the SMs while FlashPS's masked kernels cannot.
        let cm = cm();
        let b = batch(1, 0.11);
        let flash = EngineKind::FlashPs { kv: false }.step_latency(&cm, &b);
        let tea = EngineKind::TeaCache {
            compute_fraction: 0.5,
        }
        .step_latency(&cm, &b);
        assert!(
            tea < flash,
            "teacache {tea} should beat flashps {flash} at B=1"
        );
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let cm = cm();
        for e in [
            EngineKind::Diffusers,
            EngineKind::FlashPs { kv: false },
            EngineKind::FisEdit,
            EngineKind::TeaCache {
                compute_fraction: 0.6,
            },
        ] {
            assert_eq!(e.step_latency(&cm, &[]), SimDuration::ZERO);
        }
    }

    #[test]
    fn teacache_fraction_is_clamped() {
        let cm = cm();
        let b = batch(1, 0.2);
        let zero = EngineKind::TeaCache {
            compute_fraction: 0.0,
        }
        .step_latency(&cm, &b);
        assert!(zero > SimDuration::ZERO, "clamped away from free");
    }
}
