//! Error types for the serving simulator.

use core::fmt;

/// Errors produced by serving configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ServingError {
    /// A configuration is internally inconsistent.
    InvalidConfig {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A router returned a worker index out of range.
    BadRoute {
        /// The worker index returned.
        worker: usize,
        /// Number of workers in the cluster.
        workers: usize,
    },
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid serving config: {reason}"),
            Self::BadRoute { worker, workers } => {
                write!(f, "router chose worker {worker} of {workers}")
            }
        }
    }
}

impl std::error::Error for ServingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ServingError::BadRoute {
            worker: 9,
            workers: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
