//! Offline profiling and the regression latency models (Fig. 11,
//! Algorithm 2).
//!
//! FlashPS's scheduler estimates worker load with linear models mapping
//! batch FLOPs → compute latency and cache bytes → load latency,
//! fitted on offline profiling data. Here the "profiling runs" sample
//! the analytic cost model across mask ratios and batch sizes — the
//! same calibration loop the paper runs on real GPUs.

use fps_diffusion::flops;
use fps_metrics::LinearRegression;
use fps_simtime::SimDuration;

use crate::cost::{BatchItem, CostModel};
use crate::error::ServingError;
use crate::Result;

/// Fitted latency estimators for one (model, GPU) pair.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Seconds per step as a function of batch *TFLOPs* (mask-aware).
    pub comp: LinearRegression,
    /// Seconds per step as a function of cache *GiB* loaded.
    pub load: LinearRegression,
}

impl LatencyModel {
    /// Predicted compute latency of a mask-aware step over `batch`.
    pub fn predict_compute(&self, cost: &CostModel, batch: &[BatchItem]) -> SimDuration {
        let tflops = batch_step_tflops(cost, batch);
        SimDuration::from_secs_f64(self.comp.predict(tflops).max(0.0))
    }

    /// Predicted load latency of a mask-aware step over `batch`.
    pub fn predict_load(&self, cost: &CostModel, batch: &[BatchItem]) -> SimDuration {
        let gib = batch_step_load_gib(cost, batch);
        SimDuration::from_secs_f64(self.load.predict(gib).max(0.0))
    }
}

/// Mask-aware step TFLOPs of a batch (Y variant, all blocks cached).
pub fn batch_step_tflops(cost: &CostModel, batch: &[BatchItem]) -> f64 {
    batch
        .iter()
        .map(|i| flops::step_flops_masked_y(&cost.model, 1, i.mask_ratio) as f64)
        .sum::<f64>()
        / 1e12
}

/// Cache bytes (GiB) a batch loads per step.
pub fn batch_step_load_gib(cost: &CostModel, batch: &[BatchItem]) -> f64 {
    batch
        .iter()
        .map(|i| cost.cache_bytes_per_step(i.mask_ratio) as f64)
        .sum::<f64>()
        / (1u64 << 30) as f64
}

/// `(x, y)` training points of one regression signal.
pub type FitPoints = Vec<(f64, f64)>;

/// Profiles the cost model across mask ratios and batch sizes and fits
/// the regression models.
///
/// Returns the fitted models together with their training sets (for
/// the Fig. 11 visualization).
///
/// # Errors
///
/// Returns [`ServingError::InvalidConfig`] if the fits degenerate
/// (should not happen for sane cost models).
pub fn fit_latency_model(cost: &CostModel) -> Result<(LatencyModel, FitPoints, FitPoints)> {
    let ratios = [0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8];
    let batches = [1usize, 2, 4, 6, 8];
    let mut comp_points = Vec::new();
    let mut load_points = Vec::new();
    for &b in &batches {
        for &m in &ratios {
            let batch = vec![BatchItem { mask_ratio: m }; b];
            // Profile the pure compute latency (all blocks cached, no
            // pipeline) and the pure load latency, the two signals
            // Algorithm 2's models estimate.
            let costs = cost.mask_aware_block_costs(&batch, false);
            let compute = costs.compute_cached.as_secs_f64() * cost.model.blocks as f64;
            let load = costs.load.as_secs_f64() * cost.model.blocks as f64;
            comp_points.push((batch_step_tflops(cost, &batch), compute));
            load_points.push((batch_step_load_gib(cost, &batch), load));
        }
    }
    let comp = LinearRegression::fit(&comp_points).ok_or_else(|| ServingError::InvalidConfig {
        reason: "compute-latency fit degenerate".into(),
    })?;
    let load = LinearRegression::fit(&load_points).ok_or_else(|| ServingError::InvalidConfig {
        reason: "load-latency fit degenerate".into(),
    })?;
    Ok((LatencyModel { comp, load }, comp_points, load_points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuSpec;
    use fps_diffusion::ModelConfig;

    fn cm() -> CostModel {
        CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl())
    }

    #[test]
    fn fits_have_high_r2() {
        // Fig. 11 reports R² = 0.99; the load model is exactly linear
        // and the compute model is near-linear (occupancy bends it
        // slightly).
        let (model, comp_pts, load_pts) = fit_latency_model(&cm()).unwrap();
        assert!(model.comp.r2 > 0.9, "comp R² {}", model.comp.r2);
        assert!(model.load.r2 > 0.999, "load R² {}", model.load.r2);
        assert!(comp_pts.len() >= 40);
        assert!(load_pts.len() >= 40);
    }

    #[test]
    fn predictions_track_the_cost_model() {
        let cost = cm();
        let (model, _, _) = fit_latency_model(&cost).unwrap();
        let batch = vec![BatchItem { mask_ratio: 0.25 }; 4];
        let costs = cost.mask_aware_block_costs(&batch, false);
        let actual_compute = costs.compute_cached.as_secs_f64() * cost.model.blocks as f64;
        let predicted = model.predict_compute(&cost, &batch).as_secs_f64();
        let rel = (predicted - actual_compute).abs() / actual_compute;
        assert!(rel < 0.35, "relative error {rel}");
        let actual_load = costs.load.as_secs_f64() * cost.model.blocks as f64;
        let predicted_load = model.predict_load(&cost, &batch).as_secs_f64();
        let rel = (predicted_load - actual_load).abs() / actual_load.max(1e-9);
        assert!(rel < 0.05, "load relative error {rel}");
    }

    #[test]
    fn predictions_grow_with_load() {
        let cost = cm();
        let (model, _, _) = fit_latency_model(&cost).unwrap();
        let small = vec![BatchItem { mask_ratio: 0.1 }];
        let large = vec![BatchItem { mask_ratio: 0.5 }; 6];
        assert!(model.predict_compute(&cost, &large) > model.predict_compute(&cost, &small));
        assert!(model.predict_load(&cost, &large) > model.predict_load(&cost, &small));
    }

    #[test]
    fn tflop_and_gib_helpers_scale_linearly_in_batch() {
        let cost = cm();
        let one = vec![BatchItem { mask_ratio: 0.2 }];
        let four = vec![BatchItem { mask_ratio: 0.2 }; 4];
        assert!(
            (batch_step_tflops(&cost, &four) - 4.0 * batch_step_tflops(&cost, &one)).abs() < 1e-9
        );
        assert!(
            (batch_step_load_gib(&cost, &four) - 4.0 * batch_step_load_gib(&cost, &one)).abs()
                < 1e-9
        );
    }
}
