//! Overload wiring for the cluster simulator.
//!
//! `fps-overload` supplies the mechanisms (token bucket, hysteretic
//! ladder, circuit breaker); this module binds them to the serving
//! domain: rungs map to concrete [`EngineKind`]s, queue pressure is
//! estimated from the [`CostModel`]'s step-latency predictions, and
//! the whole bundle hangs off [`ClusterConfig::overload`].
//!
//! [`ClusterConfig::overload`]: crate::cluster::ClusterConfig

use fps_overload::{
    AdmissionConfig, AdmissionController, BreakerConfig, CircuitBreaker, LadderConfig,
    LadderController, Rung,
};
use fps_simtime::SimDuration;

use crate::cost::{BatchItem, CostModel};
use crate::engine::EngineKind;

/// Engine a degradation rung serves with. The mapping is absolute —
/// rung 0 *is* the premium FlashPS-kv configuration — so clusters that
/// enable overload control should configure their base engine as
/// `FlashPs { kv: true }` if they want zero-pressure service identical
/// to rung 0.
pub fn rung_engine(rung: Rung) -> EngineKind {
    match rung {
        Rung::FlashPsKv => EngineKind::FlashPs { kv: true },
        Rung::FlashPs => EngineKind::FlashPs { kv: false },
        Rung::TeaCacheHigh | Rung::TeaCacheLow | Rung::ReducedSteps => EngineKind::TeaCache {
            compute_fraction: rung.compute_fraction() as f64,
        },
    }
}

/// Denoising steps a rung serves with, given the model's full
/// schedule (only the deepest rung shortens it).
pub fn rung_steps(rung: Rung, full_steps: usize) -> usize {
    ((full_steps as f64) * rung.steps_factor()).round().max(1.0) as usize
}

/// Overload-control configuration for a cluster run.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Admission gates (rate, queue depth, feasibility).
    pub admission: AdmissionConfig,
    /// Degradation-ladder thresholds and damping.
    pub ladder: LadderConfig,
    /// Circuit breaker guarding the activation-store read path.
    pub breaker: BreakerConfig,
    /// SLO deadline: normalizes queue pressure, bounds the feasibility
    /// gate, and sheds requests still queued when it elapses.
    pub deadline: SimDuration,
}

impl OverloadConfig {
    /// Derive a config from the cluster shape and cost model.
    ///
    /// `mask_ratio` is the typical mask ratio of the offered load (the
    /// trace mean); it sizes the step-latency estimates that the
    /// admission rate and pressure model are built on.
    pub fn for_cluster(
        cost: &CostModel,
        workers: usize,
        max_batch: usize,
        mask_ratio: f64,
        deadline: SimDuration,
    ) -> Self {
        let wave = wave_secs(
            cost,
            rung_engine(Rung::FlashPsKv),
            max_batch,
            mask_ratio,
            cost.model.steps,
        );
        let capacity = workers.max(1) * max_batch.max(1);
        Self {
            admission: AdmissionConfig::for_capacity(capacity, wave, deadline.as_secs_f64()),
            ladder: LadderConfig::default(),
            breaker: BreakerConfig::default(),
            deadline,
        }
    }
}

/// Seconds for one full service wave: a `max_batch`-sized batch of
/// `mask_ratio` edits through `steps` denoising steps on `engine`.
pub fn wave_secs(
    cost: &CostModel,
    engine: EngineKind,
    max_batch: usize,
    mask_ratio: f64,
    steps: usize,
) -> f64 {
    let items = vec![BatchItem { mask_ratio }; max_batch.max(1)];
    engine.step_latency(cost, &items).as_secs_f64() * steps as f64
}

/// Live overload state carried by a cluster run.
#[derive(Debug)]
pub struct OverloadState {
    /// The config the state was built from.
    pub config: OverloadConfig,
    /// Token bucket + queue/feasibility gates.
    pub admission: AdmissionController,
    /// Hysteretic rung selector.
    pub ladder: LadderController,
    /// Breaker on the activation-store read path.
    pub breaker: CircuitBreaker,
    /// Seconds per service wave at the premium rung.
    pub wave_base: f64,
    /// Seconds per service wave at the cheapest rung (feasibility
    /// floor: TeaCache-low with the reduced step schedule).
    pub wave_floor: f64,
}

impl OverloadState {
    /// Build run state: wave estimates come from the cost model at the
    /// offered load's typical `mask_ratio`.
    pub fn new(
        config: OverloadConfig,
        cost: &CostModel,
        max_batch: usize,
        mask_ratio: f64,
    ) -> Self {
        let steps = cost.model.steps;
        let wave_base = wave_secs(
            cost,
            rung_engine(Rung::FlashPsKv),
            max_batch,
            mask_ratio,
            steps,
        );
        let wave_floor = wave_secs(
            cost,
            rung_engine(Rung::ReducedSteps),
            max_batch,
            mask_ratio,
            rung_steps(Rung::ReducedSteps, steps),
        );
        Self {
            admission: AdmissionController::new(config.admission.clone()),
            ladder: LadderController::new(config.ladder.clone()),
            breaker: CircuitBreaker::new(config.breaker.clone()),
            config,
            wave_base,
            wave_floor,
        }
    }

    /// Estimated completion seconds for a request arriving with
    /// `outstanding` requests ahead of it over `capacity` concurrent
    /// slots, at a given per-wave cost.
    pub fn est_completion_secs(&self, outstanding: usize, capacity: usize, wave: f64) -> f64 {
        let cap = capacity.max(1) as f64;
        (outstanding as f64 / cap + 1.0) * wave
    }

    /// Queue pressure: predicted completion time at the *current* rung
    /// over the SLO deadline. 1.0 means the backlog already consumes
    /// the whole deadline.
    pub fn pressure(&self, outstanding: usize, capacity: usize) -> f64 {
        let deadline = self.config.deadline.as_secs_f64().max(1e-9);
        self.est_completion_secs(outstanding, capacity, self.wave_base) / deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::GpuSpec;
    use fps_diffusion::ModelConfig;

    fn cm() -> CostModel {
        CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl())
    }

    #[test]
    fn rung_engines_follow_the_ladder() {
        assert_eq!(
            rung_engine(Rung::FlashPsKv),
            EngineKind::FlashPs { kv: true }
        );
        assert_eq!(
            rung_engine(Rung::FlashPs),
            EngineKind::FlashPs { kv: false }
        );
        match rung_engine(Rung::TeaCacheHigh) {
            EngineKind::TeaCache { compute_fraction } => {
                assert!((compute_fraction - 0.6).abs() < 1e-6)
            }
            other => panic!("expected teacache, got {other:?}"),
        }
        match rung_engine(Rung::ReducedSteps) {
            EngineKind::TeaCache { compute_fraction } => {
                assert!((compute_fraction - 0.35).abs() < 1e-6)
            }
            other => panic!("expected teacache, got {other:?}"),
        }
    }

    #[test]
    fn only_the_deepest_rung_cuts_steps() {
        assert_eq!(rung_steps(Rung::FlashPsKv, 50), 50);
        assert_eq!(rung_steps(Rung::TeaCacheLow, 50), 50);
        assert_eq!(rung_steps(Rung::ReducedSteps, 50), 30);
        assert_eq!(rung_steps(Rung::ReducedSteps, 1), 1, "never below one");
    }

    #[test]
    fn derived_config_and_pressure_are_consistent() {
        let cost = cm();
        let deadline = SimDuration::from_secs_f64(30.0);
        let cfg = OverloadConfig::for_cluster(&cost, 2, 8, 0.2, deadline);
        assert!(cfg.admission.rate_per_sec > 0.0);
        let state = OverloadState::new(cfg, &cost, 8, 0.2);
        assert!(state.wave_base > 0.0);
        assert!(
            state.wave_floor < state.wave_base,
            "cheapest rung must be cheaper per wave: floor {} vs base {}",
            state.wave_floor,
            state.wave_base
        );
        // Pressure grows monotonically with backlog.
        let p0 = state.pressure(0, 16);
        let p1 = state.pressure(16, 16);
        let p2 = state.pressure(64, 16);
        assert!(p0 < p1 && p1 < p2);
        // An empty cluster's pressure is one wave over the deadline.
        assert!((p0 - state.wave_base / 30.0).abs() < 1e-12);
    }
}
