//! Overload control for the FlashPS serving stack.
//!
//! FlashPS's continuous batching and mask-aware load balancing (§5)
//! assume the cluster can absorb the offered load. This crate supplies
//! the three mechanisms that make behavior under *unabsorbable* load
//! deliberate instead of emergent:
//!
//! - [`admission`] — a deterministic token bucket plus queue-depth and
//!   deadline-feasibility checks, so infeasible requests are shed at
//!   submit time instead of timing out in the queue.
//! - [`ladder`] — a graceful-degradation ladder: an ordered set of
//!   quality/latency rungs (FlashPS-kv → FlashPS → TeaCache at
//!   decreasing `compute_fraction` → reduced denoising steps) driven
//!   by queue pressure, with hysteresis and a minimum dwell so the
//!   controller does not flap.
//! - [`breaker`] — a circuit breaker (Closed → Open → HalfOpen) for
//!   the mask-cache read path: repeated checksum failures or slow disk
//!   reads trip it to full recompute; half-open probes re-heal it.
//!
//! Everything in this crate is clock-generic: policies are driven by
//! explicit [`fps_simtime`] stamps and contain no hidden entropy, so
//! the same inputs always produce the same decisions. A [`TimeSource`]
//! names where those stamps come from — supplied by a discrete-event
//! simulator ([`TimeSource::Virtual`]) or derived from a monotonic
//! wall-clock epoch ([`TimeSource::Wall`]) — which is what lets one
//! control plane drive both the simulator and the threaded server,
//! and lets the chaos harness replay overload scenarios
//! byte-identically.

pub mod admission;
pub mod breaker;
pub mod ladder;
pub mod time;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionVerdict, ShedCause, TokenBucket,
};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use ladder::{LadderConfig, LadderController, Rung};
pub use time::TimeSource;
