//! Circuit breaker for the mask-cache read path.
//!
//! The per-read fallback in `fps-maskcache` (verify checksum, recompute
//! on mismatch) is correct but stateless: under a persistently corrupt
//! or brown-out disk every read still pays the serialized disk fetch
//! before discovering it must recompute. The breaker adds state:
//!
//! ```text
//!            failures >= threshold
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapsed
//!     │ probe succeeds                  ▼
//!     └────────────────────────────  HalfOpen
//!                 probe fails ──────────┘ (back to Open)
//! ```
//!
//! While Open, reads short-circuit to full recompute without touching
//! the disk at all. After a cooldown the breaker admits a single probe
//! read (HalfOpen); a healthy probe re-closes it, a failed probe
//! re-opens it for another cooldown. Failures are either verification
//! failures (missing/corrupt entries) or reads slower than the
//! configured threshold — a disk in brown-out is as useless as a
//! corrupt one when recompute is faster.

use fps_simtime::{SimDuration, SimTime};

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long the breaker stays Open before admitting a probe.
    pub cooldown: SimDuration,
    /// A successful read slower than this counts as a failure.
    pub slow_read_threshold: SimDuration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs_f64(15.0),
            slow_read_threshold: SimDuration::from_secs_f64(2.0),
        }
    }
}

/// Breaker state, exposed for reports and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all reads pass through.
    Closed,
    /// Tripped: reads short-circuit to recompute until the cooldown
    /// expires.
    Open,
    /// Cooldown expired: exactly one probe read is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Stateful circuit breaker; all transitions are driven by explicit
/// timestamps so behavior is deterministic under replay.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    probe_in_flight: bool,
    trips: u64,
    short_circuits: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            probe_in_flight: false,
            trips: 0,
            short_circuits: 0,
        }
    }

    /// Current state as of `now` (resolves Open → HalfOpen when the
    /// cooldown has elapsed, without consuming the probe slot).
    pub fn state(&mut self, now: SimTime) -> BreakerState {
        if self.state == BreakerState::Open && now.since(self.opened_at) >= self.config.cooldown {
            self.state = BreakerState::HalfOpen;
            self.probe_in_flight = false;
        }
        self.state
    }

    /// Whether a read may go to the cache at `now`. Closed: always.
    /// Open: never (the caller should recompute). HalfOpen: exactly
    /// one probe until its outcome is recorded.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state(now) {
            BreakerState::Closed => true,
            BreakerState::Open => {
                self.short_circuits += 1;
                false
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    self.short_circuits += 1;
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// Record a healthy read (verified, and faster than the slow-read
    /// threshold).
    pub fn record_success(&mut self, now: SimTime) {
        match self.state(now) {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
                self.probe_in_flight = false;
            }
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::Open => {}
        }
    }

    /// Record a failed read: verification failure or a read slower
    /// than the threshold.
    pub fn record_failure(&mut self, now: SimTime) {
        match self.state(now) {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Convenience: classify a completed read by duration and verify
    /// outcome, and record it.
    pub fn record_read(&mut self, now: SimTime, duration: SimDuration, verified: bool) {
        if verified && duration <= self.config.slow_read_threshold {
            self.record_success(now);
        } else {
            self.record_failure(now);
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.consecutive_failures = 0;
        self.probe_in_flight = false;
        self.trips += 1;
    }

    /// Times the breaker has tripped to Open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Reads short-circuited to recompute while Open/HalfOpen.
    pub fn short_circuits(&self) -> u64 {
        self.short_circuits
    }

    /// Config the breaker was built with.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9) as u64)
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs_f64(10.0),
            slow_read_threshold: SimDuration::from_secs_f64(1.0),
        })
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = breaker();
        b.record_failure(at(0.0));
        b.record_failure(at(0.1));
        b.record_success(at(0.2)); // resets the streak
        b.record_failure(at(0.3));
        b.record_failure(at(0.4));
        assert_eq!(b.state(at(0.5)), BreakerState::Closed);
        b.record_failure(at(0.5));
        assert_eq!(b.state(at(0.6)), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_short_circuits_until_cooldown_then_probes() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i as f64 * 0.1));
        }
        assert!(!b.allow(at(1.0)), "open: no reads");
        assert!(!b.allow(at(5.0)));
        assert_eq!(b.short_circuits(), 2);
        // Cooldown from trip time (0.2s) elapses at 10.2s.
        assert_eq!(b.state(at(10.3)), BreakerState::HalfOpen);
        assert!(b.allow(at(10.3)), "one probe admitted");
        assert!(!b.allow(at(10.4)), "second read waits on the probe");
    }

    #[test]
    fn probe_success_recloses_probe_failure_reopens() {
        let mut b = breaker();
        for i in 0..3 {
            b.record_failure(at(i as f64 * 0.1));
        }
        assert!(b.allow(at(11.0)));
        b.record_failure(at(11.1));
        assert_eq!(b.state(at(11.2)), BreakerState::Open, "probe failed");
        assert_eq!(b.trips(), 2);
        // Next cooldown window: probe succeeds, breaker heals.
        assert!(b.allow(at(22.0)));
        b.record_success(at(22.1));
        assert_eq!(b.state(at(22.2)), BreakerState::Closed);
        assert!(b.allow(at(22.3)), "healed: reads flow again");
    }

    #[test]
    fn slow_reads_count_as_failures() {
        let mut b = breaker();
        for i in 0..3 {
            let t = at(i as f64);
            assert!(b.allow(t));
            b.record_read(t, SimDuration::from_secs_f64(3.0), true);
        }
        assert_eq!(b.state(at(3.0)), BreakerState::Open);
        // Fast verified reads would not have tripped it.
        let mut healthy = breaker();
        for i in 0..10 {
            let t = at(i as f64);
            healthy.record_read(t, SimDuration::from_millis(5), true);
        }
        assert_eq!(healthy.state(at(20.0)), BreakerState::Closed);
    }
}
