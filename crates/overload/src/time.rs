//! Clock abstraction shared by the control plane's two execution
//! planes.
//!
//! Every policy component in this crate ([`AdmissionController`],
//! [`LadderController`], [`CircuitBreaker`]) is driven by explicit
//! [`SimTime`] stamps rather than by reading a global clock. That
//! makes the policies clock-generic: the discrete-event simulator
//! hands them virtual nanoseconds, while a wall-clock server derives
//! the same `SimTime` domain from a process-local epoch. `TimeSource`
//! names which derivation is in effect so a control plane can be
//! built once and embedded in either plane.
//!
//! The two variants mirror fps-trace's dual-clock `Clock::{Virtual,
//! Wall}`: [`TimeSource::clock_label`] returns the same labels
//! (`"virtual"` / `"wall"`) so decision events and trace spans agree
//! on the clock domain they were stamped in.
//!
//! [`AdmissionController`]: crate::admission::AdmissionController
//! [`LadderController`]: crate::ladder::LadderController
//! [`CircuitBreaker`]: crate::breaker::CircuitBreaker

use std::time::Instant;

use fps_simtime::SimTime;

/// Where a control plane's `SimTime` stamps come from.
///
/// `Virtual` planes are driven by a discrete-event loop that computes
/// every stamp itself and passes it in explicitly; asking a virtual
/// source for "now" is a logic error and panics (mirroring
/// fps-trace's `TraceSink::now_ns`). `Wall` planes derive stamps from
/// a monotonic process-local epoch, so `now()` is total.
#[derive(Debug, Clone, Copy)]
pub enum TimeSource {
    /// Virtual time: stamps are supplied by a simulator event loop.
    Virtual,
    /// Wall time: stamps are nanoseconds since `epoch`.
    Wall {
        /// The instant that maps to `SimTime::ZERO`.
        epoch: Instant,
    },
}

impl TimeSource {
    /// A virtual-clock source for discrete-event simulation.
    pub fn virtual_clock() -> Self {
        TimeSource::Virtual
    }

    /// A wall-clock source whose epoch is the moment of this call.
    pub fn wall() -> Self {
        TimeSource::Wall {
            epoch: Instant::now(),
        }
    }

    /// Whether this source derives stamps from the wall clock.
    pub fn is_wall(&self) -> bool {
        matches!(self, TimeSource::Wall { .. })
    }

    /// The clock-domain label, matching fps-trace's `Clock::label`
    /// (`"virtual"` / `"wall"`).
    pub fn clock_label(&self) -> &'static str {
        match self {
            TimeSource::Virtual => "virtual",
            TimeSource::Wall { .. } => "wall",
        }
    }

    /// The current stamp.
    ///
    /// # Panics
    ///
    /// Panics on [`TimeSource::Virtual`]: virtual stamps exist only
    /// inside the simulator's event loop, which must pass them in
    /// explicitly.
    pub fn now(&self) -> SimTime {
        match self {
            TimeSource::Virtual => panic!(
                "TimeSource::now() called on a virtual clock; the \
                 simulator must supply explicit SimTime stamps"
            ),
            TimeSource::Wall { epoch } => SimTime::from_nanos(epoch.elapsed().as_nanos() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_source_advances_monotonically() {
        let src = TimeSource::wall();
        assert!(src.is_wall());
        assert_eq!(src.clock_label(), "wall");
        let a = src.now();
        let b = src.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_source_labels_match_trace_clock() {
        let src = TimeSource::virtual_clock();
        assert!(!src.is_wall());
        assert_eq!(src.clock_label(), "virtual");
    }

    #[test]
    #[should_panic(expected = "virtual clock")]
    fn virtual_source_panics_on_now() {
        TimeSource::virtual_clock().now();
    }
}
