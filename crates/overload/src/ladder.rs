//! The graceful-degradation ladder.
//!
//! Under overload, serving *something* cheaper beats serving nothing:
//! the ladder maps queue pressure onto an ordered set of quality/
//! latency rungs. Rung 0 is the premium configuration (FlashPS with
//! KV-cache reuse); each step down trades output quality for compute
//! — first dropping KV reuse, then engaging TeaCache-style step
//! skipping at decreasing `compute_fraction` (the §6.1 dial), and
//! finally reducing the denoising step count outright.
//!
//! The controller is hysteretic and dwell-limited: it degrades
//! immediately (possibly several rungs at once) when pressure crosses
//! an enter threshold, but recovers one rung at a time, only after a
//! minimum dwell, and only once pressure has fallen a margin *below*
//! the threshold it entered at. Without both guards the ladder flaps
//! on every queue oscillation and the served quality becomes noise.

use fps_simtime::{SimDuration, SimTime};

/// One rung of the degradation ladder, in decreasing quality order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// FlashPS with KV-cache reuse — the premium serving path.
    FlashPsKv,
    /// FlashPS without KV reuse: halves cache-load bytes per step.
    FlashPs,
    /// TeaCache at a high compute fraction (mild step skipping).
    TeaCacheHigh,
    /// TeaCache at a low compute fraction (aggressive skipping).
    TeaCacheLow,
    /// TeaCache at the low fraction plus a reduced denoising step
    /// count — the cheapest service the ladder will offer before the
    /// admission layer sheds outright.
    ReducedSteps,
}

impl Rung {
    /// All rungs, best quality first.
    pub const ALL: [Rung; 5] = [
        Rung::FlashPsKv,
        Rung::FlashPs,
        Rung::TeaCacheHigh,
        Rung::TeaCacheLow,
        Rung::ReducedSteps,
    ];

    /// Ladder index: 0 is premium, 4 is cheapest.
    pub fn level(self) -> usize {
        match self {
            Rung::FlashPsKv => 0,
            Rung::FlashPs => 1,
            Rung::TeaCacheHigh => 2,
            Rung::TeaCacheLow => 3,
            Rung::ReducedSteps => 4,
        }
    }

    /// Rung at ladder index `level`, clamped to the cheapest rung.
    pub fn from_level(level: usize) -> Rung {
        *Rung::ALL.get(level).unwrap_or(&Rung::ReducedSteps)
    }

    /// Stable label for reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            Rung::FlashPsKv => "flashps-kv",
            Rung::FlashPs => "flashps",
            Rung::TeaCacheHigh => "teacache-0.6",
            Rung::TeaCacheLow => "teacache-0.35",
            Rung::ReducedSteps => "reduced-steps",
        }
    }

    /// TeaCache `compute_fraction` for the rung (1.0 where the engine
    /// computes every step).
    pub fn compute_fraction(self) -> f32 {
        match self {
            Rung::FlashPsKv | Rung::FlashPs => 1.0,
            Rung::TeaCacheHigh => 0.6,
            Rung::TeaCacheLow | Rung::ReducedSteps => 0.35,
        }
    }

    /// Multiplier on the denoising step count (only the last rung
    /// shortens the schedule itself).
    pub fn steps_factor(self) -> f64 {
        match self {
            Rung::ReducedSteps => 0.6,
            _ => 1.0,
        }
    }
}

/// Thresholds and damping for the ladder controller.
#[derive(Debug, Clone)]
pub struct LadderConfig {
    /// Pressure at which the ladder enters rung `i + 1` (four entries
    /// for the five rungs). Pressure is dimensionless: predicted
    /// completion time over the SLO deadline, so 1.0 means "the
    /// backlog already spends the whole deadline".
    pub enter: [f64; 4],
    /// Recovery margin in (0, 1): to climb from rung `i + 1` back to
    /// `i`, pressure must fall below `enter[i] × recover_margin`.
    pub recover_margin: f64,
    /// Minimum time between rung changes in either direction.
    pub min_dwell: SimDuration,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            // Degrade when the backlog consumes 50/70/85/95% of the
            // deadline: the cheaper the service, the longer we hold
            // out before engaging it.
            enter: [0.5, 0.7, 0.85, 0.95],
            recover_margin: 0.7,
            min_dwell: SimDuration::from_secs_f64(2.0),
        }
    }
}

/// Hysteretic rung selector.
#[derive(Debug, Clone)]
pub struct LadderController {
    config: LadderConfig,
    level: usize,
    last_change: SimTime,
    transitions: u64,
}

impl LadderController {
    /// Controller starting at the premium rung.
    pub fn new(config: LadderConfig) -> Self {
        Self {
            config,
            level: 0,
            last_change: SimTime::ZERO,
            transitions: 0,
        }
    }

    /// Rung the controller currently sits at.
    pub fn rung(&self) -> Rung {
        Rung::from_level(self.level)
    }

    /// Rung changes made so far (degradations and recoveries).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Level the given pressure maps to, ignoring hysteresis.
    fn target_level(&self, pressure: f64) -> usize {
        self.config
            .enter
            .iter()
            .take_while(|&&t| pressure >= t)
            .count()
    }

    /// Observe current pressure at `now` and return the rung to serve
    /// new work at. Degrades immediately (several rungs if pressure
    /// warrants), recovers one rung per dwell period and only once
    /// pressure has fallen below the entered threshold by the
    /// configured margin.
    pub fn observe(&mut self, pressure: f64, now: SimTime) -> Rung {
        let dwelled = now.since(self.last_change) >= self.config.min_dwell;
        let target = self.target_level(pressure);
        if target > self.level {
            // Degrading: act immediately; a flood does not wait out a
            // dwell timer. Jump straight to the indicated rung.
            self.level = target;
            self.last_change = now;
            self.transitions += 1;
        } else if target < self.level && dwelled {
            // Recovering: one rung at a time, and only if pressure is
            // comfortably below the threshold we entered this rung at.
            let entered_at = self.config.enter[self.level - 1];
            if pressure < entered_at * self.config.recover_margin {
                self.level -= 1;
                self.last_change = now;
                self.transitions += 1;
            }
        }
        self.rung()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9) as u64)
    }

    #[test]
    fn rung_order_and_labels_are_stable() {
        for (i, r) in Rung::ALL.iter().enumerate() {
            assert_eq!(r.level(), i);
            assert_eq!(Rung::from_level(i), *r);
        }
        assert_eq!(Rung::from_level(99), Rung::ReducedSteps);
        assert!(Rung::FlashPsKv < Rung::ReducedSteps);
        assert_eq!(Rung::TeaCacheHigh.compute_fraction(), 0.6);
        assert_eq!(Rung::ReducedSteps.steps_factor(), 0.6);
    }

    #[test]
    fn degrades_immediately_and_multiple_rungs() {
        let mut l = LadderController::new(LadderConfig::default());
        assert_eq!(l.observe(0.1, SimTime::ZERO), Rung::FlashPsKv);
        // A pressure spike crosses three thresholds at once.
        assert_eq!(l.observe(0.9, at(0.1)), Rung::TeaCacheLow);
        assert_eq!(l.observe(1.5, at(0.2)), Rung::ReducedSteps);
    }

    #[test]
    fn recovery_is_slow_and_hysteretic() {
        let cfg = LadderConfig::default();
        let margin = cfg.recover_margin;
        let mut l = LadderController::new(cfg);
        l.observe(0.75, SimTime::ZERO);
        assert_eq!(l.rung(), Rung::TeaCacheHigh);
        // Below margin but before the dwell elapses: still held.
        let low = 0.7 * margin - 0.05;
        assert_eq!(l.observe(low, at(1.0)), Rung::TeaCacheHigh);
        // Pressure drops below the enter threshold but not below the
        // hysteresis margin: no recovery even after the dwell.
        assert_eq!(l.observe(0.69, at(10.0)), Rung::TeaCacheHigh);
        // Below margin and dwelled: one rung per dwell period.
        assert_eq!(l.observe(low, at(13.0)), Rung::FlashPs);
        assert_eq!(l.observe(0.0, at(13.5)), Rung::FlashPs, "dwell re-arms");
        assert_eq!(l.observe(0.0, at(16.0)), Rung::FlashPsKv);
    }

    #[test]
    fn oscillating_pressure_does_not_flap() {
        // Pressure oscillates tightly around the first threshold; the
        // hysteresis band means the ladder degrades once and holds.
        let mut l = LadderController::new(LadderConfig::default());
        let mut changes = 0;
        let mut prev = l.rung();
        for i in 0..200 {
            let t = at(i as f64 * 0.1);
            let p = if i % 2 == 0 { 0.52 } else { 0.48 };
            let r = l.observe(p, t);
            if r != prev {
                changes += 1;
                prev = r;
            }
        }
        assert_eq!(changes, 1, "one degradation, then stable");
        assert_eq!(l.rung(), Rung::FlashPs);
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut l = LadderController::new(LadderConfig::default());
            (0..100)
                .map(|i| {
                    let p = ((i * 37) % 100) as f64 / 60.0;
                    l.observe(p, at(i as f64 * 0.5)).level()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
