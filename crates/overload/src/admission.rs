//! SLO-aware admission control: token-bucket rate limiting plus
//! queue-depth and deadline-feasibility checks at submit time.
//!
//! The admission controller answers one question per arriving request:
//! *can this request plausibly finish inside its SLO if we accept it?*
//! Three independent gates, checked in order:
//!
//! 1. **Rate** — a token bucket sized from the cluster's sustainable
//!    throughput. Sustained arrival above capacity is shed here before
//!    it ever queues.
//! 2. **Queue depth** — a hard cap on outstanding work. Queues beyond
//!    a few service waves only add latency, never goodput.
//! 3. **Feasibility** — a cost-model estimate of completion time given
//!    the current backlog; if even the cheapest degradation rung would
//!    blow the deadline, the request is shed immediately rather than
//!    rejected after the deadline has already passed.
//!
//! All state advances on explicit [`SimTime`] stamps, so decisions are
//! deterministic and replayable.

use fps_simtime::SimTime;

/// Why a request was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedCause {
    /// The token bucket was empty: sustained arrival rate above the
    /// cluster's provisioned capacity.
    RateLimited,
    /// Outstanding work already exceeds the configured queue cap.
    QueueFull,
    /// The backlog-aware completion estimate exceeds the deadline even
    /// at the cheapest degradation rung.
    Infeasible,
}

impl ShedCause {
    /// Stable label for reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            ShedCause::RateLimited => "rate-limited",
            ShedCause::QueueFull => "queue-full",
            ShedCause::Infeasible => "infeasible",
        }
    }
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Accept the request into the queue.
    Admit,
    /// Shed the request immediately.
    Shed(ShedCause),
}

impl AdmissionVerdict {
    /// Whether the verdict admits the request.
    pub fn admitted(self) -> bool {
        matches!(self, AdmissionVerdict::Admit)
    }
}

/// A deterministic token bucket over simulated (or wall-clock-derived)
/// nanosecond timestamps.
///
/// Tokens refill continuously at `rate_per_sec` up to `burst`; each
/// admitted request consumes one token. Fractional token state is kept
/// in f64 — at the rates involved (requests per second, not per
/// nanosecond) the precision loss is far below one token per run.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket holding `burst` tokens, refilling at `rate_per_sec`,
    /// starting full at time zero.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        Self {
            rate_per_sec: rate_per_sec.max(0.0),
            burst: burst.max(1.0),
            tokens: burst.max(1.0),
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now.as_nanos() <= self.last_refill.as_nanos() {
            return;
        }
        let elapsed = now.since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate_per_sec).min(self.burst);
        self.last_refill = now;
    }

    /// Take one token if available; returns whether the take succeeded.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// Configuration for the admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Token refill rate: the sustainable request rate the cluster is
    /// provisioned for (usually capacity × a small headroom factor).
    pub rate_per_sec: f64,
    /// Bucket depth: how large a burst is absorbed before shedding.
    pub burst: f64,
    /// Hard cap on outstanding (queued + running) requests.
    pub max_queue_depth: usize,
    /// Deadline used for the feasibility gate, seconds.
    pub deadline_secs: f64,
}

impl AdmissionConfig {
    /// Derive a config from cluster capacity: `capacity` concurrent
    /// slots (workers × max batch), each slot turning over a request
    /// every `service_secs`.
    pub fn for_capacity(capacity: usize, service_secs: f64, deadline_secs: f64) -> Self {
        let cap = capacity.max(1) as f64;
        let service = service_secs.max(1e-9);
        Self {
            // 10% headroom over sustainable throughput: transient
            // excess goes to the queue gate, not the rate gate.
            rate_per_sec: cap / service * 1.1,
            burst: (cap * 2.0).max(4.0),
            // Roughly the work that can still meet the deadline if it
            // all queued at once.
            max_queue_depth: ((deadline_secs / service).ceil() * cap).max(cap) as usize,
            deadline_secs,
        }
    }
}

/// Stateful admission controller combining the three gates.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: TokenBucket,
    admitted: u64,
    shed: u64,
}

impl AdmissionController {
    /// Controller with a full bucket at time zero.
    pub fn new(config: AdmissionConfig) -> Self {
        let bucket = TokenBucket::new(config.rate_per_sec, config.burst);
        Self {
            config,
            bucket,
            admitted: 0,
            shed: 0,
        }
    }

    /// Decide admission for a request arriving at `now` with
    /// `outstanding` requests already in the system and
    /// `est_completion_secs` the backlog-aware completion estimate at
    /// the *cheapest* rung.
    pub fn check(
        &mut self,
        now: SimTime,
        outstanding: usize,
        est_completion_secs: f64,
    ) -> AdmissionVerdict {
        let verdict = if !self.bucket.try_take(now) {
            AdmissionVerdict::Shed(ShedCause::RateLimited)
        } else if outstanding >= self.config.max_queue_depth {
            AdmissionVerdict::Shed(ShedCause::QueueFull)
        } else if est_completion_secs > self.config.deadline_secs {
            AdmissionVerdict::Shed(ShedCause::Infeasible)
        } else {
            AdmissionVerdict::Admit
        };
        match verdict {
            AdmissionVerdict::Admit => self.admitted += 1,
            AdmissionVerdict::Shed(_) => self.shed += 1,
        }
        verdict
    }

    /// Config the controller was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::from_nanos((secs * 1e9) as u64)
    }

    #[test]
    fn bucket_sheds_sustained_excess_but_absorbs_bursts() {
        let mut b = TokenBucket::new(2.0, 4.0);
        // Burst of 4 at t=0 fits the bucket depth.
        for _ in 0..4 {
            assert!(b.try_take(SimTime::ZERO));
        }
        assert!(!b.try_take(SimTime::ZERO), "bucket exhausted");
        // After 1s, 2 tokens refilled.
        assert!(b.try_take(at(1.0)));
        assert!(b.try_take(at(1.0)));
        assert!(!b.try_take(at(1.0)));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(100.0, 3.0);
        assert!((b.available(at(1000.0)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_is_deterministic() {
        let run = || {
            let mut b = TokenBucket::new(1.5, 2.0);
            (0..20)
                .map(|i| b.try_take(at(i as f64 * 0.4)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gates_apply_in_order() {
        let cfg = AdmissionConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
            max_queue_depth: 2,
            deadline_secs: 10.0,
        };
        let mut ac = AdmissionController::new(cfg);
        // Token available, queue fine, feasible.
        assert_eq!(ac.check(SimTime::ZERO, 0, 5.0), AdmissionVerdict::Admit);
        // Bucket drained: rate-limited even though the queue is empty.
        assert_eq!(
            ac.check(SimTime::ZERO, 0, 5.0),
            AdmissionVerdict::Shed(ShedCause::RateLimited)
        );
        // Token back after 1s, but the queue is at the cap.
        assert_eq!(
            ac.check(at(1.0), 2, 5.0),
            AdmissionVerdict::Shed(ShedCause::QueueFull)
        );
        // Token back, queue fine, but completion estimate blows the deadline.
        assert_eq!(
            ac.check(at(2.0), 1, 11.0),
            AdmissionVerdict::Shed(ShedCause::Infeasible)
        );
        assert_eq!(ac.admitted(), 1);
        assert_eq!(ac.shed(), 3);
    }

    #[test]
    fn capacity_derivation_is_sane() {
        let cfg = AdmissionConfig::for_capacity(16, 2.0, 30.0);
        assert!((cfg.rate_per_sec - 8.8).abs() < 1e-9, "16 slots / 2s × 1.1");
        assert!(cfg.burst >= 16.0);
        assert!(cfg.max_queue_depth >= 16);
        // A degenerate cluster still admits something.
        let tiny = AdmissionConfig::for_capacity(0, 0.0, 1.0);
        assert!(tiny.rate_per_sec.is_finite());
        assert!(tiny.max_queue_depth >= 1);
    }
}
