//! The paper's evaluation setups (§6.1): which GPU serves which model
//! and at what batch size.

use fps_diffusion::config::ModelConfig;
use fps_maskcache::store::StoreConfig;
use fps_serving::cost::{CostModel, GpuSpec};
use fps_serving::{ClusterConfig, EngineKind};
use fps_simtime::SimDuration;

use crate::system::SystemKind;

/// One evaluated (model, GPU, batch) configuration.
#[derive(Debug, Clone)]
pub struct EvalSetup {
    /// The analytic model config.
    pub model: ModelConfig,
    /// The GPU serving it.
    pub gpu: GpuSpec,
    /// Maximum batch size (§6.1: 4 for SD2.1 workers, 8 for
    /// SDXL/Flux).
    pub max_batch: usize,
}

/// Returns the paper's three evaluation setups: SD2.1 on A10 (batch
/// 4), SDXL on H800 (batch 8), Flux on H800 (batch 8).
pub fn eval_setup() -> Vec<EvalSetup> {
    vec![
        EvalSetup {
            model: ModelConfig::paper_sd21(),
            gpu: GpuSpec::a10(),
            max_batch: 4,
        },
        EvalSetup {
            model: ModelConfig::paper_sdxl(),
            gpu: GpuSpec::h800(),
            max_batch: 8,
        },
        EvalSetup {
            model: ModelConfig::paper_flux(),
            gpu: GpuSpec::h800(),
            max_batch: 8,
        },
    ]
}

impl EvalSetup {
    /// Cost model of this setup.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.gpu.clone(), self.model.clone())
    }

    /// Cluster configuration for one system on this setup with
    /// `workers` replicas. Returns `None` when the system cannot serve
    /// the model (FISEdit beyond SD2.1) or is not a serving system.
    pub fn cluster_config(&self, system: SystemKind, workers: usize) -> Option<ClusterConfig> {
        if !system.supports(&self.model) {
            return None;
        }
        let engine: EngineKind = system.engine()?;
        // FISEdit OOMs above batch 2 on A10 (§6.2); its engine cap
        // already serializes requests, the batch bound documents the
        // memory limit.
        let max_batch = match system {
            SystemKind::FisEdit => self.max_batch.min(2),
            _ => self.max_batch,
        };
        Some(ClusterConfig {
            cost: self.cost_model(),
            engine,
            batching: system.batching(),
            workers,
            max_batch,
            cpu_workers: 4,
            store: StoreConfig::production_like(),
            scheduler_overhead: SimDuration::from_micros(600),
            overload: None,
            record_decisions: false,
            trace: fps_serving::TraceSink::disabled(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fps_serving::BatchingPolicy;

    #[test]
    fn setups_match_the_paper() {
        let setups = eval_setup();
        assert_eq!(setups.len(), 3);
        assert_eq!(setups[0].gpu.name, "A10");
        assert_eq!(setups[0].max_batch, 4);
        assert_eq!(setups[1].gpu.name, "H800");
        assert_eq!(setups[1].max_batch, 8);
        assert_eq!(setups[2].model.name, "flux");
    }

    #[test]
    fn fisedit_excluded_from_big_models() {
        let setups = eval_setup();
        assert!(setups[0].cluster_config(SystemKind::FisEdit, 2).is_some());
        assert!(setups[1].cluster_config(SystemKind::FisEdit, 2).is_none());
        assert!(setups[2].cluster_config(SystemKind::FisEdit, 2).is_none());
        assert!(setups[0].cluster_config(SystemKind::Naive, 2).is_none());
    }

    #[test]
    fn flashps_config_uses_continuous_batching() {
        let setups = eval_setup();
        let cfg = setups[1].cluster_config(SystemKind::FlashPs, 8).unwrap();
        assert_eq!(cfg.batching, BatchingPolicy::ContinuousDisaggregated);
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.workers, 8);
        let diff = setups[1].cluster_config(SystemKind::Diffusers, 8).unwrap();
        assert_eq!(diff.batching, BatchingPolicy::Static);
    }

    #[test]
    fn fisedit_batch_capped_at_two() {
        let setups = eval_setup();
        let cfg = setups[0].cluster_config(SystemKind::FisEdit, 1).unwrap();
        assert!(cfg.max_batch <= 2);
    }
}
