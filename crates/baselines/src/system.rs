//! The systems under comparison, with their numeric and serving forms.

use fps_diffusion::config::ModelConfig;
use fps_diffusion::pipeline::Strategy;
use fps_serving::{BatchingPolicy, EngineKind};

/// TeaCache's latency/quality knob, configured per §6.1 "to minimize
/// its inference latency while ensuring acceptable image quality": 40%
/// of steps skipped.
pub const TEACACHE_COMPUTE_FRACTION: f64 = 0.6;

/// Step-skip drift threshold giving ≈40% skipped steps on the toy
/// schedule (drift is normalized timestep distance, so a threshold of
/// `k / steps` skips ≈`k-1` of every `k` steps).
pub fn teacache_threshold(steps: usize) -> f32 {
    // Skip roughly 2 of every 5 steps.
    (1.8 / steps.max(1) as f32).min(0.9)
}

/// A serving system in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// HuggingFace Diffusers (the reference for quality).
    Diffusers,
    /// FlashPS with the Y-cache variant.
    FlashPs,
    /// FlashPS with the K/V-cache variant (§3.1 alternative).
    FlashPsKv,
    /// FISEdit sparse editing.
    FisEdit,
    /// TeaCache step skipping.
    TeaCache,
    /// Naive disregard of unmasked regions (Fig. 1-rightmost).
    Naive,
}

impl SystemKind {
    /// All systems compared in the paper's main experiments.
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::Diffusers,
            SystemKind::FisEdit,
            SystemKind::TeaCache,
            SystemKind::FlashPs,
        ]
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Diffusers => "diffusers",
            Self::FlashPs => "flashps",
            Self::FlashPsKv => "flashps-kv",
            Self::FisEdit => "fisedit",
            Self::TeaCache => "teacache",
            Self::Naive => "naive",
        }
    }

    /// Whether the system can serve the given model at all. FISEdit's
    /// sparse kernels only exist for SD2.1 (§2.4, §6.1) — it is
    /// "not compatible with NVIDIA Hopper architecture GPUs" and "does
    /// not support models like SDXL/Flux".
    pub fn supports(&self, model: &ModelConfig) -> bool {
        match self {
            Self::FisEdit => model.name.starts_with("sd2"),
            _ => true,
        }
    }

    /// The numeric editing strategy over the toy pipeline.
    ///
    /// `use_cache` is Algorithm 1's per-block plan for the FlashPS
    /// variants (pass `vec![true; blocks]` to cache everything).
    pub fn numeric_strategy(&self, model: &ModelConfig, use_cache: Option<Vec<bool>>) -> Strategy {
        match self {
            Self::Diffusers => Strategy::FullRecompute,
            Self::FlashPs => Strategy::MaskAware {
                use_cache: use_cache.unwrap_or_else(|| vec![true; model.blocks]),
                kv: false,
            },
            Self::FlashPsKv => Strategy::MaskAware {
                use_cache: use_cache.unwrap_or_else(|| vec![true; model.blocks]),
                kv: true,
            },
            Self::FisEdit => Strategy::MaskedOnly,
            Self::TeaCache => Strategy::StepSkip {
                threshold: teacache_threshold(model.steps),
            },
            Self::Naive => Strategy::NaiveDisregard,
        }
    }

    /// The serving engine for the performance simulator; `None` for
    /// Naive, which is not a serving system.
    pub fn engine(&self) -> Option<EngineKind> {
        match self {
            Self::Diffusers => Some(EngineKind::Diffusers),
            Self::FlashPs => Some(EngineKind::FlashPs { kv: false }),
            Self::FlashPsKv => Some(EngineKind::FlashPs { kv: true }),
            Self::FisEdit => Some(EngineKind::FisEdit),
            Self::TeaCache => Some(EngineKind::TeaCache {
                compute_fraction: TEACACHE_COMPUTE_FRACTION,
            }),
            Self::Naive => None,
        }
    }

    /// The batching policy each system ships with: FlashPS uses
    /// disaggregated continuous batching; every baseline uses static
    /// batching (§6.1).
    pub fn batching(&self) -> BatchingPolicy {
        match self {
            Self::FlashPs | Self::FlashPsKv => BatchingPolicy::ContinuousDisaggregated,
            _ => BatchingPolicy::Static,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = [
            SystemKind::Diffusers,
            SystemKind::FlashPs,
            SystemKind::FlashPsKv,
            SystemKind::FisEdit,
            SystemKind::TeaCache,
            SystemKind::Naive,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let set: std::collections::HashSet<&&str> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn fisedit_model_constraint() {
        assert!(SystemKind::FisEdit.supports(&ModelConfig::sd21_like()));
        assert!(SystemKind::FisEdit.supports(&ModelConfig::paper_sd21()));
        assert!(!SystemKind::FisEdit.supports(&ModelConfig::sdxl_like()));
        assert!(!SystemKind::FisEdit.supports(&ModelConfig::paper_flux()));
        assert!(SystemKind::FlashPs.supports(&ModelConfig::paper_flux()));
    }

    #[test]
    fn numeric_strategies_map_correctly() {
        let cfg = ModelConfig::tiny();
        assert_eq!(
            SystemKind::Diffusers.numeric_strategy(&cfg, None),
            Strategy::FullRecompute
        );
        match SystemKind::FlashPs.numeric_strategy(&cfg, None) {
            Strategy::MaskAware { use_cache, kv } => {
                assert_eq!(use_cache.len(), cfg.blocks);
                assert!(!kv);
            }
            other => panic!("unexpected {other:?}"),
        }
        match SystemKind::FlashPsKv.numeric_strategy(&cfg, Some(vec![true, false])) {
            Strategy::MaskAware { use_cache, kv } => {
                assert_eq!(use_cache, vec![true, false]);
                assert!(kv);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            SystemKind::TeaCache.numeric_strategy(&cfg, None),
            Strategy::StepSkip { .. }
        ));
    }

    #[test]
    fn engines_and_batching() {
        assert!(SystemKind::Naive.engine().is_none());
        assert_eq!(
            SystemKind::FlashPs.batching(),
            BatchingPolicy::ContinuousDisaggregated
        );
        assert_eq!(SystemKind::Diffusers.batching(), BatchingPolicy::Static);
        assert_eq!(SystemKind::TeaCache.batching(), BatchingPolicy::Static);
        assert!(matches!(
            SystemKind::TeaCache.engine(),
            Some(EngineKind::TeaCache { .. })
        ));
    }

    #[test]
    fn teacache_threshold_scales_with_steps() {
        // More steps → smaller per-step drift → smaller threshold.
        assert!(teacache_threshold(50) < teacache_threshold(8));
        assert!(teacache_threshold(0) <= 0.9);
        // On the tiny 4-step schedule the threshold must allow at least
        // one skip (per-step drift is 0.25).
        assert!(teacache_threshold(4) > 0.25);
    }
}
