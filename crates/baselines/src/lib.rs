//! The comparator systems of the FlashPS evaluation (§6.1).
//!
//! Each baseline exists in two forms that share one source of truth,
//! the [`SystemKind`] enum:
//!
//! - a **numeric strategy** over the toy diffusion pipeline
//!   (`fps_diffusion::Strategy`), used by the quality experiments
//!   (Table 2, Fig. 13); and
//! - a **serving configuration** (`fps_serving::EngineKind` + batching
//!   policy), used by the performance experiments (Fig. 12, 14).
//!
//! The constraints the paper documents are encoded here: FISEdit only
//! supports SD2.1-class models, cannot batch heterogeneous masks, and
//! OOMs above batch size 2 on A10; the baselines use static batching
//! and request-level load balancing (§6.1 "we implement static
//! batching and request-level load balancing for these baselines").

pub mod setup;
pub mod system;

pub use setup::{eval_setup, EvalSetup};
pub use system::SystemKind;
