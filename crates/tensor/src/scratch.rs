//! Thread-local scratch-buffer pool for kernel intermediates.
//!
//! A denoise step allocates dozens of short-lived `[L, H]`-sized
//! tensors (normalized activations, Q/K/V projections, attention
//! contexts, FFN intermediates). This module recycles their storage:
//! kernels draw output buffers from [`take`], and the diffusion layer
//! returns dead intermediates with [`Tensor::recycle`], so steady-state
//! forward passes stop hitting the allocator entirely.
//!
//! The pool is thread-local — each serving worker recycles its own
//! buffers with no locking — and deterministic: [`take`] always returns
//! a zero-filled buffer, so a recycled buffer is indistinguishable from
//! a fresh `vec![0.0; n]` and kernel outputs cannot depend on what
//! previously occupied the storage.
//!
//! [`Tensor::recycle`]: crate::Tensor::recycle

use std::cell::RefCell;

/// Maximum number of idle buffers retained per thread. Overflow drops
/// the smallest buffer (the cheapest to re-create).
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Pool> = const {
        RefCell::new(Pool {
            bufs: Vec::new(),
            stats: Stats { hits: 0, misses: 0, returns: 0 },
        })
    };
}

struct Pool {
    bufs: Vec<Vec<f32>>,
    stats: Stats,
}

/// Counters describing the calling thread's scratch pool traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// `take` calls satisfied from a recycled buffer.
    pub hits: u64,
    /// `take` calls that fell back to a fresh allocation.
    pub misses: u64,
    /// Buffers handed back via `give`.
    pub returns: u64,
}

/// Returns a zero-filled buffer of exactly `len` elements, reusing a
/// recycled buffer when one is large enough (best fit by capacity).
pub fn take(len: usize) -> Vec<f32> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let best = pool
            .bufs
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                pool.stats.hits += 1;
                let mut buf = pool.bufs.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                pool.stats.misses += 1;
                vec![0.0; len]
            }
        }
    })
}

/// Hands a buffer back to the calling thread's pool for reuse.
pub fn give(buf: Vec<f32>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        pool.stats.returns += 1;
        pool.bufs.push(buf);
        if pool.bufs.len() > MAX_POOLED {
            let smallest = pool
                .bufs
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .expect("pool is non-empty");
            pool.bufs.swap_remove(smallest);
        }
    });
}

/// Returns the calling thread's pool counters.
pub fn stats() -> Stats {
    POOL.with(|p| p.borrow().stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_even_after_dirty_give() {
        let mut buf = take(8);
        buf.iter_mut().for_each(|v| *v = 7.5);
        give(buf);
        let again = take(8);
        assert_eq!(again, vec![0.0; 8]);
    }

    #[test]
    fn reuse_registers_as_hit() {
        // Use a distinctive size so parallel tests on this thread's
        // pool don't interfere with the accounting.
        let len = 12_345;
        give(Vec::with_capacity(len));
        let before = stats();
        let buf = take(len);
        assert_eq!(buf.len(), len);
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn miss_allocates_fresh() {
        let before = stats();
        let buf = take(1 << 22); // far larger than anything pooled
        assert_eq!(buf.len(), 1 << 22);
        assert_eq!(stats().misses, before.misses + 1);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let before = stats();
        give(Vec::new());
        assert_eq!(stats().returns, before.returns);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..(MAX_POOLED * 2) {
            give(Vec::with_capacity(16));
        }
        POOL.with(|p| assert!(p.borrow().bufs.len() <= MAX_POOLED));
    }
}
