//! The core owned, contiguous, row-major `f32` tensor.

use crate::error::TensorError;
use crate::rng::DetRng;
use crate::shape::Shape;
use crate::Result;

/// An owned, contiguous, row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the element count
    /// implied by `shape` differs from `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![0.0; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor of i.i.d. standard normal samples.
    pub fn randn(shape: impl Into<Shape>, rng: &mut DetRng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Self { shape, data }
    }

    /// Creates a Xavier/Glorot-initialized weight matrix of shape
    /// `[fan_in, fan_out]`.
    ///
    /// Samples are normal with standard deviation `sqrt(2 / (in + out))`,
    /// the standard initialization for linear projections.
    pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut DetRng) -> Self {
        let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
        let data = (0..fan_in * fan_out).map(|_| rng.normal() * std).collect();
        Self {
            shape: Shape::from([fan_in, fan_out]),
            data,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns the underlying data slice in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data slice mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor and hands its storage to the calling
    /// thread's [`scratch`](crate::scratch) pool so a later kernel can
    /// reuse it. Call this on dead intermediates in hot loops; dropping
    /// a tensor normally is always still correct, just allocates more.
    pub fn recycle(self) {
        crate::scratch::give(self.data);
    }

    /// Reads the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of
    /// bounds.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index has the wrong rank or is out of
    /// bounds.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when element counts
    /// differ.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        Ok(Self {
            shape,
            data: self.data,
        })
    }

    /// Returns row `i` of a rank-2 tensor as a slice.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or out-of-bounds rows.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "row",
                index: i,
                bound: rows,
            });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Returns row `i` of a rank-2 tensor as a mutable slice.
    ///
    /// # Errors
    ///
    /// Returns an error for non-matrix tensors or out-of-bounds rows.
    pub fn row_mut(&mut self, i: usize) -> Result<&mut [f32]> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row_mut",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "row_mut",
                index: i,
                bound: rows,
            });
        }
        Ok(&mut self.data[i * cols..(i + 1) * cols])
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, k: f32) -> Self {
        self.map(|x| x * k)
    }

    /// In-place `self += k * other` (AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, k: f32, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
        Ok(())
    }

    /// Linear interpolation `(1 - t) * self + t * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn lerp(&self, other: &Self, t: f32) -> Result<Self> {
        self.zip_with(other, "lerp", |a, b| (1.0 - t) * a + t * b)
    }

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns the L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the maximum absolute element-wise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Returns the transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors.
    pub fn transpose(&self) -> Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Self::from_vec(out, [cols, rows])
    }

    /// Concatenates rank-2 tensors along axis 0 (rows).
    ///
    /// # Errors
    ///
    /// Returns an error when the input list is empty or column counts
    /// differ.
    pub fn vcat(parts: &[&Self]) -> Result<Self> {
        let first = parts.first().ok_or(TensorError::Empty { op: "vcat" })?;
        if first.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "vcat",
                expected: 2,
                actual: first.rank(),
            });
        }
        let cols = first.dims()[1];
        let mut rows = 0usize;
        for p in parts {
            if p.rank() != 2 || p.dims()[1] != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vcat",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
            rows += p.dims()[0];
        }
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Self::from_vec(data, [rows, cols])
    }

    fn zip_with(
        &self,
        other: &Self,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], [2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], [2, 2]).is_ok());
    }

    #[test]
    fn zeros_full_eye() {
        assert_eq!(Tensor::zeros([2, 3]).sum(), 0.0);
        assert_eq!(Tensor::full([2, 3], 2.0).sum(), 12.0);
        let i = Tensor::eye(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.at(&[1, 1]).unwrap(), 1.0);
        assert_eq!(i.at(&[0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], [3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_rejects_shape_mismatch() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn axpy_and_lerp() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 4.0], [2]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0]);
        let l = a.lerp(&b, 1.0).unwrap();
        assert_eq!(l.data(), b.data());
        let l0 = a.lerp(&b, 0.0).unwrap();
        assert_eq!(l0.data(), a.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = DetRng::new(1);
        let a = Tensor::randn([3, 5], &mut rng);
        let att = a.transpose().unwrap().transpose().unwrap();
        assert_eq!(a, att);
        assert_eq!(
            a.at(&[1, 4]).unwrap(),
            a.transpose().unwrap().at(&[4, 1]).unwrap()
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let b = a.clone().reshape([3, 2]).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape([4, 2]).is_err());
    }

    #[test]
    fn rows_access() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        assert_eq!(a.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(a.row(2).is_err());
        let mut b = a.clone();
        b.row_mut(0).unwrap()[0] = 9.0;
        assert_eq!(b.at(&[0, 0]).unwrap(), 9.0);
    }

    #[test]
    fn vcat_stacks_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], [2, 2]).unwrap();
        let c = Tensor::vcat(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(Tensor::vcat(&[]).is_err());
    }

    #[test]
    fn statistics() {
        let a = Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap();
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.mean(), 3.5);
        let b = Tensor::from_vec(vec![3.0, 7.0], [2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 3.0);
    }

    #[test]
    fn randn_is_deterministic() {
        let a = Tensor::randn([4, 4], &mut DetRng::new(5));
        let b = Tensor::randn([4, 4], &mut DetRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let small = Tensor::xavier(4, 4, &mut DetRng::new(1));
        let large = Tensor::xavier(1024, 1024, &mut DetRng::new(1));
        let var_small = small.data().iter().map(|x| x * x).sum::<f32>() / small.numel() as f32;
        let var_large = large.data().iter().map(|x| x * x).sum::<f32>() / large.numel() as f32;
        assert!(var_large < var_small);
    }
}
