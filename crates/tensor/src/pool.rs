//! Deterministic work pool: the compute plane beneath the kernels.
//!
//! The pool parallelizes row-wise kernels (`matmul`, `softmax_rows`,
//! `layer_norm`, `conv3x3`, the fused attention) by splitting the
//! *output* into disjoint row chunks and fanning the chunks out over a
//! small set of persistent worker threads. Because each output row is
//! still computed by exactly the same scalar code, in exactly the same
//! reduction order, as the single-threaded path, parallel results are
//! **bitwise identical** to scalar results — the property every
//! determinism test in this repository (cache replays, byte-identical
//! edits, chaos reproducibility) rests on. The only thing the pool is
//! allowed to change is *which thread* computes a row, never *how*.
//!
//! Design notes:
//!
//! - Built exclusively on the in-tree shims (`crossbeam` channels for
//!   work distribution and completion signalling) plus `std::thread`;
//!   no external dependencies.
//! - The caller always participates in its own parallel region, so a
//!   pool degenerates gracefully: with one thread every `run` call is
//!   an ordinary serial loop, and nested `run` calls cannot deadlock
//!   (the nested caller drains its own region itself).
//! - Kernel dispatch is controlled per-thread via [`ComputePath`]:
//!   `Scalar` forces the reference path, `Parallel` enables pooled
//!   row-chunking, and `Fused` (the default) additionally enables the
//!   fused kernels in `ops::fused`. Benchmarks and identity tests
//!   switch paths with [`with_compute_path`] and compare outputs.
//! - Serving threads are spawned through [`spawn_service`] so thread
//!   creation for the whole stack is centralized here; see
//!   `flashps::server::ThreadedServer`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

/// Which kernel implementation the current thread dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputePath {
    /// Single-threaded reference kernels only.
    Scalar,
    /// Pooled row-chunked kernels (bitwise identical to `Scalar`).
    Parallel,
    /// Pooled kernels plus the fused attention/AdaLN/FFN kernels
    /// (bitwise identical to `Scalar`). The default.
    Fused,
}

thread_local! {
    static PATH: Cell<ComputePath> = const { Cell::new(ComputePath::Fused) };
    static MIN_WORK: Cell<usize> = const { Cell::new(DEFAULT_MIN_PARALLEL_WORK) };
}

/// Below this much work (in multiply-add-ish units) a kernel stays
/// serial: chunk dispatch costs more than it saves.
const DEFAULT_MIN_PARALLEL_WORK: usize = 32 * 1024;

/// Returns the calling thread's current kernel dispatch path.
pub fn compute_path() -> ComputePath {
    PATH.with(Cell::get)
}

/// Runs `f` with the calling thread's dispatch path set to `path`,
/// restoring the previous path afterwards (also on panic-free early
/// returns; the previous value is restored by an RAII guard so unwind
/// restores it too).
pub fn with_compute_path<T>(path: ComputePath, f: impl FnOnce() -> T) -> T {
    struct Restore(ComputePath);
    impl Drop for Restore {
        fn drop(&mut self) {
            PATH.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(PATH.with(|p| p.replace(path)));
    f()
}

/// Runs `f` with the parallel-dispatch work threshold set to `work`
/// (0 parallelizes everything — used by identity tests to exercise the
/// pooled path on tiny shapes).
pub fn with_min_parallel_work<T>(work: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            MIN_WORK.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(MIN_WORK.with(|p| p.replace(work)));
    f()
}

/// True when the calling thread's path enables the fused kernels.
pub fn fused_enabled() -> bool {
    compute_path() == ComputePath::Fused
}

/// One parallel region in flight: a lifetime-erased task plus claim
/// and completion counters.
///
/// # Safety protocol
///
/// `task` borrows the caller's closure. The pointer is only ever
/// dereferenced for claimed indices `i < n`, and [`WorkPool::run`]
/// blocks until `done == n` (every claimed index has finished) before
/// returning, so the borrow outlives every dereference. Workers that
/// pick the region up late observe `next >= n` and drop their handle
/// without touching `task`.
struct Region {
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    done_tx: Sender<()>,
}

// SAFETY: `task` points at a `Sync` closure, and the protocol above
// guarantees the pointee is live for every dereference.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Claims and executes chunk indices until the region is drained.
    /// The thread that completes the final chunk signals `done_tx`.
    fn execute(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: `i < n`, so per the protocol the closure is live.
            let task = unsafe { &*self.task };
            task(i);
            // AcqRel: releases this chunk's output writes into the
            // counter's modification order so the final `send` (and the
            // caller's matching `recv`) publishes *all* chunks.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let _ = self.done_tx.send(());
            }
        }
    }
}

/// A fixed set of persistent worker threads executing regions of tasks.
pub struct WorkPool {
    injector: Option<Sender<Arc<Region>>>,
    threads: usize,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkPool {
    /// Builds a pool with `threads` compute lanes (including the
    /// caller's). `threads <= 1` builds a serial pool that never
    /// spawns and runs every region inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return Self {
                injector: None,
                threads: 1,
            };
        }
        let (tx, rx) = unbounded::<Arc<Region>>();
        for w in 0..threads - 1 {
            let rx: Receiver<Arc<Region>> = rx.clone();
            spawn_service(&format!("pool-{w}"), move || {
                while let Ok(region) = rx.recv() {
                    region.execute();
                }
            });
        }
        Self {
            injector: Some(tx),
            threads,
        }
    }

    /// Number of compute lanes (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(0) ..= task(n-1)`, each exactly once, possibly on
    /// different threads, and returns once all have finished. The
    /// caller participates, so progress never depends on a free worker.
    pub fn run<F: Fn(usize) + Sync>(&self, n: usize, task: F) {
        if n == 0 {
            return;
        }
        let Some(injector) = &self.injector else {
            for i in 0..n {
                task(i);
            }
            return;
        };
        if n == 1 {
            task(0);
            return;
        }
        let (done_tx, done_rx) = bounded(1);
        let erased: &(dyn Fn(usize) + Sync) = &task;
        let region = Arc::new(Region {
            // SAFETY: lifetime erasure; see the `Region` protocol. We
            // block on `done_rx` below until every claim has finished.
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    erased,
                )
            },
            n,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            done_tx,
        });
        for _ in 0..(self.threads - 1).min(n - 1) {
            let _ = injector.send(Arc::clone(&region));
        }
        region.execute();
        // Exactly one `send` happens (from whichever thread finished the
        // last chunk), so this cannot hang; it also publishes every
        // worker's output writes to the caller.
        let _ = done_rx.recv();
    }

    /// Splits `out` (a `rows × row_len` row-major buffer) into disjoint
    /// row chunks and runs `f(first_row, chunk)` for each, in parallel.
    ///
    /// Chunks are contiguous row ranges, so as long as `f` computes
    /// each row with the scalar kernel the result is bitwise identical
    /// to a serial pass.
    pub fn par_row_chunks<F>(&self, out: &mut [f32], rows: usize, row_len: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        assert_eq!(out.len(), rows * row_len, "output buffer shape mismatch");
        if rows == 0 || row_len == 0 {
            return;
        }
        // ~4 chunks per lane keeps stragglers short without paying
        // per-row dispatch.
        let chunk_rows = chunk_rows_for(rows, self.threads);
        let n_chunks = rows.div_ceil(chunk_rows);
        let base = SendPtr(out.as_mut_ptr());
        self.run(n_chunks, |ci| {
            let r0 = ci * chunk_rows;
            let r1 = (r0 + chunk_rows).min(rows);
            // SAFETY: chunk `ci` covers rows `[r0, r1)`; ranges for
            // distinct `ci` are disjoint, in-bounds slices of `out`,
            // and `out` is borrowed mutably for the whole call.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(r0 * row_len), (r1 - r0) * row_len)
            };
            f(r0, chunk);
        });
    }
}

/// Raw base pointer made shareable across worker threads.
///
/// Only ever used to derive the disjoint row-chunk slices in
/// [`WorkPool::par_row_chunks`].
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: dereferenced only through disjoint subslices (see above).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Send + Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// The process-wide pool shared by every kernel (and reused by the
/// serving layer for sizing decisions).
///
/// Sized from `FPS_POOL_THREADS` when set (values `<= 1` force the
/// serial pool), else `available_parallelism()`, floored at 2 so the
/// parallel machinery is exercised — and its bitwise-identity guarantee
/// continuously verified — even on single-core hosts.
pub fn global() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| WorkPool::new(default_threads()))
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FPS_POOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Dispatches a row-wise kernel: serial on the calling thread when the
/// path is [`ComputePath::Scalar`], the estimated work is below the
/// threshold, or the global pool is serial; pooled row chunks
/// otherwise. `f(first_row, chunk)` must fill `chunk` (rows
/// `first_row..`) using the scalar per-row kernel; `work_per_row` is a
/// rough per-row flop count used only for the dispatch decision.
pub fn for_each_row_chunk<F>(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    work_per_row: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if rows == 0 || row_len == 0 {
        return;
    }
    let pool = global();
    let serial = compute_path() == ComputePath::Scalar
        || pool.threads() <= 1
        || rows < 2
        || rows.saturating_mul(work_per_row) < MIN_WORK.with(Cell::get);
    if serial {
        f(0, out);
    } else {
        pool.par_row_chunks(out, rows, row_len, f);
    }
}

/// Rows per chunk when `rows` output rows are split across `lanes`
/// workers — the decomposition [`WorkPool::par_row_chunks`] uses
/// (~4 chunks per lane, so stragglers stay short without paying
/// per-row dispatch). Public so the kernel benchmark can model the
/// identical chunking when it computes makespans off-line.
pub fn chunk_rows_for(rows: usize, lanes: usize) -> usize {
    rows.div_ceil(lanes.max(1) * 4).max(1)
}

/// Spawns a named long-lived service thread (pool workers, server
/// workers). Centralizing spawns here keeps thread creation for the
/// whole stack in one place and gives every thread a recognizable
/// `fps-` name in debuggers and trace output.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_service<F, T>(name: &str, f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("fps-{name}"))
        .spawn(f)
        .expect("failed to spawn service thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_executes_each_index_exactly_once() {
        let pool = WorkPool::new(4);
        for n in [0usize, 1, 2, 3, 7, 64, 1000] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}: some index not executed exactly once"
            );
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkPool::new(1);
        let counts: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        pool.run(10, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_row_chunks_covers_all_rows_disjointly() {
        let pool = WorkPool::new(3);
        for rows in [1usize, 2, 5, 33, 128] {
            let row_len = 7;
            let mut out = vec![0.0f32; rows * row_len];
            pool.par_row_chunks(&mut out, rows, row_len, |r0, chunk| {
                for (ri, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                    for v in row.iter_mut() {
                        *v += (r0 + ri) as f32 + 1.0;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..row_len {
                    assert_eq!(out[r * row_len + c], r as f32 + 1.0, "row {r} col {c}");
                }
            }
        }
    }

    #[test]
    fn nested_regions_complete() {
        // A task running on the pool can itself open a region without
        // deadlocking, because callers participate in their own work.
        let pool = Arc::new(WorkPool::new(2));
        let hits = AtomicU32::new(0);
        let inner = WorkPool::new(2);
        pool.run(4, |_| {
            inner.run(4, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn compute_path_is_scoped_and_restored() {
        assert_eq!(compute_path(), ComputePath::Fused);
        let seen = with_compute_path(ComputePath::Scalar, || {
            let inner = with_compute_path(ComputePath::Parallel, compute_path);
            (compute_path(), inner)
        });
        assert_eq!(seen, (ComputePath::Scalar, ComputePath::Parallel));
        assert_eq!(compute_path(), ComputePath::Fused);
    }

    #[test]
    fn min_work_threshold_is_scoped() {
        let base = MIN_WORK.with(Cell::get);
        with_min_parallel_work(0, || {
            assert_eq!(MIN_WORK.with(Cell::get), 0);
        });
        assert_eq!(MIN_WORK.with(Cell::get), base);
    }

    #[test]
    fn global_pool_has_at_least_two_lanes_by_default() {
        // FPS_POOL_THREADS can override this, but the test environment
        // does not set it.
        if std::env::var("FPS_POOL_THREADS").is_err() {
            assert!(global().threads() >= 2);
        }
    }

    #[test]
    fn spawn_service_names_thread() {
        let h = spawn_service("unit", || std::thread::current().name().map(str::to_owned));
        assert_eq!(h.join().unwrap().as_deref(), Some("fps-unit"));
    }
}
