//! Deterministic work pool: the compute plane beneath the kernels.
//!
//! The pool parallelizes row-wise kernels (`matmul`, `softmax_rows`,
//! `layer_norm`, `conv3x3`, the fused attention) by splitting the
//! *output* into disjoint row chunks and fanning the chunks out over a
//! small set of persistent worker threads. Because each output row is
//! still computed by exactly the same scalar code, in exactly the same
//! reduction order, as the single-threaded path, parallel results are
//! **bitwise identical** to scalar results — the property every
//! determinism test in this repository (cache replays, byte-identical
//! edits, chaos reproducibility) rests on. The only thing the pool is
//! allowed to change is *which thread* computes a row, never *how*.
//!
//! Design notes:
//!
//! - Built exclusively on the in-tree shims (`crossbeam` channels for
//!   work distribution and completion signalling) plus `std::thread`;
//!   no external dependencies.
//! - The caller always participates in its own parallel region, so a
//!   pool degenerates gracefully: with one thread every `run` call is
//!   an ordinary serial loop, and nested `run` calls cannot deadlock
//!   (the nested caller drains its own region itself).
//! - Kernel dispatch is controlled per-thread via [`ComputePath`]:
//!   `Scalar` forces the reference path, `Parallel` enables pooled
//!   row-chunking, `Fused` (the default) additionally enables the
//!   fused kernels in `ops::fused`, and `Sparse` further enables
//!   mask-sparse gather→compute→scatter execution in layers that hold
//!   a `SparsePlan` (`ops::sparse`). Benchmarks and identity tests
//!   switch paths with [`with_compute_path`] and compare outputs.
//! - Row-chunking only pays off once the serial work dwarfs the cost
//!   of waking workers, and that break-even point differs per kernel
//!   family, so thresholds are *calibrated*: [`calibration`] measures
//!   the pool's empty-region dispatch overhead and each
//!   [`KernelClass`]'s serial ns-per-work-unit once per process, and
//!   [`for_each_row_chunk`] stays serial below the class's measured
//!   break-even (with 8× headroom).
//! - Serving threads are spawned through [`spawn_service`] so thread
//!   creation for the whole stack is centralized here; see
//!   `flashps::server::ThreadedServer`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

/// Which kernel implementation the current thread dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputePath {
    /// Single-threaded reference kernels only.
    Scalar,
    /// Pooled row-chunked kernels (bitwise identical to `Scalar`).
    Parallel,
    /// Pooled kernels plus the fused attention/AdaLN/FFN kernels
    /// (bitwise identical to `Scalar`). The default.
    Fused,
    /// Everything `Fused` enables, plus mask-sparse execution where a
    /// [`SparsePlan`](crate::ops::sparse::SparsePlan) is available:
    /// layers that hold a plan (the diffusion scaffold, the sparse
    /// kernel entry points in `ops::sparse`) gather the active rows,
    /// run the dense kernels on them, and scatter back, filling the
    /// inactive region from a caller-supplied template. Dense kernels
    /// without a plan behave exactly like `Fused`.
    Sparse,
}

thread_local! {
    static PATH: Cell<ComputePath> = const { Cell::new(ComputePath::Fused) };
    static MIN_WORK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Floor of the calibrated thresholds: below this much work (in
/// multiply-add-ish units) a kernel always stays serial.
const DEFAULT_MIN_PARALLEL_WORK: usize = 32 * 1024;

/// Ceiling of the calibrated thresholds, so a wildly noisy calibration
/// sample cannot pin a kernel class serial forever on big hosts.
const MAX_MIN_PARALLEL_WORK: usize = 64 * 1024 * 1024;

/// Serial work must exceed the pool's measured dispatch overhead by at
/// least this factor before row-chunking is worth attempting.
const DISPATCH_HEADROOM: f64 = 8.0;

/// Returns the calling thread's current kernel dispatch path.
pub fn compute_path() -> ComputePath {
    PATH.with(Cell::get)
}

/// Runs `f` with the calling thread's dispatch path set to `path`,
/// restoring the previous path afterwards (also on panic-free early
/// returns; the previous value is restored by an RAII guard so unwind
/// restores it too).
pub fn with_compute_path<T>(path: ComputePath, f: impl FnOnce() -> T) -> T {
    struct Restore(ComputePath);
    impl Drop for Restore {
        fn drop(&mut self) {
            PATH.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(PATH.with(|p| p.replace(path)));
    f()
}

/// Runs `f` with the parallel-dispatch work threshold pinned to `work`
/// for every kernel class, overriding the calibrated per-class
/// thresholds (0 parallelizes everything — used by identity tests to
/// exercise the pooled path on tiny shapes).
pub fn with_min_parallel_work<T>(work: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MIN_WORK.with(|p| p.set(self.0));
        }
    }
    let _restore = Restore(MIN_WORK.with(|p| p.replace(Some(work))));
    f()
}

/// True when the calling thread's path enables the fused kernels.
pub fn fused_enabled() -> bool {
    matches!(compute_path(), ComputePath::Fused | ComputePath::Sparse)
}

/// True when the calling thread's path enables mask-sparse execution
/// in plan-holding layers.
pub fn sparse_enabled() -> bool {
    compute_path() == ComputePath::Sparse
}

/// Kernel families whose parallel-dispatch thresholds are calibrated
/// separately: a "work unit" buys different amounts of wall time in a
/// GEMM inner loop, a row-wise normalization, and a conv tap loop, so
/// one shared constant either over- or under-dispatches somewhere
/// (the committed PR 4 baseline showed sdxl `layer_norm` and sd21
/// `ffn_gemm` regressing under pooled dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// Dense matrix products and attention (`matmul*`, `mha_fused`,
    /// the VAE patch projections).
    Gemm,
    /// Row-wise maps and reductions (`softmax_rows`, `layer_norm`,
    /// `ada_layer_norm`).
    RowWise,
    /// Spatial tap loops (`conv3x3`).
    Conv,
}

const N_KERNEL_CLASSES: usize = 3;

/// Per-class parallel-dispatch thresholds, measured once per process.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Wall time of one empty pooled region (chunk dispatch, wakeup,
    /// completion signalling), in nanoseconds.
    pub dispatch_overhead_ns: f64,
    /// Measured serial nanoseconds per work unit, per kernel class.
    pub ns_per_unit: [f64; N_KERNEL_CLASSES],
    /// Minimum work units before a kernel of each class row-chunks.
    pub min_work: [usize; N_KERNEL_CLASSES],
}

/// Returns the process-wide dispatch calibration, measuring it on
/// first use: the pool's empty-region overhead and each class's serial
/// ns-per-work-unit on a small reference loop. A kernel class only
/// parallelizes once its serial time exceeds `DISPATCH_HEADROOM ×` the
/// dispatch overhead, so shapes where the pool cannot win (the PR 4
/// regressions) stay serial on any host.
pub fn calibration() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(|| {
        let pool = global();
        let dispatch_overhead_ns = if pool.threads() <= 1 {
            0.0
        } else {
            let reps = 24;
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                pool.run(pool.threads() * 4, |i| {
                    std::hint::black_box(i);
                });
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            best
        };
        let ns_per_unit = [
            calibrate_gemm_ns_per_unit(),
            calibrate_rowwise_ns_per_unit(),
            calibrate_conv_ns_per_unit(),
        ];
        // On a single-hardware-thread host, row-chunking can never beat
        // serial — the workers time-slice one core and dispatch is pure
        // overhead — so every class pins to the ceiling regardless of
        // what the (meaningless) overhead probe measured. Tests still
        // force the pool through `with_min_parallel_work(0, ..)`.
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let mut min_work = [DEFAULT_MIN_PARALLEL_WORK; N_KERNEL_CLASSES];
        for (mw, &ns) in min_work.iter_mut().zip(&ns_per_unit) {
            if cores <= 1 {
                *mw = MAX_MIN_PARALLEL_WORK;
            } else {
                let units = (DISPATCH_HEADROOM * dispatch_overhead_ns / ns.max(1e-3)) as usize;
                *mw = units.clamp(DEFAULT_MIN_PARALLEL_WORK, MAX_MIN_PARALLEL_WORK);
            }
        }
        Calibration {
            dispatch_overhead_ns,
            ns_per_unit,
            min_work,
        }
    })
}

/// Returns the calling thread's effective dispatch threshold for a
/// kernel class: the scoped [`with_min_parallel_work`] override when
/// one is active, else the calibrated per-class value.
pub fn min_parallel_work(class: KernelClass) -> usize {
    if let Some(work) = MIN_WORK.with(Cell::get) {
        return work;
    }
    calibration().min_work[class as usize]
}

/// Times `iters` runs of `f`, whose body performs `units` work units,
/// and returns the best-case serial nanoseconds per unit.
fn best_ns_per_unit(iters: usize, units: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best / units as f64
}

fn calibrate_gemm_ns_per_unit() -> f64 {
    // 16×32 · 32×32 ikj product: 2·m·k·n = 32768 units.
    let (m, k, n) = (16usize, 32usize, 32usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 * 0.25).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.5).collect();
    let mut c = vec![0.0f32; m * n];
    best_ns_per_unit(8, 2 * m * k * n, || {
        c.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..m {
            for (p, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
                let brow = &b[p * n..(p + 1) * n];
                for (o, &bv) in c[i * n..(i + 1) * n].iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        std::hint::black_box(&mut c);
    })
}

fn calibrate_rowwise_ns_per_unit() -> f64 {
    // 64 rows of a 64-wide mean/var/normalize pass: 6·rows·cols units.
    let (rows, cols) = (64usize, 64usize);
    let x: Vec<f32> = (0..rows * cols).map(|i| (i % 11) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; rows * cols];
    best_ns_per_unit(8, 6 * rows * cols, || {
        for (row, orow) in x.chunks_exact(cols).zip(out.chunks_exact_mut(cols)) {
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + 1e-5).sqrt();
            for (o, &v) in orow.iter_mut().zip(row) {
                *o = (v - mean) * inv;
            }
        }
        std::hint::black_box(&mut out);
    })
}

fn calibrate_conv_ns_per_unit() -> f64 {
    // 8×8 grid, 4→4 channels, 9 taps: w·18·c_in·c_out units per row.
    let (h, w, c) = (8usize, 8usize, 4usize);
    let x: Vec<f32> = (0..h * w * c).map(|i| (i % 9) as f32 * 0.2).collect();
    let kern: Vec<f32> = (0..9 * c * c).map(|i| (i % 5) as f32 * 0.1).collect();
    let mut out = vec![0.0f32; h * w * c];
    best_ns_per_unit(8, h * w * 18 * c * c, || {
        out.iter_mut().for_each(|v| *v = 0.0);
        for y in 0..h {
            for xc in 0..w {
                let orow = &mut out[(y * w + xc) * c..(y * w + xc + 1) * c];
                for (tap, (dy, dx)) in CAL_TAPS.iter().enumerate() {
                    let (py, px) = (y as i64 + dy, xc as i64 + dx);
                    if py < 0 || px < 0 || py >= h as i64 || px >= w as i64 {
                        continue;
                    }
                    let src = &x[(py as usize * w + px as usize) * c..][..c];
                    for (ci, &v) in src.iter().enumerate() {
                        let krow = &kern[(tap * c + ci) * c..][..c];
                        for (o, &kv) in orow.iter_mut().zip(krow) {
                            *o += v * kv;
                        }
                    }
                }
            }
        }
        std::hint::black_box(&mut out);
    })
}

const CAL_TAPS: [(i64, i64); 9] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 0),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

/// One parallel region in flight: a lifetime-erased task plus claim
/// and completion counters.
///
/// # Safety protocol
///
/// `task` borrows the caller's closure. The pointer is only ever
/// dereferenced for claimed indices `i < n`, and [`WorkPool::run`]
/// blocks until `done == n` (every claimed index has finished) before
/// returning, so the borrow outlives every dereference. Workers that
/// pick the region up late observe `next >= n` and drop their handle
/// without touching `task`.
struct Region {
    task: *const (dyn Fn(usize) + Sync),
    n: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    done_tx: Sender<()>,
}

// SAFETY: `task` points at a `Sync` closure, and the protocol above
// guarantees the pointee is live for every dereference.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Claims and executes chunk indices until the region is drained.
    /// The thread that completes the final chunk signals `done_tx`.
    fn execute(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: `i < n`, so per the protocol the closure is live.
            let task = unsafe { &*self.task };
            task(i);
            // AcqRel: releases this chunk's output writes into the
            // counter's modification order so the final `send` (and the
            // caller's matching `recv`) publishes *all* chunks.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let _ = self.done_tx.send(());
            }
        }
    }
}

/// A fixed set of persistent worker threads executing regions of tasks.
pub struct WorkPool {
    injector: Option<Sender<Arc<Region>>>,
    threads: usize,
}

impl std::fmt::Debug for WorkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkPool {
    /// Builds a pool with `threads` compute lanes (including the
    /// caller's). `threads <= 1` builds a serial pool that never
    /// spawns and runs every region inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads == 1 {
            return Self {
                injector: None,
                threads: 1,
            };
        }
        let (tx, rx) = unbounded::<Arc<Region>>();
        for w in 0..threads - 1 {
            let rx: Receiver<Arc<Region>> = rx.clone();
            spawn_service(&format!("pool-{w}"), move || {
                while let Ok(region) = rx.recv() {
                    region.execute();
                }
            });
        }
        Self {
            injector: Some(tx),
            threads,
        }
    }

    /// Number of compute lanes (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(0) ..= task(n-1)`, each exactly once, possibly on
    /// different threads, and returns once all have finished. The
    /// caller participates, so progress never depends on a free worker.
    pub fn run<F: Fn(usize) + Sync>(&self, n: usize, task: F) {
        if n == 0 {
            return;
        }
        let Some(injector) = &self.injector else {
            for i in 0..n {
                task(i);
            }
            return;
        };
        if n == 1 {
            task(0);
            return;
        }
        let (done_tx, done_rx) = bounded(1);
        let erased: &(dyn Fn(usize) + Sync) = &task;
        let region = Arc::new(Region {
            // SAFETY: lifetime erasure; see the `Region` protocol. We
            // block on `done_rx` below until every claim has finished.
            task: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    erased,
                )
            },
            n,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            done_tx,
        });
        for _ in 0..(self.threads - 1).min(n - 1) {
            let _ = injector.send(Arc::clone(&region));
        }
        region.execute();
        // Exactly one `send` happens (from whichever thread finished the
        // last chunk), so this cannot hang; it also publishes every
        // worker's output writes to the caller.
        let _ = done_rx.recv();
    }

    /// Splits `out` (a `rows × row_len` row-major buffer) into disjoint
    /// row chunks and runs `f(first_row, chunk)` for each, in parallel.
    ///
    /// Chunks are contiguous row ranges, so as long as `f` computes
    /// each row with the scalar kernel the result is bitwise identical
    /// to a serial pass.
    pub fn par_row_chunks<F>(&self, out: &mut [f32], rows: usize, row_len: usize, f: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        assert_eq!(out.len(), rows * row_len, "output buffer shape mismatch");
        if rows == 0 || row_len == 0 {
            return;
        }
        // ~4 chunks per lane keeps stragglers short without paying
        // per-row dispatch.
        let chunk_rows = chunk_rows_for(rows, self.threads);
        let n_chunks = rows.div_ceil(chunk_rows);
        let base = SendPtr(out.as_mut_ptr());
        self.run(n_chunks, |ci| {
            let r0 = ci * chunk_rows;
            let r1 = (r0 + chunk_rows).min(rows);
            // SAFETY: chunk `ci` covers rows `[r0, r1)`; ranges for
            // distinct `ci` are disjoint, in-bounds slices of `out`,
            // and `out` is borrowed mutably for the whole call.
            let chunk = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(r0 * row_len), (r1 - r0) * row_len)
            };
            f(r0, chunk);
        });
    }
}

/// Raw base pointer made shareable across worker threads.
///
/// Only ever used to derive the disjoint row-chunk slices in
/// [`WorkPool::par_row_chunks`].
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: dereferenced only through disjoint subslices (see above).
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Send + Sync` wrapper, not the raw pointer field.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// The process-wide pool shared by every kernel (and reused by the
/// serving layer for sizing decisions).
///
/// Sized from `FPS_POOL_THREADS` when set (values `<= 1` force the
/// serial pool), else `available_parallelism()`, floored at 2 so the
/// parallel machinery is exercised — and its bitwise-identity guarantee
/// continuously verified — even on single-core hosts.
pub fn global() -> &'static WorkPool {
    static POOL: OnceLock<WorkPool> = OnceLock::new();
    POOL.get_or_init(|| WorkPool::new(default_threads()))
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FPS_POOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .max(2)
}

/// Dispatches a row-wise kernel: serial on the calling thread when the
/// path is [`ComputePath::Scalar`], the estimated work is below the
/// class's calibrated threshold, or the global pool is serial; pooled
/// row chunks otherwise. `f(first_row, chunk)` must fill `chunk` (rows
/// `first_row..`) using the scalar per-row kernel; `work_per_row` is a
/// rough per-row flop count used only for the dispatch decision,
/// compared against [`min_parallel_work`] for `class`.
pub fn for_each_row_chunk<F>(
    out: &mut [f32],
    rows: usize,
    row_len: usize,
    work_per_row: usize,
    class: KernelClass,
    f: F,
) where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if rows == 0 || row_len == 0 {
        return;
    }
    let pool = global();
    let serial = compute_path() == ComputePath::Scalar
        || pool.threads() <= 1
        || rows < 2
        || rows.saturating_mul(work_per_row) < min_parallel_work(class);
    if serial {
        f(0, out);
    } else {
        pool.par_row_chunks(out, rows, row_len, f);
    }
}

/// Rows per chunk when `rows` output rows are split across `lanes`
/// workers — the decomposition [`WorkPool::par_row_chunks`] uses
/// (~4 chunks per lane, so stragglers stay short without paying
/// per-row dispatch). Public so the kernel benchmark can model the
/// identical chunking when it computes makespans off-line.
pub fn chunk_rows_for(rows: usize, lanes: usize) -> usize {
    rows.div_ceil(lanes.max(1) * 4).max(1)
}

/// Spawns a named long-lived service thread (pool workers, server
/// workers). Centralizing spawns here keeps thread creation for the
/// whole stack in one place and gives every thread a recognizable
/// `fps-` name in debuggers and trace output.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_service<F, T>(name: &str, f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("fps-{name}"))
        .spawn(f)
        .expect("failed to spawn service thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_executes_each_index_exactly_once() {
        let pool = WorkPool::new(4);
        for n in [0usize, 1, 2, 3, 7, 64, 1000] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}: some index not executed exactly once"
            );
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkPool::new(1);
        let counts: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        pool.run(10, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_row_chunks_covers_all_rows_disjointly() {
        let pool = WorkPool::new(3);
        for rows in [1usize, 2, 5, 33, 128] {
            let row_len = 7;
            let mut out = vec![0.0f32; rows * row_len];
            pool.par_row_chunks(&mut out, rows, row_len, |r0, chunk| {
                for (ri, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                    for v in row.iter_mut() {
                        *v += (r0 + ri) as f32 + 1.0;
                    }
                }
            });
            for r in 0..rows {
                for c in 0..row_len {
                    assert_eq!(out[r * row_len + c], r as f32 + 1.0, "row {r} col {c}");
                }
            }
        }
    }

    #[test]
    fn nested_regions_complete() {
        // A task running on the pool can itself open a region without
        // deadlocking, because callers participate in their own work.
        let pool = Arc::new(WorkPool::new(2));
        let hits = AtomicU32::new(0);
        let inner = WorkPool::new(2);
        pool.run(4, |_| {
            inner.run(4, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn compute_path_is_scoped_and_restored() {
        assert_eq!(compute_path(), ComputePath::Fused);
        let seen = with_compute_path(ComputePath::Scalar, || {
            let inner = with_compute_path(ComputePath::Parallel, compute_path);
            (compute_path(), inner)
        });
        assert_eq!(seen, (ComputePath::Scalar, ComputePath::Parallel));
        assert_eq!(compute_path(), ComputePath::Fused);
    }

    #[test]
    fn min_work_threshold_is_scoped() {
        let base = MIN_WORK.with(Cell::get);
        with_min_parallel_work(0, || {
            assert_eq!(MIN_WORK.with(Cell::get), Some(0));
            assert_eq!(min_parallel_work(KernelClass::Gemm), 0);
            assert_eq!(min_parallel_work(KernelClass::RowWise), 0);
        });
        assert_eq!(MIN_WORK.with(Cell::get), base);
    }

    #[test]
    fn calibrated_thresholds_are_bounded_and_positive() {
        let cal = calibration();
        assert!(cal.dispatch_overhead_ns >= 0.0);
        for (class, (&mw, &ns)) in cal.min_work.iter().zip(&cal.ns_per_unit).enumerate() {
            assert!(ns > 0.0, "class {class}: non-positive ns/unit");
            assert!(
                (DEFAULT_MIN_PARALLEL_WORK..=MAX_MIN_PARALLEL_WORK).contains(&mw),
                "class {class}: threshold {mw} outside clamp"
            );
        }
        // Without a scoped override, the calibrated value is served.
        assert_eq!(
            min_parallel_work(KernelClass::Conv),
            cal.min_work[KernelClass::Conv as usize]
        );
    }

    #[test]
    fn sparse_path_enables_fused_kernels() {
        with_compute_path(ComputePath::Sparse, || {
            assert!(fused_enabled());
            assert!(sparse_enabled());
        });
        with_compute_path(ComputePath::Fused, || {
            assert!(fused_enabled());
            assert!(!sparse_enabled());
        });
        with_compute_path(ComputePath::Parallel, || assert!(!fused_enabled()));
    }

    #[test]
    fn global_pool_has_at_least_two_lanes_by_default() {
        // FPS_POOL_THREADS can override this, but the test environment
        // does not set it.
        if std::env::var("FPS_POOL_THREADS").is_err() {
            assert!(global().threads() >= 2);
        }
    }

    #[test]
    fn spawn_service_names_thread() {
        let h = spawn_service("unit", || std::thread::current().name().map(str::to_owned));
        assert_eq!(h.join().unwrap().as_deref(), Some("fps-unit"));
    }
}
