//! Tensor operators used by transformer blocks.
//!
//! Each submodule hosts one family of operations:
//!
//! - [`mod@matmul`] — matrix multiplication kernels.
//! - [`softmax`] — numerically stable row-wise softmax.
//! - [`activation`] — GeLU and SiLU non-linearities.
//! - [`norm`] — LayerNorm, RMSNorm, and AdaLN modulation.
//! - [`gather`] — token gather/scatter, the primitive behind mask-aware
//!   computation (extracting masked-token rows, replenishing cached
//!   unmasked rows).
//! - [`conv`] — 3×3 grid convolution, the UNet scaffold operator whose
//!   spatial mixing forces the sparse path to dilate its masks.
//! - [`reduce`] — axis reductions, cosine similarity, mean/covariance.
//! - [`fused`] — fused AdaLN+modulate, per-head attention, and
//!   matmul+GeLU kernels, bitwise identical to their compositions.
//! - [`sparse`] — mask-sparse gather→compute→scatter variants of the
//!   measured kernels, driven by a per-edit [`sparse::SparsePlan`];
//!   their FLOPs (and wall time) scale with the mask ratio.

pub mod activation;
pub mod conv;
pub mod fused;
pub mod gather;
pub mod matmul;
pub mod norm;
pub mod reduce;
pub mod softmax;
pub mod sparse;

pub use activation::{gelu, silu};
pub use conv::conv3x3;
pub use fused::{ada_layer_norm, matmul_gelu, mha_fused};
pub use gather::{gather_rows, scatter_rows, scatter_rows_into};
pub use matmul::{matmul, matmul_bt, matmul_naive, matmul_tb};
pub use norm::{group_norm, layer_norm, modulate, rms_norm};
pub use reduce::{cosine_similarity, mean_axis0, row_covariance};
pub use softmax::softmax_rows;
pub use sparse::SparsePlan;
