//! Numerically stable softmax.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, pool, scratch, Result};

/// Applies softmax along the last axis of a rank-2 tensor.
///
/// Each row is shifted by its maximum before exponentiation, the standard
/// trick that keeps the computation finite for large logits.
///
/// # Errors
///
/// Returns an error for non-matrix input or a zero-width row.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows",
            expected: 2,
            actual: x.rank(),
        });
    }
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    if cols == 0 {
        return Err(TensorError::Empty { op: "softmax_rows" });
    }
    let _span = ktrace::span("softmax_rows");
    let mut out = scratch::take(rows * cols);
    let xd = x.data();
    // `exp` makes softmax rows pricier than their element count; the
    // factor here only biases the parallel-dispatch threshold.
    pool::for_each_row_chunk(
        &mut out,
        rows,
        cols,
        8 * cols,
        pool::KernelClass::RowWise,
        |r0, chunk| {
            for (ri, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = r0 + ri;
                orow.copy_from_slice(&xd[r * cols..(r + 1) * cols]);
                softmax_row_inplace(orow);
            }
        },
    );
    Tensor::from_vec(out, [rows, cols])
}

/// Replaces one row of logits with its softmax, using the max-shift
/// trick. This is *the* softmax kernel: [`softmax_rows`] and the fused
/// attention both call it, so their probabilities agree bitwise.
#[inline]
pub(crate) fn softmax_row_inplace(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        let e = (*v - max).exp();
        *v = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use proptest::prelude::*;

    #[test]
    fn rows_sum_to_one() {
        let mut rng = DetRng::new(1);
        let x = Tensor::randn([8, 16], &mut rng);
        let s = softmax_rows(&x).unwrap();
        for r in 0..8 {
            let sum: f32 = s.row(r).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let x = Tensor::full([1, 4], 3.0);
        let s = softmax_rows(&x).unwrap();
        for &p in s.data() {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn large_logits_stay_finite() {
        let x = Tensor::from_vec(vec![1e30, -1e30, 0.0], [1, 3]).unwrap();
        let s = softmax_rows(&x).unwrap();
        assert!(s.data().iter().all(|p| p.is_finite()));
        assert!((s.data()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn shift_invariance() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], [1, 3]).unwrap();
        let y = x.map(|v| v + 100.0);
        let sx = softmax_rows(&x).unwrap();
        let sy = softmax_rows(&y).unwrap();
        assert!(sx.max_abs_diff(&sy).unwrap() < 1e-5);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(softmax_rows(&Tensor::zeros([3])).is_err());
        assert!(softmax_rows(&Tensor::zeros([2, 0])).is_err());
    }

    proptest! {
        #[test]
        fn prop_rows_are_distributions(vals in proptest::collection::vec(-50.0f32..50.0, 12)) {
            let x = Tensor::from_vec(vals, [3, 4]).unwrap();
            let s = softmax_rows(&x).unwrap();
            for r in 0..3 {
                let row = s.row(r).unwrap();
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }

        #[test]
        fn prop_monotone_in_logits(a in -20.0f32..20.0, b in -20.0f32..20.0) {
            prop_assume!((a - b).abs() > 1e-3);
            let x = Tensor::from_vec(vec![a, b], [1, 2]).unwrap();
            let s = softmax_rows(&x).unwrap();
            if a > b {
                prop_assert!(s.data()[0] > s.data()[1]);
            } else {
                prop_assert!(s.data()[0] < s.data()[1]);
            }
        }
    }
}
