//! 2-D convolution over token grids.
//!
//! UNet-based diffusion models (SD2.1, SDXL) wrap their transformer
//! blocks in a convolutional scaffold. Unlike every other operator in
//! this crate, convolution mixes *spatially* — it is not token-wise —
//! which is exactly why the paper's mask-aware computation leaves the
//! conv scaffold alone (§2.1 footnote: transformers are ~82% of a UNet
//! step; the scaffold always computes in full).
//!
//! The layout here is `[H*W, C]` row-major over the grid: the same
//! token matrix the transformer blocks consume.
//!
//! The kernel parallelizes over grid *rows* (each output pixel depends
//! only on input pixels, so rows are independent) and, like the matmul
//! family, no longer skips exact-zero input activations: the skip made
//! measured time diverge from the dense FLOP accounting in
//! `fps-diffusion::flops` on padded/masked inputs. See the
//! the `matmul` module docs for the full rationale.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, pool, scratch, Result};

/// 3×3 same-padding convolution over an `[h*w, c_in]` token grid with
/// kernel `[9 * c_in, c_out]` (kernel rows ordered `(dy, dx, c_in)`
/// with `dy`, `dx` ∈ {-1, 0, 1} scanned row-major) and bias `[c_out]`.
///
/// Out-of-grid taps read zero (zero padding).
///
/// # Errors
///
/// Returns an error when shapes are inconsistent with `h`, `w`.
pub fn conv3x3(x: &Tensor, h: usize, w: usize, kernel: &Tensor, bias: &Tensor) -> Result<Tensor> {
    if x.rank() != 2 || x.dims()[0] != h * w {
        return Err(TensorError::ShapeMismatch {
            op: "conv3x3",
            lhs: x.dims().to_vec(),
            rhs: vec![h * w],
        });
    }
    let c_in = x.dims()[1];
    if kernel.rank() != 2 || kernel.dims()[0] != 9 * c_in {
        return Err(TensorError::ShapeMismatch {
            op: "conv3x3",
            lhs: kernel.dims().to_vec(),
            rhs: vec![9 * c_in],
        });
    }
    let c_out = kernel.dims()[1];
    if bias.numel() != c_out {
        return Err(TensorError::ShapeMismatch {
            op: "conv3x3",
            lhs: bias.dims().to_vec(),
            rhs: vec![c_out],
        });
    }
    let _span = ktrace::span("conv3x3");
    let mut out = scratch::take(h * w * c_out);
    let xd = x.data();
    let kd = kernel.data();
    let bd = bias.data();
    // One "row" per grid row: w pixels × c_out channels, all computed
    // from read-only input, so grid rows chunk across the pool.
    pool::for_each_row_chunk(
        &mut out,
        h,
        w * c_out,
        w * 18 * c_in * c_out,
        pool::KernelClass::Conv,
        |y0, chunk| {
            for (yi, grid_row) in chunk.chunks_exact_mut(w * c_out).enumerate() {
                let y = y0 + yi;
                for xc in 0..w {
                    let orow = &mut grid_row[xc * c_out..(xc + 1) * c_out];
                    orow.copy_from_slice(bd);
                    for (tap, (dy, dx)) in TAPS.iter().enumerate() {
                        let (py, px) = (y as i64 + dy, xc as i64 + dx);
                        if py < 0 || px < 0 || py >= h as i64 || px >= w as i64 {
                            continue; // Zero padding.
                        }
                        let src = &xd[(py as usize * w + px as usize) * c_in
                            ..(py as usize * w + px as usize + 1) * c_in];
                        for (ci, &v) in src.iter().enumerate() {
                            let krow =
                                &kd[(tap * c_in + ci) * c_out..(tap * c_in + ci + 1) * c_out];
                            for (o, &k) in orow.iter_mut().zip(krow.iter()) {
                                *o += v * k;
                            }
                        }
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, [h * w, c_out])
}

/// Kernel tap offsets in kernel-row order.
const TAPS: [(i64, i64); 9] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 0),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    /// A kernel whose only non-zero tap is the centre identity: conv
    /// becomes the identity map.
    fn identity_kernel(c: usize) -> Tensor {
        let mut k = Tensor::zeros([9 * c, c]);
        // Centre tap is index 4.
        for ci in 0..c {
            k.set(&[4 * c + ci, ci], 1.0).expect("in range");
        }
        k
    }

    #[test]
    fn identity_kernel_is_identity() {
        let mut rng = DetRng::new(1);
        let x = Tensor::randn([4 * 5, 3], &mut rng);
        let y = conv3x3(&x, 4, 5, &identity_kernel(3), &Tensor::zeros([3])).unwrap();
        assert!(y.max_abs_diff(&x).unwrap() < 1e-6);
    }

    #[test]
    fn bias_is_added() {
        let x = Tensor::zeros([2 * 2, 1]);
        let k = Tensor::zeros([9, 2]);
        let b = Tensor::from_vec(vec![1.5, -2.0], [2]).unwrap();
        let y = conv3x3(&x, 2, 2, &k, &b).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        for r in 0..4 {
            assert_eq!(y.row(r).unwrap(), &[1.5, -2.0]);
        }
    }

    #[test]
    fn box_blur_averages_neighbours() {
        // A uniform kernel sums the 3×3 neighbourhood; on an interior
        // pixel of a constant image that is 9× the value, on a corner
        // 4× (zero padding).
        let x = Tensor::full([3 * 3, 1], 1.0);
        let k = Tensor::full([9, 1], 1.0);
        let y = conv3x3(&x, 3, 3, &k, &Tensor::zeros([1])).unwrap();
        assert_eq!(y.at(&[4, 0]).unwrap(), 9.0, "interior");
        assert_eq!(y.at(&[0, 0]).unwrap(), 4.0, "corner");
        assert_eq!(y.at(&[1, 0]).unwrap(), 6.0, "edge");
    }

    #[test]
    fn convolution_mixes_spatially() {
        // Unlike token-wise ops, changing one token changes its
        // neighbours' outputs — the property that forces the conv
        // scaffold to always compute in full.
        let mut rng = DetRng::new(2);
        let x = Tensor::randn([4 * 4, 2], &mut rng);
        let k = Tensor::randn([9 * 2, 2], &mut rng).scale(0.2);
        let b = Tensor::zeros([2]);
        let y0 = conv3x3(&x, 4, 4, &k, &b).unwrap();
        let mut x2 = x.clone();
        x2.row_mut(5).unwrap()[0] += 1.0; // token (1,1)
        let y1 = conv3x3(&x2, 4, 4, &k, &b).unwrap();
        // Neighbour (1,2) = row 6 must change.
        let d: f32 = y0
            .row(6)
            .unwrap()
            .iter()
            .zip(y1.row(6).unwrap())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 1e-6, "neighbour unaffected");
        // A far token (3,3) = row 15 must not change.
        assert_eq!(y0.row(15).unwrap(), y1.row(15).unwrap());
    }

    #[test]
    fn shape_validation() {
        let x = Tensor::zeros([6, 2]);
        let k = Tensor::zeros([18, 2]);
        let b = Tensor::zeros([2]);
        assert!(conv3x3(&x, 2, 2, &k, &b).is_err(), "h*w mismatch");
        assert!(conv3x3(&x, 2, 3, &Tensor::zeros([17, 2]), &b).is_err());
        assert!(conv3x3(&x, 2, 3, &k, &Tensor::zeros([3])).is_err());
        assert!(conv3x3(&x, 2, 3, &k, &b).is_ok());
    }
}
