//! Matrix multiplication kernels.
//!
//! These are straightforward cache-friendly `ikj` loops. At the toy
//! scales used by the FlashPS numeric substrate (token counts in the
//! hundreds, hidden dims ≤ 256) they are comfortably fast, and their
//! FLOP counts — the quantity Table 1 of the paper analyzes — are exact
//! and easy to account for (see [`matmul_flops`]).

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Returns the multiply-add FLOP count of an `[m, k] × [k, n]` matmul,
/// counting one multiply and one add per inner-product term.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Computes `A · B` for `A: [m, k]` and `B: [k, n]`.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the inner
/// dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // The `ikj` order keeps the inner loop streaming over contiguous rows
    // of B and the output, which is what makes this kernel usable at the
    // sizes the diffusion substrate needs.
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Computes `A · Bᵀ` for `A: [m, k]` and `B: [n, k]` without
/// materializing the transpose.
///
/// This is the natural layout for the attention score computation
/// `Q · Kᵀ`, where both operands store one token per row.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the shared
/// dimension disagrees.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_bt", a)?;
    check_rank2("matmul_bt", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// Computes `Aᵀ · B` for `A: [k, m]` and `B: [k, n]` without
/// materializing the transpose.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the shared
/// dimension disagrees.
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_tb", a)?;
    check_rank2("matmul_tb", b)?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tb",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, [m, n])
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = DetRng::new(2);
        let a = Tensor::randn([4, 4], &mut rng);
        let i = Tensor::eye(4);
        assert!(matmul(&a, &i).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
        assert!(matmul(&i, &a).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn rejects_non_matrices() {
        let a = Tensor::zeros([2, 3, 4]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &b).is_err());
        assert!(matmul_tb(&a, &b).is_err());
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let mut rng = DetRng::new(3);
        let a = Tensor::randn([5, 7], &mut rng);
        let b = Tensor::randn([6, 7], &mut rng);
        let via_bt = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert!(via_bt.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn tb_matches_explicit_transpose() {
        let mut rng = DetRng::new(4);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([7, 6], &mut rng);
        let via_tb = matmul_tb(&a, &b).unwrap();
        let via_t = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert!(via_tb.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = DetRng::new(5);
        let a = Tensor::randn([3, 8], &mut rng);
        let b = Tensor::randn([8, 2], &mut rng);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
        assert_eq!(matmul_flops(1, 1, 1), 2);
    }
}
