//! Matrix multiplication kernels.
//!
//! These are straightforward cache-friendly `ikj` loops. At the toy
//! scales used by the FlashPS numeric substrate (token counts in the
//! hundreds, hidden dims ≤ 256) they are comfortably fast, and their
//! FLOP counts — the quantity Table 1 of the paper analyzes — are exact
//! and easy to account for (see [`matmul_flops`]).
//!
//! All three kernels parallelize over *output rows* through
//! [`crate::pool`]: each row's inner reduction runs the same scalar
//! code in the same order on every path, so parallel results are
//! bitwise identical to scalar ones.
//!
//! Earlier revisions skipped inner-product terms whose `A` element was
//! exactly `0.0`. That branch is gone: it made measured kernel time
//! depend on operand sparsity while [`matmul_flops`] (and the paper's
//! Table 1 accounting, which this repo reproduces) count dense work, so
//! timed FLOP/s could silently overstate the kernel on masked/padded
//! operands. Mask-aware computation in this repo saves work by
//! *gathering rows* (see [`super::gather`]), never by relying on
//! incidental zeros, so the branch had no legitimate caller. Dropping
//! it changes no result except the sign of a `-0.0` accumulation edge
//! case (`acc + 0.0·b` can flip `-0.0` to `+0.0`).

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, pool, scratch, Result};

/// Returns the multiply-add FLOP count of an `[m, k] × [k, n]` matmul,
/// counting one multiply and one add per inner-product term.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Computes `A · B` for `A: [m, k]` and `B: [k, n]`.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the inner
/// dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(&mut out, m, n, 2 * k * n, |r0, chunk| {
        matmul_rows(chunk, r0, ad, bd, k, n);
    });
    Tensor::from_vec(out, [m, n])
}

/// Scalar kernel for output rows `r0..` of `A · B`, written into
/// `chunk`. The `ikj` order keeps the inner loop streaming over
/// contiguous rows of B and the output, which is what makes this kernel
/// usable at the sizes the diffusion substrate needs.
#[inline]
pub(crate) fn matmul_rows(
    chunk: &mut [f32],
    r0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    for (ri, orow) in chunk.chunks_exact_mut(n).enumerate() {
        let i = r0 + ri;
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Computes `A · Bᵀ` for `A: [m, k]` and `B: [n, k]` without
/// materializing the transpose.
///
/// This is the natural layout for the attention score computation
/// `Q · Kᵀ`, where both operands store one token per row.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the shared
/// dimension disagrees.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_bt", a)?;
    check_rank2("matmul_bt", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul_bt");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(&mut out, m, n, 2 * k * n, |r0, chunk| {
        matmul_bt_rows(chunk, r0, ad, bd, k, n);
    });
    Tensor::from_vec(out, [m, n])
}

/// Scalar kernel for output rows `r0..` of `A · Bᵀ`: one dot product
/// of contiguous rows per output element.
#[inline]
pub(crate) fn matmul_bt_rows(
    chunk: &mut [f32],
    r0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    for (ri, orow) in chunk.chunks_exact_mut(n).enumerate() {
        let i = r0 + ri;
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// Computes `Aᵀ · B` for `A: [k, m]` and `B: [k, n]` without
/// materializing the transpose.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the shared
/// dimension disagrees.
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_tb", a)?;
    check_rank2("matmul_tb", b)?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tb",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul_tb");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(&mut out, m, n, 2 * k * n, |r0, chunk| {
        // Per output row `i`, the accumulation still walks `p`
        // ascending — the same reduction order as the historical
        // `p`-outer loop — so row-chunking leaves every element
        // bit-for-bit unchanged. Only the read of `A` (stride `m`)
        // differs from the dense kernels above.
        for (ri, orow) in chunk.chunks_exact_mut(n).enumerate() {
            let i = r0 + ri;
            for p in 0..k {
                let av = ad[p * m + i];
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    });
    Tensor::from_vec(out, [m, n])
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = DetRng::new(2);
        let a = Tensor::randn([4, 4], &mut rng);
        let i = Tensor::eye(4);
        assert!(matmul(&a, &i).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
        assert!(matmul(&i, &a).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn rejects_non_matrices() {
        let a = Tensor::zeros([2, 3, 4]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &b).is_err());
        assert!(matmul_tb(&a, &b).is_err());
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let mut rng = DetRng::new(3);
        let a = Tensor::randn([5, 7], &mut rng);
        let b = Tensor::randn([6, 7], &mut rng);
        let via_bt = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert!(via_bt.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn tb_matches_explicit_transpose() {
        let mut rng = DetRng::new(4);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([7, 6], &mut rng);
        let via_tb = matmul_tb(&a, &b).unwrap();
        let via_t = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert!(via_tb.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = DetRng::new(5);
        let a = Tensor::randn([3, 8], &mut rng);
        let b = Tensor::randn([8, 2], &mut rng);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
        assert_eq!(matmul_flops(1, 1, 1), 2);
    }
}
