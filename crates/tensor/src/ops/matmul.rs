//! Matrix multiplication kernels.
//!
//! The dense row kernel (`matmul_rows`, shared by [`matmul`] and the
//! fused GEMM+GeLU) is cache-blocked: `MC` comes from the pool's row
//! chunking, the `k` dimension is cut into `KC` strips, and output
//! columns into `NC` panels whose `B` sub-block is packed into a
//! contiguous scratch buffer; inside a panel a manually unrolled 4×8
//! register micro-kernel (4 output rows × 8 columns of accumulators)
//! does the work. [`matmul_bt`] uses a 4-wide column unroll that
//! amortizes each `A`-row read over four dot products.
//!
//! **Reduction order is load-bearing.** Every output element is still
//! the sum `((0 + a·b)₀ + a·b)₁ + …` taken in ascending `p` order —
//! blocking only changes *when* partial sums visit memory (an `f32`
//! store/load round trip is exact), unrolling only changes *which
//! independent elements* advance together, and no `mul_add` is used
//! (hardware FMA rounds differently). So the tiled kernels are
//! bit-for-bit identical to the straightforward `ikj` loop they
//! replaced — which is kept as [`matmul_naive`], the frozen PR 4
//! kernel that `bench_kernels` times as its "old scalar" baseline —
//! and every byte-identity guarantee built on top (cache replays,
//! committed artifacts, chaos reproducibility) is preserved.
//!
//! All kernels parallelize over *output rows* through [`crate::pool`]:
//! each row's reduction runs in the same order on every path, so
//! parallel results are bitwise identical to scalar ones.
//!
//! Earlier revisions skipped inner-product terms whose `A` element was
//! exactly `0.0`. That branch is gone: it made measured kernel time
//! depend on operand sparsity while [`matmul_flops`] (and the paper's
//! Table 1 accounting, which this repo reproduces) count dense work, so
//! timed FLOP/s could silently overstate the kernel on masked/padded
//! operands. Mask-aware computation in this repo saves work by
//! *gathering rows* (see [`super::gather`] and [`super::sparse`]),
//! never by relying on incidental zeros.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, pool, scratch, Result};

/// `k`-strip depth of the blocked kernel. Model shapes keep `k ≤ 256`,
/// so most calls take one or two strips; the strip exists so a packed
/// panel plus the active `A` rows stay L1/L2-resident at any `k`.
const KC: usize = 128;
/// Column width of one packed `B` panel.
const NC: usize = 128;
/// Rows of the register micro-kernel.
const MR: usize = 4;
/// Columns of the register micro-kernel.
const NR: usize = 8;

/// Returns the multiply-add FLOP count of an `[m, k] × [k, n]` matmul,
/// counting one multiply and one add per inner-product term.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

/// Computes `A · B` for `A: [m, k]` and `B: [k, n]`.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the inner
/// dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(
        &mut out,
        m,
        n,
        2 * k * n,
        pool::KernelClass::Gemm,
        |r0, chunk| {
            matmul_rows(chunk, r0, ad, bd, k, n);
        },
    );
    Tensor::from_vec(out, [m, n])
}

/// The pre-tiling `ikj` kernel, frozen as the reference/baseline: for
/// each output row, stream rows of `B` and accumulate into the output
/// row in ascending-`p` order.
///
/// Kept for two reasons: `bench_kernels` times it as the "old scalar"
/// baseline its tiled-GEMM gate compares against, and the identity
/// tests use it as the order-of-operations oracle the blocked kernel
/// must match bit-for-bit.
#[inline]
pub(crate) fn matmul_rows_naive(
    chunk: &mut [f32],
    r0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    for (ri, orow) in chunk.chunks_exact_mut(n).enumerate() {
        let i = r0 + ri;
        let arow = &ad[i * k..(i + 1) * k];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// Serial `A · B` through the frozen naive kernel — the historical
/// scalar GEMM `bench_kernels` measures its tiled-speedup gate
/// against. Never pooled, never traced; not a production entry point.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the inner
/// dimensions disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_naive", a)?;
    check_rank2("matmul_naive", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_naive",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = scratch::take(m * n);
    matmul_rows_naive(&mut out, 0, a.data(), b.data(), k, n);
    Tensor::from_vec(out, [m, n])
}

/// Blocked scalar kernel for output rows `r0..` of `A · B`, written
/// into `chunk` (which arrives zero-filled from the scratch pool).
///
/// Loop nest: `KC` strips of `k` (ascending, partial sums parked in
/// the output between strips), `NC` panels of columns with the `B`
/// sub-block packed contiguous, then `MR`×`NR` register tiles over the
/// chunk's rows. Each output element accumulates in ascending-`p`
/// order throughout — see the module docs for why that is the one
/// property this kernel must not trade away.
#[inline]
pub(crate) fn matmul_rows(
    chunk: &mut [f32],
    r0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = chunk.len() / n;
    let mut pack = scratch::take(KC.min(k.max(1)) * NC.min(n));
    let mut kc0 = 0;
    while kc0 < k {
        let kc_len = KC.min(k - kc0);
        let mut nc0 = 0;
        while nc0 < n {
            let nc_len = NC.min(n - nc0);
            // Pack the [kc_len, nc_len] sub-block of B contiguously so
            // the micro-kernel streams it with unit stride.
            for p in 0..kc_len {
                pack[p * nc_len..(p + 1) * nc_len]
                    .copy_from_slice(&bd[(kc0 + p) * n + nc0..(kc0 + p) * n + nc0 + nc_len]);
            }
            let mut r = 0;
            while r + MR <= rows {
                let arows = [
                    &ad[(r0 + r) * k + kc0..][..kc_len],
                    &ad[(r0 + r + 1) * k + kc0..][..kc_len],
                    &ad[(r0 + r + 2) * k + kc0..][..kc_len],
                    &ad[(r0 + r + 3) * k + kc0..][..kc_len],
                ];
                micro_kernel_4(chunk, r, n, nc0, nc_len, &pack, arows);
                r += MR;
            }
            while r < rows {
                let arow = &ad[(r0 + r) * k + kc0..][..kc_len];
                micro_kernel_1(chunk, r, n, nc0, nc_len, &pack, arow);
                r += 1;
            }
            nc0 += nc_len;
        }
        kc0 += kc_len;
    }
    scratch::give(pack);
}

/// 4-row micro-kernel: advances rows `r..r+4` of the output by one
/// packed panel, `NR` columns of register accumulators at a time.
#[inline]
fn micro_kernel_4(
    chunk: &mut [f32],
    r: usize,
    n: usize,
    nc0: usize,
    nc_len: usize,
    pack: &[f32],
    arows: [&[f32]; MR],
) {
    let kc_len = arows[0].len();
    let mut j0 = 0;
    while j0 + NR <= nc_len {
        // Load the in-progress partial sums (exact f32 round trip).
        let mut acc = [[0.0f32; NR]; MR];
        for (u, accr) in acc.iter_mut().enumerate() {
            accr.copy_from_slice(&chunk[(r + u) * n + nc0 + j0..][..NR]);
        }
        for p in 0..kc_len {
            let bp: &[f32; NR] = pack[p * nc_len + j0..][..NR].try_into().expect("NR cols");
            for (accr, arow) in acc.iter_mut().zip(arows.iter()) {
                let av = arow[p];
                for (o, &bv) in accr.iter_mut().zip(bp.iter()) {
                    *o += av * bv;
                }
            }
        }
        for (u, accr) in acc.iter().enumerate() {
            chunk[(r + u) * n + nc0 + j0..][..NR].copy_from_slice(accr);
        }
        j0 += NR;
    }
    // Column remainder: per-element register accumulation, still
    // ascending p.
    for j in j0..nc_len {
        for (u, arow) in arows.iter().enumerate() {
            let o = &mut chunk[(r + u) * n + nc0 + j];
            let mut acc = *o;
            for (p, &av) in arow.iter().enumerate() {
                acc += av * pack[p * nc_len + j];
            }
            *o = acc;
        }
    }
}

/// Single-row edition of the micro-kernel for the chunk's row
/// remainder.
#[inline]
fn micro_kernel_1(
    chunk: &mut [f32],
    r: usize,
    n: usize,
    nc0: usize,
    nc_len: usize,
    pack: &[f32],
    arow: &[f32],
) {
    let mut j0 = 0;
    while j0 + NR <= nc_len {
        let mut acc = [0.0f32; NR];
        acc.copy_from_slice(&chunk[r * n + nc0 + j0..][..NR]);
        for (p, &av) in arow.iter().enumerate() {
            let bp: &[f32; NR] = pack[p * nc_len + j0..][..NR].try_into().expect("NR cols");
            for (o, &bv) in acc.iter_mut().zip(bp.iter()) {
                *o += av * bv;
            }
        }
        chunk[r * n + nc0 + j0..][..NR].copy_from_slice(&acc);
        j0 += NR;
    }
    for j in j0..nc_len {
        let o = &mut chunk[r * n + nc0 + j];
        let mut acc = *o;
        for (p, &av) in arow.iter().enumerate() {
            acc += av * pack[p * nc_len + j];
        }
        *o = acc;
    }
}

/// Computes `A · Bᵀ` for `A: [m, k]` and `B: [n, k]` without
/// materializing the transpose.
///
/// This is the natural layout for the attention score computation
/// `Q · Kᵀ`, where both operands store one token per row.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the shared
/// dimension disagrees.
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_bt", a)?;
    check_rank2("matmul_bt", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul_bt");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(
        &mut out,
        m,
        n,
        2 * k * n,
        pool::KernelClass::Gemm,
        |r0, chunk| {
            matmul_bt_rows(chunk, r0, ad, bd, k, n);
        },
    );
    Tensor::from_vec(out, [m, n])
}

/// Scalar kernel for output rows `r0..` of `A · Bᵀ`: dot products of
/// contiguous rows, unrolled 4 output columns wide so each read of the
/// `A` row feeds four independent accumulators. Each accumulator is
/// still a single ascending-`k` sum, so the unroll is bitwise
/// invisible.
#[inline]
pub(crate) fn matmul_bt_rows(
    chunk: &mut [f32],
    r0: usize,
    ad: &[f32],
    bd: &[f32],
    k: usize,
    n: usize,
) {
    for (ri, orow) in chunk.chunks_exact_mut(n).enumerate() {
        let i = r0 + ri;
        let arow = &ad[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bd[j * k..(j + 1) * k];
            let b1 = &bd[(j + 1) * k..(j + 2) * k];
            let b2 = &bd[(j + 2) * k..(j + 3) * k];
            let b3 = &bd[(j + 3) * k..(j + 4) * k];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (t, &x) in arow.iter().enumerate() {
                a0 += x * b0[t];
                a1 += x * b1[t];
                a2 += x * b2[t];
                a3 += x * b3[t];
            }
            orow[j] = a0;
            orow[j + 1] = a1;
            orow[j + 2] = a2;
            orow[j + 3] = a3;
            j += 4;
        }
        for (jj, o) in orow.iter_mut().enumerate().skip(j) {
            let brow = &bd[jj * k..(jj + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
}

/// Computes `Aᵀ · B` for `A: [k, m]` and `B: [k, n]` without
/// materializing the transpose.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the shared
/// dimension disagrees.
pub fn matmul_tb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul_tb", a)?;
    check_rank2("matmul_tb", b)?;
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tb",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul_tb");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(
        &mut out,
        m,
        n,
        2 * k * n,
        pool::KernelClass::Gemm,
        |r0, chunk| {
            // Per output row `i`, the accumulation still walks `p`
            // ascending — the same reduction order as the historical
            // `p`-outer loop — so row-chunking leaves every element
            // bit-for-bit unchanged. Only the read of `A` (stride `m`)
            // differs from the dense kernels above.
            for (ri, orow) in chunk.chunks_exact_mut(n).enumerate() {
                let i = r0 + ri;
                for p in 0..k {
                    let av = ad[p * m + i];
                    let brow = &bd[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        },
    );
    Tensor::from_vec(out, [m, n])
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], [2, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = DetRng::new(2);
        let a = Tensor::randn([4, 4], &mut rng);
        let i = Tensor::eye(4);
        assert!(matmul(&a, &i).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
        assert!(matmul(&i, &a).unwrap().max_abs_diff(&a).unwrap() < 1e-6);
    }

    #[test]
    fn rejects_inner_dim_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_naive(&a, &b).is_err());
    }

    #[test]
    fn rejects_non_matrices() {
        let a = Tensor::zeros([2, 3, 4]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &b).is_err());
        assert!(matmul_tb(&a, &b).is_err());
        assert!(matmul_naive(&a, &b).is_err());
    }

    #[test]
    fn bt_matches_explicit_transpose() {
        let mut rng = DetRng::new(3);
        let a = Tensor::randn([5, 7], &mut rng);
        let b = Tensor::randn([6, 7], &mut rng);
        let via_bt = matmul_bt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert!(via_bt.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn tb_matches_explicit_transpose() {
        let mut rng = DetRng::new(4);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([7, 6], &mut rng);
        let via_tb = matmul_tb(&a, &b).unwrap();
        let via_t = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert!(via_tb.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = DetRng::new(5);
        let a = Tensor::randn([3, 8], &mut rng);
        let b = Tensor::randn([8, 2], &mut rng);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
    }

    /// The blocked kernel must be bit-for-bit the naive `ikj` loop at
    /// every shape class the blocking distinguishes: micro-kernel
    /// remainders in rows and columns, single/partial/multiple KC
    /// strips and NC panels.
    #[test]
    fn tiled_kernel_is_bitwise_identical_to_naive() {
        let mut rng = DetRng::new(0x7A11);
        let shapes = [
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 11),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (7, KC * 2 + 5, NC + 9),
            (16, 64, NC * 2 + 3),
            (33, 130, 17),
        ];
        for &(m, k, n) in &shapes {
            let a = Tensor::randn([m, k], &mut rng);
            let b = Tensor::randn([k, n], &mut rng);
            let tiled = matmul(&a, &b).unwrap();
            let naive = matmul_naive(&a, &b).unwrap();
            let tb: Vec<u32> = tiled.data().iter().map(|v| v.to_bits()).collect();
            let nb: Vec<u32> = naive.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(tb, nb, "[{m}x{k}]x[{k}x{n}] tiled != naive");
        }
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
        assert_eq!(matmul_flops(1, 1, 1), 2);
    }
}
