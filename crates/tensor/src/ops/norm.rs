//! Normalization layers: LayerNorm, RMSNorm, and AdaLN-style modulation.
//!
//! All of these are token-wise operations — each row (token) is
//! normalized independently — which is exactly the property §3.1 of the
//! FlashPS paper relies on to compute masked and unmasked tokens
//! separately.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, pool, scratch, Result};

/// Numerical floor added to variances before taking square roots.
pub const NORM_EPS: f32 = 1e-5;

/// Applies LayerNorm over the last axis of a rank-2 tensor.
///
/// `gamma` and `beta` are per-feature scale and shift of shape `[h]`.
///
/// # Errors
///
/// Returns an error when `x` is not rank-2 or the parameter vectors do
/// not match the feature dimension.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("layer_norm", x, gamma, Some(beta))?;
    let _span = ktrace::span("layer_norm");
    let mut out = scratch::take(rows * cols);
    let xd = x.data();
    let (gd, bd) = (gamma.data(), beta.data());
    pool::for_each_row_chunk(
        &mut out,
        rows,
        cols,
        6 * cols,
        pool::KernelClass::RowWise,
        |r0, chunk| {
            for (ri, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = r0 + ri;
                layer_norm_row(&xd[r * cols..(r + 1) * cols], orow, gd, bd);
            }
        },
    );
    Tensor::from_vec(out, [rows, cols])
}

/// Scalar LayerNorm of one row. [`layer_norm`] and the fused
/// AdaLN+modulate kernel both call this, so their normalized
/// activations agree bitwise.
#[inline]
pub(crate) fn layer_norm_row(row: &[f32], orow: &mut [f32], gamma: &[f32], beta: &[f32]) {
    let cols = row.len();
    let mean = row.iter().sum::<f32>() / cols as f32;
    let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
    let inv = 1.0 / (var + NORM_EPS).sqrt();
    for (c, o) in orow.iter_mut().enumerate() {
        *o = (row[c] - mean) * inv * gamma[c] + beta[c];
    }
}

/// Applies RMSNorm over the last axis of a rank-2 tensor.
///
/// # Errors
///
/// Returns an error when `x` is not rank-2 or `gamma` does not match the
/// feature dimension.
pub fn rms_norm(x: &Tensor, gamma: &Tensor) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("rms_norm", x, gamma, None)?;
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let orow = &mut out[r * cols..(r + 1) * cols];
        let ms = row.iter().map(|&v| v * v).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + NORM_EPS).sqrt();
        for (c, o) in orow.iter_mut().enumerate() {
            *o = row[c] * inv * gamma.data()[c];
        }
    }
    Tensor::from_vec(out, [rows, cols])
}

/// AdaLN-style modulation: `x * (1 + scale) + shift`, broadcast over
/// rows.
///
/// DiT-style diffusion transformers condition on the timestep/prompt by
/// modulating normalized activations with per-feature `scale` and
/// `shift` vectors derived from the conditioning embedding.
///
/// # Errors
///
/// Returns an error when `x` is not rank-2 or the modulation vectors do
/// not match the feature dimension.
pub fn modulate(x: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("modulate", x, scale, Some(shift))?;
    let mut out = scratch::take(rows * cols);
    out.copy_from_slice(x.data());
    for orow in out.chunks_exact_mut(cols.max(1)) {
        modulate_row_inplace(orow, scale.data(), shift.data());
    }
    Tensor::from_vec(out, [rows, cols])
}

/// Scalar AdaLN modulation of one row, in place: `o ← o·(1+scale) +
/// shift`. Shared by [`modulate`] and the fused AdaLN kernel.
#[inline]
pub(crate) fn modulate_row_inplace(orow: &mut [f32], scale: &[f32], shift: &[f32]) {
    for (c, o) in orow.iter_mut().enumerate() {
        *o = *o * (1.0 + scale[c]) + shift[c];
    }
}

/// Applies GroupNorm over the last axis of a rank-2 tensor: each row's
/// features are split into `groups` contiguous groups normalized
/// independently (UNet convolutional blocks use GroupNorm; like the
/// other norms it is token-wise, so mask-aware computation applies).
///
/// # Errors
///
/// Returns an error when `x` is not rank-2, `groups` does not divide
/// the feature dimension, or parameter vectors mismatch.
pub fn group_norm(x: &Tensor, groups: usize, gamma: &Tensor, beta: &Tensor) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("group_norm", x, gamma, Some(beta))?;
    if groups == 0 || cols % groups != 0 {
        return Err(TensorError::ShapeMismatch {
            op: "group_norm",
            lhs: vec![rows, cols],
            rhs: vec![groups],
        });
    }
    let gsize = cols / groups;
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let orow = &mut out[r * cols..(r + 1) * cols];
        for g in 0..groups {
            let span = g * gsize..(g + 1) * gsize;
            let mean = row[span.clone()].iter().sum::<f32>() / gsize as f32;
            let var = row[span.clone()]
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>()
                / gsize as f32;
            let inv = 1.0 / (var + NORM_EPS).sqrt();
            for c in span {
                orow[c] = (row[c] - mean) * inv * gamma.data()[c] + beta.data()[c];
            }
        }
    }
    Tensor::from_vec(out, [rows, cols])
}

pub(crate) fn check_norm_args(
    op: &'static str,
    x: &Tensor,
    a: &Tensor,
    b: Option<&Tensor>,
) -> Result<(usize, usize)> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: x.rank(),
        });
    }
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    if a.numel() != cols || b.is_some_and(|b| b.numel() != cols) {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: x.dims().to_vec(),
            rhs: a.dims().to_vec(),
        });
    }
    Ok((rows, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use proptest::prelude::*;

    fn unit_params(h: usize) -> (Tensor, Tensor) {
        (Tensor::full([h], 1.0), Tensor::zeros([h]))
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut rng = DetRng::new(1);
        let x = Tensor::randn([4, 64], &mut rng).scale(3.0);
        let (g, b) = unit_params(64);
        let y = layer_norm(&x, &g, &b).unwrap();
        for r in 0..4 {
            let row = y.row(r).unwrap();
            let mean = row.iter().sum::<f32>() / 64.0;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let x = Tensor::from_vec(vec![1.0, -1.0], [1, 2]).unwrap();
        let g = Tensor::full([2], 2.0);
        let b = Tensor::full([2], 5.0);
        let y = layer_norm(&x, &g, &b).unwrap();
        // Normalized row is ±1 (up to eps), so output is 5 ± 2.
        assert!((y.data()[0] - 7.0).abs() < 1e-2);
        assert!((y.data()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn rms_norm_unit_rms() {
        let mut rng = DetRng::new(2);
        let x = Tensor::randn([3, 32], &mut rng).scale(10.0);
        let g = Tensor::full([32], 1.0);
        let y = rms_norm(&x, &g).unwrap();
        for r in 0..3 {
            let row = y.row(r).unwrap();
            let ms = row.iter().map(|&v| v * v).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-2, "ms {ms}");
        }
    }

    #[test]
    fn modulate_identity_at_zero() {
        let mut rng = DetRng::new(3);
        let x = Tensor::randn([2, 8], &mut rng);
        let y = modulate(&x, &Tensor::zeros([8]), &Tensor::zeros([8])).unwrap();
        assert!(y.max_abs_diff(&x).unwrap() < 1e-7);
    }

    #[test]
    fn modulate_scale_and_shift() {
        let x = Tensor::full([1, 2], 2.0);
        let scale = Tensor::from_vec(vec![0.5, -1.0], [2]).unwrap();
        let shift = Tensor::from_vec(vec![1.0, 3.0], [2]).unwrap();
        let y = modulate(&x, &scale, &shift).unwrap();
        assert_eq!(y.data(), &[4.0, 3.0]);
    }

    #[test]
    fn group_norm_normalizes_per_group() {
        let mut rng = DetRng::new(5);
        let x = Tensor::randn([3, 16], &mut rng).scale(4.0);
        let (g, b) = unit_params(16);
        let y = group_norm(&x, 4, &g, &b).unwrap();
        for r in 0..3 {
            let row = y.row(r).unwrap();
            for grp in 0..4 {
                let span = &row[grp * 4..(grp + 1) * 4];
                let mean = span.iter().sum::<f32>() / 4.0;
                let var = span.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
                assert!(mean.abs() < 1e-4, "group {grp} mean {mean}");
                assert!((var - 1.0).abs() < 0.05, "group {grp} var {var}");
            }
        }
        // One group == LayerNorm.
        let ln = layer_norm(&x, &g, &b).unwrap();
        let gn1 = group_norm(&x, 1, &g, &b).unwrap();
        assert!(ln.max_abs_diff(&gn1).unwrap() < 1e-5);
    }

    #[test]
    fn group_norm_validates_groups() {
        let x = Tensor::zeros([2, 6]);
        let (g, b) = unit_params(6);
        assert!(group_norm(&x, 4, &g, &b).is_err(), "4 does not divide 6");
        assert!(group_norm(&x, 0, &g, &b).is_err());
        assert!(group_norm(&x, 3, &g, &b).is_ok());
    }

    #[test]
    fn rejects_bad_shapes() {
        let x = Tensor::zeros([2, 4]);
        let (g, b) = unit_params(3);
        assert!(layer_norm(&x, &g, &b).is_err());
        assert!(rms_norm(&x, &g).is_err());
        assert!(modulate(&x, &g, &b).is_err());
        let bad = Tensor::zeros([2, 4, 1]);
        let (g4, b4) = unit_params(4);
        assert!(layer_norm(&bad, &g4, &b4).is_err());
    }

    #[test]
    fn norms_are_token_wise() {
        // Normalizing two tokens together or separately gives identical
        // results — the property mask-aware computation depends on.
        let mut rng = DetRng::new(4);
        let x = Tensor::randn([2, 16], &mut rng);
        let (g, b) = unit_params(16);
        let joint = layer_norm(&x, &g, &b).unwrap();
        for r in 0..2 {
            let single = Tensor::from_vec(x.row(r).unwrap().to_vec(), [1, 16]).unwrap();
            let alone = layer_norm(&single, &g, &b).unwrap();
            assert_eq!(alone.data(), joint.row(r).unwrap());
        }
    }

    proptest! {
        #[test]
        fn prop_layer_norm_shift_invariant(shift in -100.0f32..100.0) {
            let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 4]).unwrap();
            let xs = x.map(|v| v + shift);
            let (g, b) = unit_params(4);
            let y = layer_norm(&x, &g, &b).unwrap();
            let ys = layer_norm(&xs, &g, &b).unwrap();
            prop_assert!(y.max_abs_diff(&ys).unwrap() < 1e-3);
        }
    }
}
