//! Non-linear activations used by transformer feed-forward layers.

use crate::tensor::Tensor;

/// Scalar GeLU using the tanh approximation from the GPT-2 reference
/// implementation.
pub fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Scalar SiLU (a.k.a. swish): `x * sigmoid(x)`.
pub fn silu_scalar(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Applies GeLU element-wise.
pub fn gelu(x: &Tensor) -> Tensor {
    x.map(gelu_scalar)
}

/// Applies SiLU element-wise.
pub fn silu(x: &Tensor) -> Tensor {
    x.map(silu_scalar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_scalar(0.0), 0.0);
        // GeLU(1) ≈ 0.8412 for the tanh approximation.
        assert!((gelu_scalar(1.0) - 0.8412).abs() < 1e-3);
        // Large positive inputs pass through, large negative vanish.
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_scalar(-10.0).abs() < 1e-3);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu_scalar(0.0), 0.0);
        assert!((silu_scalar(1.0) - 0.731_058_6).abs() < 1e-4);
        assert!((silu_scalar(20.0) - 20.0).abs() < 1e-3);
    }

    #[test]
    fn tensor_variants_match_scalar() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], [5]).unwrap();
        let g = gelu(&x);
        let s = silu(&x);
        for (i, &v) in x.data().iter().enumerate() {
            assert_eq!(g.data()[i], gelu_scalar(v));
            assert_eq!(s.data()[i], silu_scalar(v));
        }
    }

    proptest! {
        #[test]
        fn prop_gelu_bounded_below(x in -100.0f32..100.0) {
            // GeLU is bounded below by roughly -0.17 and above by x.
            let y = gelu_scalar(x);
            prop_assert!(y >= -0.2);
            prop_assert!(y <= x.max(0.0) + 1e-4);
        }

        #[test]
        fn prop_silu_sign_structure(x in 0.01f32..50.0) {
            // SiLU is positive for positive inputs and ≥ -0.279 overall.
            prop_assert!(silu_scalar(x) > 0.0);
            prop_assert!(silu_scalar(-x) >= -0.3);
        }
    }
}
