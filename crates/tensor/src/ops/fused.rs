//! Fused kernels for the transformer block's hot sequences.
//!
//! Each kernel here collapses a sequence of primitive ops into one
//! pass, eliminating intermediate tensors (and, for attention, the
//! per-head column slicing) while reusing the *same scalar row
//! helpers* as the primitives — `layer_norm_row`,
//! `softmax_row_inplace`, the matmul row kernels —
//! so every fused result is **bitwise identical** to the composed
//! path. That identity is asserted by proptests in this crate and by
//! whole-pipeline byte-equality checks in `fps-bench`'s
//! `bench_kernels`.
//!
//! Fusions provided (the `TransformerBlock` hot path):
//!
//! - [`ada_layer_norm`] — LayerNorm + AdaLN modulate in one row pass.
//! - [`mha_fused`] — per-head `QKᵀ → softmax → ·V` that materializes
//!   one score row at a time instead of an `[N, L]` matrix per head,
//!   reading head slices in place instead of copying column blocks.
//! - [`matmul_gelu`] — FFN up-projection with GeLU applied to each
//!   output row as it is produced.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, pool, scratch, Result};

use super::activation::gelu_scalar;
use super::matmul::matmul_rows;
use super::norm::{check_norm_args, layer_norm_row, modulate_row_inplace};
use super::softmax::softmax_row_inplace;

/// Fused `modulate(layer_norm(x, gamma, beta), scale, shift)`.
///
/// # Errors
///
/// Returns an error when `x` is not rank-2 or any parameter vector
/// does not match the feature dimension.
pub fn ada_layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    scale: &Tensor,
    shift: &Tensor,
) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("ada_layer_norm", x, gamma, Some(beta))?;
    check_norm_args("ada_layer_norm", x, scale, Some(shift))?;
    let _span = ktrace::span("ada_layer_norm");
    let mut out = scratch::take(rows * cols);
    let xd = x.data();
    let (gd, bd) = (gamma.data(), beta.data());
    let (sd, hd) = (scale.data(), shift.data());
    pool::for_each_row_chunk(
        &mut out,
        rows,
        cols,
        8 * cols,
        pool::KernelClass::RowWise,
        |r0, chunk| {
            for (ri, orow) in chunk.chunks_exact_mut(cols).enumerate() {
                let r = r0 + ri;
                layer_norm_row(&xd[r * cols..(r + 1) * cols], orow, gd, bd);
                modulate_row_inplace(orow, sd, hd);
            }
        },
    );
    Tensor::from_vec(out, [rows, cols])
}

/// Fused `gelu(matmul(a, b))`.
///
/// # Errors
///
/// Returns an error if either operand is not rank-2 or the inner
/// dimensions disagree.
pub fn matmul_gelu(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = rank2_dims("matmul_gelu", a)?;
    let (k2, n) = rank2_dims("matmul_gelu", b)?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_gelu",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _span = ktrace::span("matmul_gelu");
    let mut out = scratch::take(m * n);
    let ad = a.data();
    let bd = b.data();
    pool::for_each_row_chunk(
        &mut out,
        m,
        n,
        2 * k * n + 8 * n,
        pool::KernelClass::Gemm,
        |r0, chunk| {
            matmul_rows(chunk, r0, ad, bd, k, n);
            for o in chunk.iter_mut() {
                *o = gelu_scalar(*o);
            }
        },
    );
    Tensor::from_vec(out, [m, n])
}

/// Fused multi-head scaled-dot-product attention, pre-output-
/// projection: for each query row and head, computes the score row
/// `q·Kᵀ·scale`, softmaxes it in place, and accumulates the context
/// `probs·V` — never materializing a full `[N, L]` score tensor, and
/// reading each head's `dh`-wide slice of the row-major `[·, H]`
/// matrices directly instead of slicing columns into temporaries.
///
/// Matches the composed `matmul_bt → scale → softmax_rows → matmul`
/// path bitwise: per (row, head) the reduction orders are identical.
///
/// # Errors
///
/// Returns an error when shapes are inconsistent, `heads` does not
/// divide the hidden dimension, or `k`/`v` have no rows (the composed
/// path rejects a zero-width softmax the same way).
pub fn mha_fused(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, scale: f32) -> Result<Tensor> {
    let (n, h) = rank2_dims("mha_fused", q)?;
    let (l, hk) = rank2_dims("mha_fused", k)?;
    let (lv, hv) = rank2_dims("mha_fused", v)?;
    if hk != h || hv != h || lv != l || heads == 0 || h % heads != 0 {
        return Err(TensorError::ShapeMismatch {
            op: "mha_fused",
            lhs: vec![n, h, heads],
            rhs: vec![l, hk, hv, lv],
        });
    }
    if l == 0 {
        // The composed path feeds `[N, 0]` scores into softmax_rows,
        // which rejects zero-width rows; keep that contract.
        return Err(TensorError::Empty { op: "mha_fused" });
    }
    let _span = ktrace::span("mha_fused");
    let dh = h / heads;
    let mut out = scratch::take(n * h);
    let (qd, kd, vd) = (q.data(), k.data(), v.data());
    pool::for_each_row_chunk(
        &mut out,
        n,
        h,
        4 * h * l,
        pool::KernelClass::Gemm,
        |r0, chunk| {
            let mut scores = scratch::take(l);
            for (ri, orow) in chunk.chunks_exact_mut(h).enumerate() {
                let i = r0 + ri;
                for head in 0..heads {
                    let off = head * dh;
                    let qrow = &qd[i * h + off..i * h + off + dh];
                    for (j, s) in scores.iter_mut().enumerate() {
                        let krow = &kd[j * h + off..j * h + off + dh];
                        let mut acc = 0.0f32;
                        for (&x, &y) in qrow.iter().zip(krow.iter()) {
                            acc += x * y;
                        }
                        *s = acc * scale;
                    }
                    softmax_row_inplace(&mut scores);
                    let octx = &mut orow[off..off + dh];
                    for (p, &pv) in scores.iter().enumerate() {
                        let vrow = &vd[p * h + off..p * h + off + dh];
                        for (o, &vv) in octx.iter_mut().zip(vrow.iter()) {
                            *o += pv * vv;
                        }
                    }
                }
            }
            scratch::give(scores);
        },
    );
    Tensor::from_vec(out, [n, h])
}

fn rank2_dims(op: &'static str, t: &Tensor) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{layer_norm, matmul, matmul_bt, modulate, softmax_rows};
    use crate::pool::{with_compute_path, with_min_parallel_work, ComputePath};
    use crate::rng::DetRng;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    /// Reference MHA built from the primitive ops (the historical
    /// `TransformerBlock::mha` composition, column slicing included).
    fn mha_composed(q: &Tensor, k: &Tensor, v: &Tensor, heads: usize, scale: f32) -> Tensor {
        let (n, h) = (q.dims()[0], q.dims()[1]);
        let dh = h / heads;
        let slice_cols = |x: &Tensor, start: usize| {
            let (rows, cols) = (x.dims()[0], x.dims()[1]);
            let mut out = Vec::with_capacity(rows * dh);
            for r in 0..rows {
                out.extend_from_slice(&x.data()[r * cols + start..r * cols + start + dh]);
            }
            Tensor::from_vec(out, [rows, dh]).unwrap()
        };
        let mut out = Tensor::zeros([n, h]);
        for head in 0..heads {
            let qs = slice_cols(q, head * dh);
            let ks = slice_cols(k, head * dh);
            let vs = slice_cols(v, head * dh);
            let probs = softmax_rows(&matmul_bt(&qs, &ks).unwrap().scale(scale)).unwrap();
            let ctx = matmul(&probs, &vs).unwrap();
            for row in 0..n {
                let src = ctx.row(row).unwrap().to_vec();
                out.row_mut(row).unwrap()[head * dh..(head + 1) * dh].copy_from_slice(&src);
            }
        }
        out
    }

    #[test]
    fn ada_layer_norm_matches_composition_bitwise() {
        let mut rng = DetRng::new(11);
        let x = Tensor::randn([9, 16], &mut rng);
        let g = Tensor::randn([16], &mut rng);
        let b = Tensor::randn([16], &mut rng);
        let s = Tensor::randn([16], &mut rng);
        let sh = Tensor::randn([16], &mut rng);
        let composed = modulate(&layer_norm(&x, &g, &b).unwrap(), &s, &sh).unwrap();
        for path in [
            ComputePath::Scalar,
            ComputePath::Parallel,
            ComputePath::Fused,
        ] {
            let fused = with_compute_path(path, || {
                with_min_parallel_work(0, || ada_layer_norm(&x, &g, &b, &s, &sh).unwrap())
            });
            assert_eq!(bits(&fused), bits(&composed), "path {path:?}");
        }
    }

    #[test]
    fn matmul_gelu_matches_composition_bitwise() {
        let mut rng = DetRng::new(12);
        let a = Tensor::randn([7, 5], &mut rng);
        let b = Tensor::randn([5, 11], &mut rng);
        let composed = crate::ops::gelu(&matmul(&a, &b).unwrap());
        let fused = with_min_parallel_work(0, || matmul_gelu(&a, &b).unwrap());
        assert_eq!(bits(&fused), bits(&composed));
    }

    #[test]
    fn mha_fused_matches_composition_bitwise() {
        let mut rng = DetRng::new(13);
        for (n, l, h, heads) in [(6, 6, 8, 2), (3, 10, 12, 4), (1, 5, 4, 1), (10, 1, 8, 2)] {
            let q = Tensor::randn([n, h], &mut rng);
            let k = Tensor::randn([l, h], &mut rng);
            let v = Tensor::randn([l, h], &mut rng);
            let scale = 1.0 / ((h / heads) as f32).sqrt();
            let composed = mha_composed(&q, &k, &v, heads, scale);
            let fused = with_min_parallel_work(0, || mha_fused(&q, &k, &v, heads, scale).unwrap());
            assert_eq!(
                bits(&fused),
                bits(&composed),
                "n={n} l={l} h={h} heads={heads}"
            );
        }
    }

    #[test]
    fn mha_fused_empty_queries_gives_empty_output() {
        let mut rng = DetRng::new(14);
        let q = Tensor::zeros([0, 8]);
        let k = Tensor::randn([5, 8], &mut rng);
        let v = Tensor::randn([5, 8], &mut rng);
        let out = mha_fused(&q, &k, &v, 2, 0.5).unwrap();
        assert_eq!(out.dims(), &[0, 8]);
    }

    #[test]
    fn mha_fused_rejects_empty_kv_like_composed_path() {
        let q = Tensor::zeros([3, 8]);
        let k = Tensor::zeros([0, 8]);
        let v = Tensor::zeros([0, 8]);
        assert!(matches!(
            mha_fused(&q, &k, &v, 2, 0.5),
            Err(TensorError::Empty { .. })
        ));
    }

    #[test]
    fn fused_kernels_validate_shapes() {
        let x = Tensor::zeros([2, 4]);
        let p3 = Tensor::zeros([3]);
        let p4 = Tensor::zeros([4]);
        assert!(ada_layer_norm(&x, &p3, &p4, &p4, &p4).is_err());
        assert!(ada_layer_norm(&x, &p4, &p4, &p3, &p4).is_err());
        assert!(matmul_gelu(&x, &Tensor::zeros([5, 2])).is_err());
        assert!(matmul_gelu(&x, &Tensor::zeros([4])).is_err());
        let q = Tensor::zeros([2, 4]);
        let kv = Tensor::zeros([3, 4]);
        assert!(mha_fused(&q, &kv, &kv, 3, 1.0).is_err(), "heads ∤ hidden");
        assert!(mha_fused(&q, &kv, &kv, 0, 1.0).is_err());
        assert!(mha_fused(&q, &Tensor::zeros([3, 6]), &kv, 2, 1.0).is_err());
        assert!(mha_fused(&q, &kv, &Tensor::zeros([2, 4]), 2, 1.0).is_err());
    }
}
