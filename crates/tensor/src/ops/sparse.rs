//! Mask-sparse kernels: gather → dense compute → scatter.
//!
//! FlashPS's central claim is that editing cost tracks the *mask
//! ratio*. Until this module landed, sparsity lived only in the cost
//! model (`fps-diffusion::flops`): kernels computed full tensors and
//! masking happened afterwards, so measured wall time never moved with
//! the mask. Following SIGE's recipe ("Efficient Spatially Sparse
//! Inference for Conditional GANs and Diffusion Models"), each kernel
//! here takes a [`SparsePlan`] — a mask-derived token-index plan built
//! once per edit — gathers the active rows into a dense scratch
//! buffer, runs the *same dense row kernels* as the full-tensor path
//! on them, and scatters the results back, filling the inactive region
//! from a caller-supplied template tensor. FLOPs (and measured wall
//! time — see `bench_kernels`' sparse arm) now scale with
//! `plan.mask_ratio()`.
//!
//! Identity contract, property-tested in `tests/sparse_identity.rs`:
//!
//! - **Computed rows** (the plan's active set — for [`conv3x3`], its
//!   1-dilation, since a 3×3 conv widens the footprint of a masked
//!   pixel by one ring) are bit-for-bit identical to what the dense
//!   kernel produces, because they run the identical scalar row code
//!   on gathered data.
//! - **Template rows** (everything else) are bit-for-bit the template
//!   tensor's rows (or zero when no template is supplied).
//!
//! Degenerate plans are first-class: an empty mask computes nothing
//! and returns the template (or zeros), a full mask computes every row
//! — neither panics.
//!
//! Convolution is the one spatially-mixing op, so its plan carries a
//! [`GridPlan`]: the computed set is `dilate(mask)`, the gathered
//! *input* halo is `dilate²(mask)`, and a per-pixel tap map indexes
//! the gathered halo buffer directly (with an explicit zero-pad
//! sentinel), so the kernel never touches un-gathered rows.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::{ktrace, scratch, Result};

use super::activation::gelu_scalar;
use super::matmul::{matmul_bt_rows, matmul_rows};
use super::norm::{check_norm_args, layer_norm_row, modulate_row_inplace};

/// Tap-map sentinel: this tap reads the zero padding outside the grid.
pub const PAD: u32 = u32::MAX;

/// Kernel tap offsets in kernel-row order — identical to the dense
/// [`super::conv::conv3x3`] taps.
const TAPS: [(i64, i64); 9] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 0),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
];

/// A mask-derived token-index plan: which rows of a `[total_rows, ·]`
/// token matrix an edit actually touches.
///
/// Built once per edit ([`SparsePlan::from_mask`], or
/// [`SparsePlan::for_grid`] when the token matrix is a 2-D latent grid
/// and convolution is in play) and reused across every denoising step;
/// the scratch buffers the kernels gather into come from the
/// thread-local [`scratch`] pool, so steady-state sparse steps
/// allocate nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePlan {
    total_rows: usize,
    /// Active (masked) row indices, sorted and deduplicated.
    active: Vec<usize>,
    grid: Option<GridPlan>,
}

/// The spatial half of a plan: conv-specific index sets on an
/// `h × w` grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridPlan {
    h: usize,
    w: usize,
    /// Pixels whose conv *output* changes: the 1-dilation of the mask.
    out_idx: Vec<usize>,
    /// Pixels needed as conv *input* for `out_idx`: the 2-dilation of
    /// the mask. The gathered halo buffer holds these rows, in order.
    gather_idx: Vec<usize>,
    /// `out_idx.len() × 9` entries: for each computed pixel and tap,
    /// the row of the gathered halo buffer to read, or [`PAD`].
    tap_map: Vec<u32>,
}

impl SparsePlan {
    /// Builds a token-wise plan from a mask index list.
    ///
    /// # Errors
    ///
    /// Returns an error when an index is out of bounds.
    pub fn from_mask(total_rows: usize, masked: &[usize]) -> Result<Self> {
        let active = checked_sorted(total_rows, masked, "sparse_plan")?;
        Ok(Self {
            total_rows,
            active,
            grid: None,
        })
    }

    /// Builds a plan for an `h × w` latent grid, additionally deriving
    /// the conv dilation sets and tap map.
    ///
    /// # Errors
    ///
    /// Returns an error when an index is out of bounds for the grid.
    pub fn for_grid(h: usize, w: usize, masked: &[usize]) -> Result<Self> {
        let total = h * w;
        let active = checked_sorted(total, masked, "sparse_plan")?;
        let mut is_active = vec![false; total];
        for &i in &active {
            is_active[i] = true;
        }
        let out_set = dilate(&is_active, h, w);
        let gather_set = dilate(&out_set, h, w);
        let out_idx: Vec<usize> = (0..total).filter(|&i| out_set[i]).collect();
        let gather_idx: Vec<usize> = (0..total).filter(|&i| gather_set[i]).collect();
        let mut pos = vec![PAD; total];
        for (gi, &i) in gather_idx.iter().enumerate() {
            pos[i] = gi as u32;
        }
        let mut tap_map = Vec::with_capacity(out_idx.len() * 9);
        for &oi in &out_idx {
            let (y, x) = ((oi / w) as i64, (oi % w) as i64);
            for (dy, dx) in TAPS {
                let (py, px) = (y + dy, x + dx);
                if py < 0 || px < 0 || py >= h as i64 || px >= w as i64 {
                    tap_map.push(PAD);
                } else {
                    // In-grid neighbours of out_idx are in dilate² by
                    // construction, so `pos` is always set here.
                    tap_map.push(pos[py as usize * w + px as usize]);
                }
            }
        }
        Ok(Self {
            total_rows: total,
            active,
            grid: Some(GridPlan {
                h,
                w,
                out_idx,
                gather_idx,
                tap_map,
            }),
        })
    }

    /// Rows of the token matrix this plan addresses.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Active (masked) row indices, sorted ascending.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Fraction of rows that are active.
    pub fn mask_ratio(&self) -> f32 {
        if self.total_rows == 0 {
            0.0
        } else {
            self.active.len() as f32 / self.total_rows as f32
        }
    }

    /// True when no row is active (the degenerate empty plan).
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// True when every row is active (the degenerate full plan).
    pub fn is_full(&self) -> bool {
        self.active.len() == self.total_rows
    }

    /// The spatial half of the plan, present for grid plans.
    pub fn grid(&self) -> Option<&GridPlan> {
        self.grid.as_ref()
    }
}

impl GridPlan {
    /// Grid height.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Grid width.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Pixels the sparse conv computes: the mask's 1-dilation.
    pub fn computed(&self) -> &[usize] {
        &self.out_idx
    }

    /// Pixels the sparse conv needs as input: the mask's 2-dilation.
    /// Row `i` of the gathered halo buffer is grid pixel `halo()[i]`.
    pub fn halo(&self) -> &[usize] {
        &self.gather_idx
    }
}

/// 1-dilation of a boolean grid mask under the 3×3 structuring
/// element (clipped at the grid edge).
fn dilate(mask: &[bool], h: usize, w: usize) -> Vec<bool> {
    let mut out = vec![false; mask.len()];
    for (i, o) in out.iter_mut().enumerate() {
        let (y, x) = ((i / w.max(1)) as i64, (i % w.max(1)) as i64);
        *o = TAPS.iter().any(|(dy, dx)| {
            let (py, px) = (y + dy, x + dx);
            py >= 0
                && px >= 0
                && py < h as i64
                && px < w as i64
                && mask[py as usize * w + px as usize]
        });
    }
    out
}

fn checked_sorted(total: usize, masked: &[usize], op: &'static str) -> Result<Vec<usize>> {
    if let Some(&bad) = masked.iter().find(|&&i| i >= total) {
        return Err(TensorError::IndexOutOfBounds {
            op,
            index: bad,
            bound: total,
        });
    }
    let mut v = masked.to_vec();
    v.sort_unstable();
    v.dedup();
    Ok(v)
}

/// Fills `out` (`total_rows × cols`, zero-filled from scratch) with the
/// template's rows. With no template, rows stay zero.
fn seed_from_template(
    op: &'static str,
    out: &mut [f32],
    rows: usize,
    cols: usize,
    template: Option<&Tensor>,
) -> Result<()> {
    let Some(t) = template else {
        return Ok(());
    };
    if t.rank() != 2 || t.dims() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: t.dims().to_vec(),
            rhs: vec![rows, cols],
        });
    }
    out.copy_from_slice(t.data());
    Ok(())
}

/// Gathers the plan's listed rows of `xd` (`cols` wide) into a scratch
/// buffer.
fn gather_into_scratch(xd: &[f32], idx: &[usize], cols: usize) -> Vec<f32> {
    let mut g = scratch::take(idx.len() * cols);
    for (r, &i) in idx.iter().enumerate() {
        g[r * cols..(r + 1) * cols].copy_from_slice(&xd[i * cols..(i + 1) * cols]);
    }
    g
}

/// Scatters `src` rows (`cols` wide) back to the listed rows of `out`.
fn scatter_from_scratch(out: &mut [f32], src: &[f32], idx: &[usize], cols: usize) {
    for (r, &i) in idx.iter().enumerate() {
        out[i * cols..(i + 1) * cols].copy_from_slice(&src[r * cols..(r + 1) * cols]);
    }
}

fn check_a(op: &'static str, plan: &SparsePlan, a: &Tensor) -> Result<(usize, usize)> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: a.rank(),
        });
    }
    if a.dims()[0] != plan.total_rows {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: vec![plan.total_rows],
        });
    }
    Ok((a.dims()[0], a.dims()[1]))
}

/// Sparse `A · B`: computes the plan's active rows of the product,
/// fills the rest from `template` (or zero).
///
/// # Errors
///
/// Returns an error on rank/shape mismatches, including a template
/// whose shape differs from the product's.
pub fn matmul(
    plan: &SparsePlan,
    a: &Tensor,
    b: &Tensor,
    template: Option<&Tensor>,
) -> Result<Tensor> {
    let (m, k) = check_a("sparse_matmul", plan, a)?;
    if b.rank() != 2 || b.dims()[0] != k {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let n = b.dims()[1];
    let _span = ktrace::span_masked("sparse_matmul", plan.mask_ratio());
    let mut out = scratch::take(m * n);
    seed_from_template("sparse_matmul", &mut out, m, n, template)?;
    if !plan.active.is_empty() && n > 0 {
        let ga = gather_into_scratch(a.data(), &plan.active, k);
        let mut gout = scratch::take(plan.active.len() * n);
        matmul_rows(&mut gout, 0, &ga, b.data(), k, n);
        scatter_from_scratch(&mut out, &gout, &plan.active, n);
        scratch::give(gout);
        scratch::give(ga);
    }
    Tensor::from_vec(out, [m, n])
}

/// Sparse `A · Bᵀ`: active rows computed, the rest from `template`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn matmul_bt(
    plan: &SparsePlan,
    a: &Tensor,
    b: &Tensor,
    template: Option<&Tensor>,
) -> Result<Tensor> {
    let (m, k) = check_a("sparse_matmul_bt", plan, a)?;
    if b.rank() != 2 || b.dims()[1] != k {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_matmul_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let n = b.dims()[0];
    let _span = ktrace::span_masked("sparse_matmul_bt", plan.mask_ratio());
    let mut out = scratch::take(m * n);
    seed_from_template("sparse_matmul_bt", &mut out, m, n, template)?;
    if !plan.active.is_empty() && n > 0 {
        let ga = gather_into_scratch(a.data(), &plan.active, k);
        let mut gout = scratch::take(plan.active.len() * n);
        matmul_bt_rows(&mut gout, 0, &ga, b.data(), k, n);
        scatter_from_scratch(&mut out, &gout, &plan.active, n);
        scratch::give(gout);
        scratch::give(ga);
    }
    Tensor::from_vec(out, [m, n])
}

/// Sparse fused FFN GEMM: `gelu(A · B)` on the active rows, the rest
/// from `template`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn matmul_gelu(
    plan: &SparsePlan,
    a: &Tensor,
    b: &Tensor,
    template: Option<&Tensor>,
) -> Result<Tensor> {
    let (m, k) = check_a("sparse_matmul_gelu", plan, a)?;
    if b.rank() != 2 || b.dims()[0] != k {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_matmul_gelu",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let n = b.dims()[1];
    let _span = ktrace::span_masked("sparse_matmul_gelu", plan.mask_ratio());
    let mut out = scratch::take(m * n);
    seed_from_template("sparse_matmul_gelu", &mut out, m, n, template)?;
    if !plan.active.is_empty() && n > 0 {
        let ga = gather_into_scratch(a.data(), &plan.active, k);
        let mut gout = scratch::take(plan.active.len() * n);
        matmul_rows(&mut gout, 0, &ga, b.data(), k, n);
        for o in gout.iter_mut() {
            *o = gelu_scalar(*o);
        }
        scatter_from_scratch(&mut out, &gout, &plan.active, n);
        scratch::give(gout);
        scratch::give(ga);
    }
    Tensor::from_vec(out, [m, n])
}

/// Sparse LayerNorm: row-wise, so active rows are normalized straight
/// from `x` (no gather needed), the rest come from `template`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn layer_norm(
    plan: &SparsePlan,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    template: Option<&Tensor>,
) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("sparse_layer_norm", x, gamma, Some(beta))?;
    check_a("sparse_layer_norm", plan, x)?;
    let _span = ktrace::span_masked("sparse_layer_norm", plan.mask_ratio());
    let mut out = scratch::take(rows * cols);
    seed_from_template("sparse_layer_norm", &mut out, rows, cols, template)?;
    let xd = x.data();
    for &i in &plan.active {
        let (xrow, orow) = (
            &xd[i * cols..(i + 1) * cols],
            &mut out[i * cols..(i + 1) * cols],
        );
        layer_norm_row(xrow, orow, gamma.data(), beta.data());
    }
    Tensor::from_vec(out, [rows, cols])
}

/// Sparse fused AdaLN: LayerNorm + modulate on the active rows, the
/// rest from `template`.
///
/// # Errors
///
/// Returns an error on rank/shape mismatches.
pub fn ada_layer_norm(
    plan: &SparsePlan,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    scale: &Tensor,
    shift: &Tensor,
    template: Option<&Tensor>,
) -> Result<Tensor> {
    let (rows, cols) = check_norm_args("sparse_ada_layer_norm", x, gamma, Some(beta))?;
    check_norm_args("sparse_ada_layer_norm", x, scale, Some(shift))?;
    check_a("sparse_ada_layer_norm", plan, x)?;
    let _span = ktrace::span_masked("sparse_ada_layer_norm", plan.mask_ratio());
    let mut out = scratch::take(rows * cols);
    seed_from_template("sparse_ada_layer_norm", &mut out, rows, cols, template)?;
    let xd = x.data();
    for &i in &plan.active {
        let (xrow, orow) = (
            &xd[i * cols..(i + 1) * cols],
            &mut out[i * cols..(i + 1) * cols],
        );
        layer_norm_row(xrow, orow, gamma.data(), beta.data());
        modulate_row_inplace(orow, scale.data(), shift.data());
    }
    Tensor::from_vec(out, [rows, cols])
}

/// Sparse 3×3 convolution over the plan's grid.
///
/// `halo` is the gathered input: row `i` holds grid pixel
/// `plan.grid().halo()[i]` of the (conceptual) full input — usually
/// produced by computing a row-wise preamble (GroupNorm + SiLU in the
/// UNet scaffold) only at the halo pixels. Computed pixels are the
/// mask's 1-dilation ([`GridPlan::computed`]); every other pixel comes
/// from `template` (or zero). Tap/channel accumulation order is
/// identical to the dense [`super::conv::conv3x3`], so computed pixels
/// are bitwise equal to a dense pass over the full input.
///
/// # Errors
///
/// Returns an error when the plan carries no [`GridPlan`] or on
/// rank/shape mismatches.
pub fn conv3x3(
    plan: &SparsePlan,
    halo: &Tensor,
    kernel: &Tensor,
    bias: &Tensor,
    template: Option<&Tensor>,
) -> Result<Tensor> {
    let Some(grid) = plan.grid() else {
        return Err(TensorError::Numeric {
            op: "sparse_conv3x3",
            reason: "plan has no grid (built with from_mask, not for_grid)",
        });
    };
    if halo.rank() != 2 || halo.dims()[0] != grid.gather_idx.len() {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_conv3x3",
            lhs: halo.dims().to_vec(),
            rhs: vec![grid.gather_idx.len()],
        });
    }
    let c_in = halo.dims()[1];
    if kernel.rank() != 2 || kernel.dims()[0] != 9 * c_in {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_conv3x3",
            lhs: kernel.dims().to_vec(),
            rhs: vec![9 * c_in],
        });
    }
    let c_out = kernel.dims()[1];
    if bias.numel() != c_out {
        return Err(TensorError::ShapeMismatch {
            op: "sparse_conv3x3",
            lhs: bias.dims().to_vec(),
            rhs: vec![c_out],
        });
    }
    let _span = ktrace::span_masked("sparse_conv3x3", plan.mask_ratio());
    let total = plan.total_rows;
    let mut out = scratch::take(total * c_out);
    seed_from_template("sparse_conv3x3", &mut out, total, c_out, template)?;
    let hd = halo.data();
    let kd = kernel.data();
    let bd = bias.data();
    for (o, &oi) in grid.out_idx.iter().enumerate() {
        let orow = &mut out[oi * c_out..(oi + 1) * c_out];
        orow.copy_from_slice(bd);
        for (tap, &gi) in grid.tap_map[o * 9..(o + 1) * 9].iter().enumerate() {
            if gi == PAD {
                continue; // Zero padding, same as the dense kernel.
            }
            let src = &hd[gi as usize * c_in..(gi as usize + 1) * c_in];
            for (ci, &v) in src.iter().enumerate() {
                let krow = &kd[(tap * c_in + ci) * c_out..(tap * c_in + ci + 1) * c_out];
                for (o, &k) in orow.iter_mut().zip(krow.iter()) {
                    *o += v * k;
                }
            }
        }
    }
    Tensor::from_vec(out, [total, c_out])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gather_rows;
    use crate::rng::DetRng;

    #[test]
    fn plan_sorts_dedups_and_validates() {
        let p = SparsePlan::from_mask(8, &[5, 1, 5, 3]).unwrap();
        assert_eq!(p.active(), &[1, 3, 5]);
        assert_eq!(p.total_rows(), 8);
        assert!((p.mask_ratio() - 0.375).abs() < 1e-6);
        assert!(!p.is_empty() && !p.is_full());
        assert!(SparsePlan::from_mask(8, &[8]).is_err());
        assert!(SparsePlan::from_mask(0, &[]).unwrap().is_empty());
    }

    #[test]
    fn grid_plan_dilates_once_for_output_twice_for_halo() {
        // Mask the centre of a 5×5 grid: output set is the 3×3 ring
        // around it, halo the full 5×5.
        let p = SparsePlan::for_grid(5, 5, &[12]).unwrap();
        let g = p.grid().unwrap();
        assert_eq!(g.computed().len(), 9);
        assert_eq!(g.halo().len(), 25);
        assert_eq!((g.h(), g.w()), (5, 5));
        // Corner mask: output 2×2, halo 3×3.
        let p = SparsePlan::for_grid(5, 5, &[0]).unwrap();
        let g = p.grid().unwrap();
        assert_eq!(g.computed(), &[0, 1, 5, 6]);
        assert_eq!(g.halo().len(), 9);
    }

    #[test]
    fn empty_and_full_plans_do_not_panic() {
        let mut rng = DetRng::new(1);
        let a = Tensor::randn([6, 4], &mut rng);
        let b = Tensor::randn([4, 5], &mut rng);
        let t = Tensor::randn([6, 5], &mut rng);

        let empty = SparsePlan::from_mask(6, &[]).unwrap();
        let out = matmul(&empty, &a, &b, Some(&t)).unwrap();
        assert_eq!(out, t, "empty plan returns the template verbatim");
        let out = matmul(&empty, &a, &b, None).unwrap();
        assert_eq!(out, Tensor::zeros([6, 5]));

        let full = SparsePlan::from_mask(6, &(0..6).collect::<Vec<_>>()).unwrap();
        assert!(full.is_full());
        let dense = crate::ops::matmul(&a, &b).unwrap();
        let out = matmul(&full, &a, &b, None).unwrap();
        assert_eq!(out, dense, "full plan equals the dense kernel");
    }

    #[test]
    fn sparse_conv_matches_dense_on_computed_pixels() {
        let (h, w, c) = (4, 5, 3);
        let mut rng = DetRng::new(7);
        let x = Tensor::randn([h * w, c], &mut rng);
        let kern = Tensor::randn([9 * c, 2], &mut rng);
        let bias = Tensor::randn([2], &mut rng);
        let dense = crate::ops::conv3x3(&x, h, w, &kern, &bias).unwrap();
        let tmpl = Tensor::randn([h * w, 2], &mut rng);

        let plan = SparsePlan::for_grid(h, w, &[7, 13]).unwrap();
        let grid = plan.grid().unwrap();
        let halo = gather_rows(&x, grid.halo()).unwrap();
        let out = conv3x3(&plan, &halo, &kern, &bias, Some(&tmpl)).unwrap();
        let computed: std::collections::HashSet<usize> = grid.computed().iter().copied().collect();
        for r in 0..h * w {
            let want = if computed.contains(&r) {
                dense.row(r).unwrap()
            } else {
                tmpl.row(r).unwrap()
            };
            assert_eq!(out.row(r).unwrap(), want, "row {r}");
        }
    }

    #[test]
    fn conv_requires_grid_plan_and_matching_halo() {
        let plan = SparsePlan::from_mask(6, &[1]).unwrap();
        let halo = Tensor::zeros([1, 2]);
        let kern = Tensor::zeros([18, 2]);
        let bias = Tensor::zeros([2]);
        assert!(conv3x3(&plan, &halo, &kern, &bias, None).is_err());
        let plan = SparsePlan::for_grid(2, 3, &[1]).unwrap();
        assert!(
            conv3x3(&plan, &halo, &kern, &bias, None).is_err(),
            "halo rows"
        );
    }

    #[test]
    fn template_shape_is_validated() {
        let a = Tensor::zeros([4, 3]);
        let b = Tensor::zeros([3, 2]);
        let bad = Tensor::zeros([4, 3]);
        let plan = SparsePlan::from_mask(4, &[0]).unwrap();
        assert!(matmul(&plan, &a, &b, Some(&bad)).is_err());
    }
}
