//! Axis reductions and similarity statistics.
//!
//! [`cosine_similarity`] is the measurement behind Fig. 6-left of the
//! paper (similarity of unmasked-token activations across requests), and
//! [`mean_axis0`] / [`row_covariance`] feed the Fréchet-distance metric
//! in `fps-quality`.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Computes the cosine similarity of two equal-length vectors.
///
/// Returns 0.0 when either vector has zero norm.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when lengths differ and
/// [`TensorError::Empty`] for empty inputs.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "cosine_similarity",
            lhs: vec![a.len()],
            rhs: vec![b.len()],
        });
    }
    if a.is_empty() {
        return Err(TensorError::Empty {
            op: "cosine_similarity",
        });
    }
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok((dot / (na.sqrt() * nb.sqrt())) as f32)
}

/// Computes the column-wise mean of a rank-2 tensor: shape `[h]`.
///
/// # Errors
///
/// Returns an error for non-matrix or zero-row input.
pub fn mean_axis0(x: &Tensor) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "mean_axis0",
            expected: 2,
            actual: x.rank(),
        });
    }
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    if rows == 0 {
        return Err(TensorError::Empty { op: "mean_axis0" });
    }
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        for (o, &v) in out.iter_mut().zip(x.row(r)?.iter()) {
            *o += v;
        }
    }
    let inv = 1.0 / rows as f32;
    for o in &mut out {
        *o *= inv;
    }
    Tensor::from_vec(out, [cols])
}

/// Computes the `[h, h]` sample covariance of the rows of a rank-2
/// tensor (denominator `n - 1`; `n = 1` yields the zero matrix).
///
/// # Errors
///
/// Returns an error for non-matrix or zero-row input.
pub fn row_covariance(x: &Tensor) -> Result<Tensor> {
    let mean = mean_axis0(x)?;
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    let mut cov = vec![0.0f64; cols * cols];
    for r in 0..rows {
        let row = x.row(r)?;
        for i in 0..cols {
            let di = f64::from(row[i] - mean.data()[i]);
            for j in i..cols {
                let dj = f64::from(row[j] - mean.data()[j]);
                cov[i * cols + j] += di * dj;
            }
        }
    }
    let denom = if rows > 1 { (rows - 1) as f64 } else { 1.0 };
    let mut out = vec![0.0f32; cols * cols];
    for i in 0..cols {
        for j in i..cols {
            let v = (cov[i * cols + j] / denom) as f32;
            out[i * cols + j] = v;
            out[j * cols + i] = v;
        }
    }
    Tensor::from_vec(out, [cols, cols])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use proptest::prelude::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = vec![1.0, 2.0, 3.0];
        assert!((cosine_similarity(&v, &v).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!(cosine_similarity(&a, &b).unwrap().abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = vec![1.0, 2.0];
        let b = vec![-1.0, -2.0];
        assert!((cosine_similarity(&a, &b).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_handles_zero_norm_and_errors() {
        let z = vec![0.0, 0.0];
        let v = vec![1.0, 1.0];
        assert_eq!(cosine_similarity(&z, &v).unwrap(), 0.0);
        assert!(cosine_similarity(&v, &[1.0]).is_err());
        assert!(cosine_similarity(&[], &[]).is_err());
    }

    #[test]
    fn mean_axis0_small_case() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let m = mean_axis0(&x).unwrap();
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn covariance_of_constant_rows_is_zero() {
        let x = Tensor::from_vec(vec![5.0, 7.0, 5.0, 7.0, 5.0, 7.0], [3, 2]).unwrap();
        let c = row_covariance(&x).unwrap();
        assert!(c.data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn covariance_matches_hand_computation() {
        // Two samples of a 1-D variable: values 0 and 2, sample var = 2.
        let x = Tensor::from_vec(vec![0.0, 2.0], [2, 1]).unwrap();
        let c = row_covariance(&x).unwrap();
        assert!((c.data()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn covariance_is_symmetric_and_psd_diag() {
        let mut rng = DetRng::new(8);
        let x = Tensor::randn([40, 6], &mut rng);
        let c = row_covariance(&x).unwrap();
        for i in 0..6 {
            assert!(c.at(&[i, i]).unwrap() >= 0.0);
            for j in 0..6 {
                assert_eq!(c.at(&[i, j]).unwrap(), c.at(&[j, i]).unwrap());
            }
        }
    }

    proptest! {
        #[test]
        fn prop_cosine_bounded(a in proptest::collection::vec(-10.0f32..10.0, 1..16)) {
            let b: Vec<f32> = a.iter().map(|x| x * 0.5 + 0.1).collect();
            let c = cosine_similarity(&a, &b).unwrap();
            prop_assert!((-1.0001..=1.0001).contains(&c));
        }

        #[test]
        fn prop_cosine_scale_invariant(
            a in proptest::collection::vec(0.1f32..10.0, 2..8),
            k in 0.1f32..100.0,
        ) {
            let b: Vec<f32> = a.iter().map(|x| x * k).collect();
            let c = cosine_similarity(&a, &b).unwrap();
            prop_assert!((c - 1.0).abs() < 1e-4);
        }
    }
}
