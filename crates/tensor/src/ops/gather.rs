//! Token gather/scatter — the primitive behind mask-aware computation.
//!
//! FlashPS's mask-aware attention (paper §3.1, Fig. 5-bottom) extracts
//! the rows of the token matrix that correspond to masked tokens, runs
//! the transformer block on that reduced matrix, and then *replenishes*
//! the unmasked rows from the activation cache. [`gather_rows`] performs
//! the extraction and [`scatter_rows`] / [`scatter_rows_into`] the
//! replenishment.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Gathers the listed rows of a rank-2 tensor into a new `[idx.len(), h]`
/// tensor, in index order.
///
/// # Errors
///
/// Returns an error for non-matrix input or an out-of-bounds index.
pub fn gather_rows(x: &Tensor, idx: &[usize]) -> Result<Tensor> {
    if x.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "gather_rows",
            expected: 2,
            actual: x.rank(),
        });
    }
    let (rows, cols) = (x.dims()[0], x.dims()[1]);
    let mut out = Vec::with_capacity(idx.len() * cols);
    for &i in idx {
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "gather_rows",
                index: i,
                bound: rows,
            });
        }
        out.extend_from_slice(&x.data()[i * cols..(i + 1) * cols]);
    }
    Tensor::from_vec(out, [idx.len(), cols])
}

/// Scatters rows of `src` into a zero tensor of `[total_rows, h]`, where
/// `src` row `k` lands at row `idx[k]`.
///
/// # Errors
///
/// Returns an error when `src` is not rank-2, `idx.len()` differs from
/// `src`'s row count, or an index is out of bounds.
pub fn scatter_rows(src: &Tensor, idx: &[usize], total_rows: usize) -> Result<Tensor> {
    let cols = check_scatter_args("scatter_rows", src, idx, total_rows)?;
    let mut out = Tensor::zeros([total_rows, cols]);
    scatter_rows_into(&mut out, src, idx)?;
    Ok(out)
}

/// Scatters rows of `src` into an existing destination, overwriting the
/// rows named by `idx` and leaving every other row untouched.
///
/// This is the cache-replenishment step: the destination holds cached
/// unmasked activations and `src` holds the freshly computed masked
/// rows (or vice versa).
///
/// # Errors
///
/// Returns an error when ranks or widths mismatch, `idx.len()` differs
/// from `src`'s row count, or an index is out of bounds.
pub fn scatter_rows_into(dst: &mut Tensor, src: &Tensor, idx: &[usize]) -> Result<()> {
    if dst.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "scatter_rows_into",
            expected: 2,
            actual: dst.rank(),
        });
    }
    let total_rows = dst.dims()[0];
    let cols = check_scatter_args("scatter_rows_into", src, idx, total_rows)?;
    if dst.dims()[1] != cols {
        return Err(TensorError::ShapeMismatch {
            op: "scatter_rows_into",
            lhs: dst.dims().to_vec(),
            rhs: src.dims().to_vec(),
        });
    }
    for (k, &i) in idx.iter().enumerate() {
        let row = &src.data()[k * cols..(k + 1) * cols];
        dst.data_mut()[i * cols..(i + 1) * cols].copy_from_slice(row);
    }
    Ok(())
}

fn check_scatter_args(
    op: &'static str,
    src: &Tensor,
    idx: &[usize],
    total_rows: usize,
) -> Result<usize> {
    if src.rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: src.rank(),
        });
    }
    if src.dims()[0] != idx.len() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: src.dims().to_vec(),
            rhs: vec![idx.len()],
        });
    }
    if let Some(&bad) = idx.iter().find(|&&i| i >= total_rows) {
        return Err(TensorError::IndexOutOfBounds {
            op,
            index: bad,
            bound: total_rows,
        });
    }
    Ok(src.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use proptest::prelude::*;

    #[test]
    fn gather_selects_rows_in_order() {
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), [4, 2]).unwrap();
        let g = gather_rows(&x, &[3, 1]).unwrap();
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.data(), &[6.0, 7.0, 2.0, 3.0]);
    }

    #[test]
    fn gather_rejects_out_of_bounds() {
        let x = Tensor::zeros([2, 2]);
        assert!(gather_rows(&x, &[2]).is_err());
    }

    #[test]
    fn scatter_places_rows() {
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let out = scatter_rows(&src, &[2, 0], 3).unwrap();
        assert_eq!(out.row(2).unwrap(), &[1.0, 2.0]);
        assert_eq!(out.row(0).unwrap(), &[3.0, 4.0]);
        assert_eq!(out.row(1).unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn scatter_into_preserves_other_rows() {
        let mut dst = Tensor::full([3, 2], 9.0);
        let src = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        scatter_rows_into(&mut dst, &src, &[1]).unwrap();
        assert_eq!(dst.row(0).unwrap(), &[9.0, 9.0]);
        assert_eq!(dst.row(1).unwrap(), &[1.0, 2.0]);
        assert_eq!(dst.row(2).unwrap(), &[9.0, 9.0]);
    }

    #[test]
    fn scatter_validates_arguments() {
        let src = Tensor::zeros([2, 2]);
        assert!(scatter_rows(&src, &[0], 3).is_err(), "idx length mismatch");
        assert!(scatter_rows(&src, &[0, 5], 3).is_err(), "index oob");
        let mut narrow = Tensor::zeros([3, 1]);
        assert!(
            scatter_rows_into(&mut narrow, &src, &[0, 1]).is_err(),
            "width mismatch"
        );
    }

    #[test]
    fn gather_scatter_roundtrip_full_permutation() {
        let mut rng = DetRng::new(1);
        let x = Tensor::randn([5, 3], &mut rng);
        let perm = [4usize, 2, 0, 3, 1];
        let g = gather_rows(&x, &perm).unwrap();
        let back = scatter_rows(&g, &perm, 5).unwrap();
        assert_eq!(back, x);
    }

    proptest! {
        #[test]
        fn prop_partition_roundtrip(rows in 1usize..12, seed in 0u64..1000) {
            // Splitting rows into "masked" and "unmasked" sets, gathering
            // each, and scattering both back reconstructs the original —
            // the invariant mask-aware block computation depends on.
            let mut rng = DetRng::new(seed);
            let x = Tensor::randn([rows, 4], &mut rng);
            let masked: Vec<usize> = (0..rows).filter(|i| i % 2 == 0).collect();
            let unmasked: Vec<usize> = (0..rows).filter(|i| i % 2 == 1).collect();
            let gm = gather_rows(&x, &masked).unwrap();
            let gu = gather_rows(&x, &unmasked).unwrap();
            let mut out = Tensor::zeros([rows, 4]);
            scatter_rows_into(&mut out, &gm, &masked).unwrap();
            scatter_rows_into(&mut out, &gu, &unmasked).unwrap();
            prop_assert_eq!(out, x);
        }
    }
}
