//! Per-kernel wall-time observation hook.
//!
//! The tensor crate sits below the tracing crate, so instead of
//! depending on `fps-trace` directly it exposes a process-wide observer
//! callback: when installed, every kernel entry point (`matmul`,
//! `softmax_rows`, the fused attention, …) reports a [`KernelEvent`]
//! carrying its name, the dispatch path it ran on, the mask ratio it
//! computed at (sparse kernels only), and wall-clock start/end
//! [`Instant`]s. The diffusion layer installs an observer that forwards
//! these as `kernel`-category spans into its `TraceSink` (see
//! `EditPipeline::trace_kernels`), which is how traced runs attribute
//! denoise time to individual kernels — and, since the sparse compute
//! path landed, how flamegraphs and `trace_bubbles` tell sparse kernel
//! time apart from dense.
//!
//! Disabled by default: the cost on the hot path is then a single
//! relaxed atomic load per kernel call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::pool;

/// One observed kernel execution.
#[derive(Debug, Clone, Copy)]
pub struct KernelEvent {
    /// Kernel entry-point name (`"matmul"`, `"mha_fused"`, …).
    pub name: &'static str,
    /// Label of the calling thread's [`pool::ComputePath`] at span
    /// start: `"scalar"`, `"parallel"`, `"fused"`, or `"sparse"`.
    pub path: &'static str,
    /// Fraction of output rows the kernel actually computed — reported
    /// by the mask-sparse kernels in `ops::sparse`; `None` for dense
    /// kernels.
    pub mask_ratio: Option<f32>,
    /// Wall-clock start of the kernel body.
    pub start: Instant,
    /// Wall-clock end of the kernel body.
    pub end: Instant,
}

/// Observer signature: one callback per finished kernel execution.
pub type Observer = std::sync::Arc<dyn Fn(&KernelEvent) + Send + Sync>;

static ENABLED: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide kernel
/// observer. The previous observer, if any, is replaced.
pub fn set_observer(obs: Option<Observer>) {
    let mut slot = OBSERVER.lock();
    ENABLED.store(obs.is_some(), Ordering::Release);
    *slot = obs;
}

/// True when an observer is installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a dense-kernel span; the observer fires when the guard drops.
/// Returns `None` (and costs one atomic load) when no observer is
/// installed.
pub fn span(name: &'static str) -> Option<KernelSpan> {
    span_with(name, None)
}

/// Starts a sparse-kernel span that reports the mask ratio the kernel
/// computes at (active rows ÷ total rows).
pub fn span_masked(name: &'static str, mask_ratio: f32) -> Option<KernelSpan> {
    span_with(name, Some(mask_ratio))
}

fn span_with(name: &'static str, mask_ratio: Option<f32>) -> Option<KernelSpan> {
    if !enabled() {
        return None;
    }
    let observer = OBSERVER.lock().clone()?;
    Some(KernelSpan {
        name,
        path: path_label(pool::compute_path()),
        mask_ratio,
        start: Instant::now(),
        observer,
    })
}

/// Stable lowercase label of a compute path, as reported in
/// [`KernelEvent::path`] and trace span args.
pub fn path_label(path: pool::ComputePath) -> &'static str {
    match path {
        pool::ComputePath::Scalar => "scalar",
        pool::ComputePath::Parallel => "parallel",
        pool::ComputePath::Fused => "fused",
        pool::ComputePath::Sparse => "sparse",
    }
}

/// RAII guard reporting one kernel execution on drop.
pub struct KernelSpan {
    name: &'static str,
    path: &'static str,
    mask_ratio: Option<f32>,
    start: Instant,
    observer: Observer,
}

impl Drop for KernelSpan {
    fn drop(&mut self) {
        (self.observer)(&KernelEvent {
            name: self.name,
            path: self.path,
            mask_ratio: self.mask_ratio,
            start: self.start,
            end: Instant::now(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn disabled_by_default_and_observer_fires() {
        // Ordered sub-steps in one test: the observer slot is process
        // state, and tests in this binary run concurrently.
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        set_observer(Some(Arc::new(move |ev: &KernelEvent| {
            // Other tests' kernels may fire concurrently; only count
            // our own spans.
            if ev.name == "unit_kernel" && ev.end >= ev.start {
                assert_eq!(ev.path, "scalar");
                assert_eq!(ev.mask_ratio, None);
                h2.fetch_add(1, Ordering::Relaxed);
            }
            if ev.name == "unit_sparse" {
                assert_eq!(ev.mask_ratio, Some(0.25));
                h2.fetch_add(10, Ordering::Relaxed);
            }
        })));
        assert!(enabled());
        pool::with_compute_path(pool::ComputePath::Scalar, || {
            drop(span("unit_kernel"));
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        drop(span_masked("unit_sparse", 0.25));
        assert_eq!(hits.load(Ordering::Relaxed), 11);
        set_observer(None);
        assert!(!enabled());
        assert!(span("unit_kernel").is_none());
        assert_eq!(hits.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn path_labels_are_stable() {
        assert_eq!(path_label(pool::ComputePath::Scalar), "scalar");
        assert_eq!(path_label(pool::ComputePath::Parallel), "parallel");
        assert_eq!(path_label(pool::ComputePath::Fused), "fused");
        assert_eq!(path_label(pool::ComputePath::Sparse), "sparse");
    }
}
