//! Per-kernel wall-time observation hook.
//!
//! The tensor crate sits below the tracing crate, so instead of
//! depending on `fps-trace` directly it exposes a process-wide observer
//! callback: when installed, every kernel entry point (`matmul`,
//! `softmax_rows`, the fused attention, …) reports its name and
//! wall-clock start/end [`Instant`]s. The diffusion layer installs an
//! observer that forwards these as `kernel`-category spans into its
//! `TraceSink` (see `EditPipeline::trace_kernels`), which is how traced
//! runs attribute denoise time to individual kernels.
//!
//! Disabled by default: the cost on the hot path is then a single
//! relaxed atomic load per kernel call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Observer signature: kernel name plus wall-clock start/end.
pub type Observer = std::sync::Arc<dyn Fn(&'static str, Instant, Instant) + Send + Sync>;

static ENABLED: AtomicBool = AtomicBool::new(false);
static OBSERVER: Mutex<Option<Observer>> = Mutex::new(None);

/// Installs (or, with `None`, removes) the process-wide kernel
/// observer. The previous observer, if any, is replaced.
pub fn set_observer(obs: Option<Observer>) {
    let mut slot = OBSERVER.lock();
    ENABLED.store(obs.is_some(), Ordering::Release);
    *slot = obs;
}

/// True when an observer is installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a kernel span; the observer fires when the guard drops.
/// Returns `None` (and costs one atomic load) when no observer is
/// installed.
pub fn span(name: &'static str) -> Option<KernelSpan> {
    if !enabled() {
        return None;
    }
    let observer = OBSERVER.lock().clone()?;
    Some(KernelSpan {
        name,
        start: Instant::now(),
        observer,
    })
}

/// RAII guard reporting one kernel execution on drop.
pub struct KernelSpan {
    name: &'static str,
    start: Instant,
    observer: Observer,
}

impl Drop for KernelSpan {
    fn drop(&mut self) {
        (self.observer)(self.name, self.start, Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn disabled_by_default_and_observer_fires() {
        // Ordered sub-steps in one test: the observer slot is process
        // state, and tests in this binary run concurrently.
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        set_observer(Some(Arc::new(move |name, t0, t1| {
            // Other tests' kernels may fire concurrently; only count
            // our own span.
            if name == "unit_kernel" && t1 >= t0 {
                h2.fetch_add(1, Ordering::Relaxed);
            }
        })));
        assert!(enabled());
        drop(span("unit_kernel"));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        set_observer(None);
        assert!(!enabled());
        assert!(span("unit_kernel").is_none());
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
