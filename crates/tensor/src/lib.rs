//! Dense `f32` tensor library for the FlashPS reproduction.
//!
//! This crate is the numeric substrate beneath the toy-scale diffusion
//! models in `fps-diffusion`. It provides exactly the operators a
//! transformer block needs — matrix multiplication, softmax, layer/group
//! normalization, GeLU/SiLU, token gather/scatter — plus the symmetric
//! eigendecomposition used by the Fréchet-distance metric in
//! `fps-quality`.
//!
//! Design notes:
//!
//! - Tensors are contiguous, row-major, and own their storage. There are
//!   no views or strides; slicing copies. At the toy scales FlashPS runs
//!   at (hundreds of tokens, hidden dims ≤ 256) this is simpler and fast
//!   enough, and it keeps the crate entirely safe Rust.
//! - Fallible operations (anything that can hit a shape mismatch) return
//!   [`Result`] with a structured [`TensorError`]; nothing in the public
//!   API panics on bad shapes.
//! - All randomness flows through [`rng::DetRng`], a deterministic
//!   splitmix64/xoshiro generator, so model weights and experiments are
//!   bit-reproducible across runs and platforms.

pub mod error;
pub mod linalg;
pub mod ops;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, TensorError>;
