//! Dense `f32` tensor library for the FlashPS reproduction.
//!
//! This crate is the numeric substrate beneath the toy-scale diffusion
//! models in `fps-diffusion`. It provides exactly the operators a
//! transformer block needs — matrix multiplication, softmax, layer/group
//! normalization, GeLU/SiLU, token gather/scatter — plus the symmetric
//! eigendecomposition used by the Fréchet-distance metric in
//! `fps-quality`.
//!
//! Design notes:
//!
//! - Tensors are contiguous, row-major, and own their storage. There are
//!   no views or strides; slicing copies. At the toy scales FlashPS runs
//!   at (hundreds of tokens, hidden dims ≤ 256) this is simpler and fast
//!   enough.
//! - Fallible operations (anything that can hit a shape mismatch) return
//!   [`Result`] with a structured [`TensorError`]; nothing in the public
//!   API panics on bad shapes.
//! - All randomness flows through [`rng::DetRng`], a deterministic
//!   splitmix64/xoshiro generator, so model weights and experiments are
//!   bit-reproducible across runs and platforms.
//! - Kernels run on a deterministic parallel compute plane ([`pool`]):
//!   row-wise operators chunk over *output rows* across a small shared
//!   work pool, keeping each row's reduction order — and therefore the
//!   result, bitwise — identical to the scalar path. Short-lived
//!   intermediates draw storage from a thread-local [`scratch`] pool,
//!   and [`ktrace`] exposes an opt-in per-kernel timing hook. The two
//!   `unsafe` impls in [`pool`] (lifetime-erased task dispatch and
//!   disjoint row-chunk slicing) are the only unsafe code in the crate.

pub mod error;
pub mod ktrace;
pub mod linalg;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod scratch;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, TensorError>;
