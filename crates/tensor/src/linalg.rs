//! Dense symmetric linear algebra: Jacobi eigendecomposition and the
//! symmetric matrix square root.
//!
//! These routines exist for one consumer — the Fréchet distance in
//! `fps-quality` needs `sqrt(Σ₁ Σ₂)` of feature covariances, which we
//! compute via the eigendecomposition of symmetric matrices. The cyclic
//! Jacobi method is slow (O(n³) per sweep) but simple, numerically
//! robust, and easy to verify, which is the right trade-off for feature
//! dimensions of a few dozen.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Convergence threshold on the off-diagonal Frobenius norm.
const OFF_DIAG_TOL: f64 = 1e-10;

/// The eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f32>,
    /// Orthonormal eigenvectors; column `j` of the matrix corresponds to
    /// `values[j]`.
    pub vectors: Tensor,
}

/// Computes the eigendecomposition of a symmetric matrix by the cyclic
/// Jacobi method.
///
/// The input is symmetrized (`(A + Aᵀ)/2`) before iterating, so mildly
/// asymmetric inputs from accumulated floating-point error are fine.
///
/// # Errors
///
/// Returns an error for non-square input or if the iteration fails to
/// converge within the sweep budget.
pub fn sym_eigen(a: &Tensor) -> Result<SymEigen> {
    let n = check_square("sym_eigen", a)?;
    // Work in f64 for accuracy; the API stays f32.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = 0.5 * (f64::from(a.data()[i * n + j]) + f64::from(a.data()[j * n + i]));
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let mut converged = false;
    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| m[i * n + j] * m[i * n + j])
            .sum();
        if off < OFF_DIAG_TOL {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) from both sides.
                for k in 0..n {
                    let mkp = m[k * n + p];
                    let mkq = m[k * n + q];
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p * n + k];
                    let mqk = m[q * n + k];
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged {
        // One final check: the last sweep may have converged.
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| m[i * n + j] * m[i * n + j])
            .sum();
        if off >= OFF_DIAG_TOL {
            return Err(TensorError::Numeric {
                op: "sym_eigen",
                reason: "Jacobi iteration did not converge",
            });
        }
    }

    // Extract and sort eigenpairs in descending eigenvalue order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[j * n + j]
            .partial_cmp(&m[i * n + i])
            .unwrap_or(core::cmp::Ordering::Equal)
    });
    let values: Vec<f32> = order.iter().map(|&i| m[i * n + i] as f32).collect();
    let mut vectors = vec![0.0f32; n * n];
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[row * n + new_col] = v[row * n + old_col] as f32;
        }
    }
    Ok(SymEigen {
        values,
        vectors: Tensor::from_vec(vectors, [n, n])?,
    })
}

/// Computes the principal square root of a symmetric positive
/// semi-definite matrix.
///
/// Slightly negative eigenvalues (from floating-point noise) are clamped
/// to zero rather than rejected.
///
/// # Errors
///
/// Returns an error for non-square input, convergence failure, or an
/// eigenvalue that is materially negative (`< -1e-3 · λ_max`).
pub fn sym_sqrt(a: &Tensor) -> Result<Tensor> {
    let n = check_square("sym_sqrt", a)?;
    let eig = sym_eigen(a)?;
    let lmax = eig.values.first().copied().unwrap_or(0.0).max(0.0);
    let tol = 1e-3 * lmax.max(1e-12);
    let mut sqrt_vals = Vec::with_capacity(n);
    for &l in &eig.values {
        if l < -tol {
            return Err(TensorError::Numeric {
                op: "sym_sqrt",
                reason: "matrix has a materially negative eigenvalue",
            });
        }
        sqrt_vals.push(l.max(0.0).sqrt());
    }
    // sqrt(A) = V · diag(sqrt(λ)) · Vᵀ.
    let mut out = vec![0.0f32; n * n];
    let vd = eig.vectors.data();
    for i in 0..n {
        for j in i..n {
            let mut acc = 0.0f64;
            for (k, &sv) in sqrt_vals.iter().enumerate() {
                acc += f64::from(vd[i * n + k]) * f64::from(sv) * f64::from(vd[j * n + k]);
            }
            out[i * n + j] = acc as f32;
            out[j * n + i] = acc as f32;
        }
    }
    Tensor::from_vec(out, [n, n])
}

/// Returns the trace of a square matrix.
///
/// # Errors
///
/// Returns an error for non-square input.
pub fn trace(a: &Tensor) -> Result<f32> {
    let n = check_square("trace", a)?;
    Ok((0..n).map(|i| a.data()[i * n + i]).sum())
}

fn check_square(op: &'static str, a: &Tensor) -> Result<usize> {
    if a.rank() != 2 || a.dims()[0] != a.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.dims().to_vec(),
            rhs: a.dims().to_vec(),
        });
    }
    Ok(a.dims()[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul::{matmul, matmul_bt};
    use crate::rng::DetRng;

    /// Builds a random symmetric PSD matrix `B · Bᵀ`.
    fn random_psd(n: usize, seed: u64) -> Tensor {
        let mut rng = DetRng::new(seed);
        let b = Tensor::randn([n, n + 2], &mut rng);
        matmul_bt(&b, &b).unwrap()
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Tensor::from_vec(vec![3.0, 0.0, 0.0, 1.0], [2, 2]).unwrap();
        let e = sym_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-5);
        assert!((e.values[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn eigen_reconstructs_input() {
        let a = random_psd(6, 1);
        let e = sym_eigen(&a).unwrap();
        // Reconstruct V diag(λ) Vᵀ.
        let n = 6;
        let mut scaled = e.vectors.clone();
        for row in 0..n {
            for col in 0..n {
                let v = scaled.at(&[row, col]).unwrap() * e.values[col];
                scaled.set(&[row, col], v).unwrap();
            }
        }
        let recon = matmul(&scaled, &e.vectors.transpose().unwrap()).unwrap();
        assert!(
            recon.max_abs_diff(&a).unwrap() < 1e-3 * (1.0 + a.norm()),
            "reconstruction error too large"
        );
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_psd(5, 2);
        let e = sym_eigen(&a).unwrap();
        let vtv = matmul(&e.vectors.transpose().unwrap(), &e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Tensor::eye(5)).unwrap() < 1e-4);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = random_psd(8, 3);
        let e = sym_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-6);
        }
    }

    #[test]
    fn sqrt_squares_back() {
        let a = random_psd(6, 4);
        let s = sym_sqrt(&a).unwrap();
        let ss = matmul(&s, &s).unwrap();
        assert!(ss.max_abs_diff(&a).unwrap() < 1e-2 * (1.0 + a.norm()));
    }

    #[test]
    fn sqrt_of_identity_is_identity() {
        let s = sym_sqrt(&Tensor::eye(4)).unwrap();
        assert!(s.max_abs_diff(&Tensor::eye(4)).unwrap() < 1e-5);
    }

    #[test]
    fn sqrt_rejects_negative_definite() {
        let a = Tensor::from_vec(vec![-2.0, 0.0, 0.0, -3.0], [2, 2]).unwrap();
        assert!(sym_sqrt(&a).is_err());
    }

    #[test]
    fn trace_small_case() {
        let a = Tensor::from_vec(vec![1.0, 9.0, 9.0, 2.0], [2, 2]).unwrap();
        assert_eq!(trace(&a).unwrap(), 3.0);
        assert!(trace(&Tensor::zeros([2, 3])).is_err());
    }

    #[test]
    fn eigen_rejects_non_square() {
        assert!(sym_eigen(&Tensor::zeros([2, 3])).is_err());
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_psd(7, 5);
        let e = sym_eigen(&a).unwrap();
        let sum: f32 = e.values.iter().sum();
        let tr = trace(&a).unwrap();
        assert!((sum - tr).abs() < 1e-2 * (1.0 + tr.abs()));
    }
}
