//! Deterministic random number generation.
//!
//! Model weights, masks, and workloads must be bit-reproducible across
//! runs, platforms, and dependency upgrades, so instead of relying on
//! `rand::rngs::StdRng` (whose algorithm is explicitly not stable across
//! `rand` versions) this module implements splitmix64 and xoshiro256++
//! from their published reference code and exposes them through the
//! `rand` traits.

use rand::RngCore;

/// Advances a splitmix64 state and returns the next output.
///
/// Used both to seed [`DetRng`] and as a cheap stateless hash for mapping
/// strings (prompts, template names) to embedding seeds.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Returns the splitmix64 output for the given (already advanced) state.
fn splitmix64_output(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a byte string to a `u64` using splitmix64 absorption.
///
/// This is not a cryptographic hash; it exists to map prompts and
/// template identifiers to deterministic seeds.
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(word);
        splitmix64(&mut state);
        state = splitmix64_output(state);
    }
    // Absorb the length so prefixes hash differently.
    state ^= bytes.len() as u64;
    splitmix64(&mut state);
    splitmix64_output(state)
}

/// A deterministic xoshiro256++ generator.
///
/// Seeded via splitmix64 per the xoshiro authors' recommendation. The
/// stream is stable for all time: it depends only on the seed.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            splitmix64(&mut state);
            *slot = splitmix64_output(state);
        }
        Self { s }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Returns a standard normal sample via the Box-Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * core::f64::consts::PI * u2).cos()) as f32
    }

    /// Returns a uniform integer in `[0, bound)` using rejection sampling.
    ///
    /// Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        let bound = bound as u64;
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_raw();
            if v < zone {
                return (v % bound) as usize;
            }
        }
    }

    /// Returns an exponential sample with the given rate (mean `1/rate`).
    ///
    /// Returns `f64::INFINITY` for a non-positive rate.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        let u = 1.0 - self.uniform();
        -u.ln() / rate
    }

    /// Splits off an independent child generator.
    ///
    /// The child stream is derived from the parent's next output, so two
    /// splits from the same parent state are distinct.
    pub fn split(&mut self) -> Self {
        Self::new(self.next_raw())
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> core::result::Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = DetRng::new(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for bound in [1usize, 2, 7, 100] {
            for _ in 0..1000 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..2000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = DetRng::new(11);
        let rate = 4.0;
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
        assert!(rng.exponential(0.0).is_infinite());
    }

    #[test]
    fn hash_bytes_distinguishes_prefixes_and_seeds() {
        let a = hash_bytes(b"a cat", 0);
        let b = hash_bytes(b"a cat on a mat", 0);
        let c = hash_bytes(b"a cat", 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, hash_bytes(b"a cat", 0));
    }

    #[test]
    fn split_produces_distinct_streams() {
        let mut parent = DetRng::new(13);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_raw(), c2.next_raw());
    }

    #[test]
    fn fill_bytes_handles_partial_chunks() {
        let mut rng = DetRng::new(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
