//! Shape handling for row-major tensors.

use crate::error::TensorError;
use crate::Result;

/// The shape of a tensor: a list of dimension sizes, outermost first.
///
/// Shapes are cheap to clone and compare. A rank-0 shape (no dimensions)
/// denotes a scalar with one element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a list of dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self(dims.into())
    }

    /// Returns the dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns the size of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                op: "shape.dim",
                index: axis,
                bound: self.0.len(),
            })
    }

    /// Returns row-major strides (in elements) for this shape.
    ///
    /// The innermost dimension has stride 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Computes the flat row-major offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns an error if the index rank differs from the shape rank or
    /// any coordinate is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.0.len() {
            return Err(TensorError::RankMismatch {
                op: "shape.offset",
                expected: self.0.len(),
                actual: index.len(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, (&d, &s))) in index
            .iter()
            .zip(self.0.iter().zip(strides.iter()))
            .enumerate()
        {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds {
                    op: "shape.offset",
                    index: i,
                    bound: self.0[axis],
                });
            }
            off += i * s;
        }
        Ok(off)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Self(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Self(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Self(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(Vec::new());
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_computes_flat_index() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::from([2, 3]);
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn dim_accessor_checks_bounds() {
        let s = Shape::from([5, 7]);
        assert_eq!(s.dim(1).unwrap(), 7);
        assert!(s.dim(2).is_err());
    }
}
