//! Error types for tensor operations.

use core::fmt;

/// Errors produced by tensor construction and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The tensor has the wrong rank for the requested operation.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
    },
    /// An index (token id, row, axis, ...) is out of bounds.
    IndexOutOfBounds {
        /// Name of the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
    },
    /// A numeric routine failed to converge or hit an invalid domain.
    Numeric {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the failure.
        reason: &'static str,
    },
    /// An empty input was provided where at least one element is required.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            Self::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            Self::RankMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected rank {expected}, got rank {actual}"),
            Self::IndexOutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds (< {bound})")
            }
            Self::Numeric { op, reason } => write!(f, "{op}: numeric failure: {reason}"),
            Self::Empty { op } => write!(f, "{op}: empty input"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[4, 5]"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = TensorError::Empty { op: "mean" };
        let b = TensorError::Empty { op: "mean" };
        assert_eq!(a, b);
    }
}
