//! Bitwise-identity guarantees of the mask-sparse kernels.
//!
//! The sparse path's contract mirrors the parallel plane's: for every
//! kernel with a sparse variant, rows the plan computes are
//! **bit-for-bit identical** to the dense kernel's rows (the sparse
//! path runs the same row code on gathered data), and every other row
//! is the caller's template verbatim (or exact zeros with no
//! template). These proptests check that split on arbitrary shapes and
//! arbitrary — unsorted, duplicated — mask index lists, and pin down
//! the degenerate empty/full plans.

use fps_tensor::ops::sparse::{self, SparsePlan};
use fps_tensor::ops::{
    ada_layer_norm, conv3x3, gather_rows, layer_norm, matmul, matmul_bt, matmul_gelu,
};
use fps_tensor::pool::{with_compute_path, ComputePath};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;
use proptest::prelude::*;

/// Asserts `out` carries dense bits at the (sorted) `computed` rows and
/// template bits — zeros when `template` is `None` — everywhere else.
fn assert_row_split(
    label: &str,
    out: &Tensor,
    dense: &Tensor,
    computed: &[usize],
    template: Option<&Tensor>,
) {
    assert_eq!(out.dims(), dense.dims(), "{label} shape");
    let cols = out.dims()[1];
    for r in 0..out.dims()[0] {
        let got = &out.data()[r * cols..(r + 1) * cols];
        if computed.binary_search(&r).is_ok() {
            let want = &dense.data()[r * cols..(r + 1) * cols];
            assert!(
                got.iter()
                    .zip(want)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{label} computed row {r} differs from dense"
            );
        } else if let Some(t) = template {
            let want = &t.data()[r * cols..(r + 1) * cols];
            assert!(
                got.iter()
                    .zip(want)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{label} uncomputed row {r} differs from template"
            );
        } else {
            assert!(
                got.iter().all(|v| v.to_bits() == 0),
                "{label} uncomputed row {r} is not zero"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_sparse_gemm_family_bitwise(
        m in 1usize..12,
        k in 1usize..10,
        n in 1usize..10,
        mask in proptest::collection::vec(0usize..64, 0..16),
        seed in 0u64..1_000_000,
    ) {
        let masked: Vec<usize> = mask.iter().map(|&i| i % m).collect();
        let plan = SparsePlan::from_mask(m, &masked).unwrap();
        let mut rng = DetRng::new(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        let bt = Tensor::randn([n, k], &mut rng);
        let tpl = Tensor::randn([m, n], &mut rng);
        let (dense, dense_bt, dense_gelu) = with_compute_path(ComputePath::Scalar, || {
            (
                matmul(&a, &b).unwrap(),
                matmul_bt(&a, &bt).unwrap(),
                matmul_gelu(&a, &b).unwrap(),
            )
        });
        for template in [None, Some(&tpl)] {
            let s = sparse::matmul(&plan, &a, &b, template).unwrap();
            assert_row_split("matmul", &s, &dense, plan.active(), template);
            let s = sparse::matmul_bt(&plan, &a, &bt, template).unwrap();
            assert_row_split("matmul_bt", &s, &dense_bt, plan.active(), template);
            let s = sparse::matmul_gelu(&plan, &a, &b, template).unwrap();
            assert_row_split("matmul_gelu", &s, &dense_gelu, plan.active(), template);
        }
    }

    #[test]
    fn prop_sparse_norms_bitwise(
        m in 1usize..12,
        cols in 1usize..10,
        mask in proptest::collection::vec(0usize..64, 0..16),
        seed in 0u64..1_000_000,
    ) {
        let masked: Vec<usize> = mask.iter().map(|&i| i % m).collect();
        let plan = SparsePlan::from_mask(m, &masked).unwrap();
        let mut rng = DetRng::new(seed);
        let x = Tensor::randn([m, cols], &mut rng).scale(2.0);
        let g = Tensor::randn([cols], &mut rng);
        let b = Tensor::randn([cols], &mut rng);
        let sc = Tensor::randn([cols], &mut rng);
        let sh = Tensor::randn([cols], &mut rng);
        let tpl = Tensor::randn([m, cols], &mut rng);
        let (dense_ln, dense_ada) = with_compute_path(ComputePath::Scalar, || {
            (
                layer_norm(&x, &g, &b).unwrap(),
                ada_layer_norm(&x, &g, &b, &sc, &sh).unwrap(),
            )
        });
        for template in [None, Some(&tpl)] {
            let s = sparse::layer_norm(&plan, &x, &g, &b, template).unwrap();
            assert_row_split("layer_norm", &s, &dense_ln, plan.active(), template);
            let s = sparse::ada_layer_norm(&plan, &x, &g, &b, &sc, &sh, template).unwrap();
            assert_row_split("ada_layer_norm", &s, &dense_ada, plan.active(), template);
        }
    }

    #[test]
    fn prop_sparse_conv_bitwise(
        h in 1usize..6,
        w in 1usize..6,
        c_in in 1usize..4,
        c_out in 1usize..4,
        mask in proptest::collection::vec(0usize..64, 0..12),
        seed in 0u64..1_000_000,
    ) {
        let tokens = h * w;
        let masked: Vec<usize> = mask.iter().map(|&i| i % tokens).collect();
        let plan = SparsePlan::for_grid(h, w, &masked).unwrap();
        let grid = plan.grid().unwrap();
        let mut rng = DetRng::new(seed);
        let x = Tensor::randn([tokens, c_in], &mut rng);
        let kern = Tensor::randn([9 * c_in, c_out], &mut rng);
        let bias = Tensor::randn([c_out], &mut rng);
        let tpl = Tensor::randn([tokens, c_out], &mut rng);
        let dense = with_compute_path(ComputePath::Scalar, || {
            conv3x3(&x, h, w, &kern, &bias).unwrap()
        });
        // The sparse conv reads only the halo rows, gathered by the
        // caller exactly as the scaffold does.
        let halo = gather_rows(&x, grid.halo()).unwrap();
        for template in [None, Some(&tpl)] {
            let s = sparse::conv3x3(&plan, &halo, &kern, &bias, template).unwrap();
            assert_row_split("conv3x3", &s, &dense, grid.computed(), template);
        }
    }
}

#[test]
fn degenerate_plans_do_not_panic() {
    let mut rng = DetRng::new(11);
    let (m, k, n) = (6usize, 4usize, 5usize);
    let a = Tensor::randn([m, k], &mut rng);
    let b = Tensor::randn([k, n], &mut rng);
    let tpl = Tensor::randn([m, n], &mut rng);
    let dense = matmul(&a, &b).unwrap();

    // Empty plan: nothing computed — zeros, or the template verbatim.
    let empty = SparsePlan::from_mask(m, &[]).unwrap();
    assert!(empty.is_empty() && !empty.is_full());
    assert_eq!(
        sparse::matmul(&empty, &a, &b, None).unwrap(),
        Tensor::zeros([m, n])
    );
    assert_eq!(sparse::matmul(&empty, &a, &b, Some(&tpl)).unwrap(), tpl);

    // Full plan: the dense result regardless of template.
    let full = SparsePlan::from_mask(m, &(0..m).collect::<Vec<_>>()).unwrap();
    assert!(full.is_full());
    assert_eq!(sparse::matmul(&full, &a, &b, Some(&tpl)).unwrap(), dense);

    // Zero-row operand with a zero-row plan.
    let zero = SparsePlan::from_mask(0, &[]).unwrap();
    assert_eq!(zero.mask_ratio(), 0.0);
    let out = sparse::matmul(&zero, &Tensor::zeros([0, k]), &b, None).unwrap();
    assert_eq!(out.dims(), &[0, n]);

    // Empty grid plan: the conv computes nothing and needs no halo.
    let empty_grid = SparsePlan::for_grid(3, 3, &[]).unwrap();
    let kern = Tensor::randn([9 * 2, 2], &mut rng);
    let halo = Tensor::zeros([0, 2]);
    let out = sparse::conv3x3(&empty_grid, &halo, &kern, &Tensor::zeros([2]), None).unwrap();
    assert_eq!(out, Tensor::zeros([9, 2]));
}
