//! Bitwise-identity guarantees of the parallel compute plane.
//!
//! The contract (DESIGN.md "Compute plane & parallelism"): for every
//! kernel the pool parallelizes, and for every fused kernel, the result
//! is **bit-for-bit identical** to the scalar reference path — not
//! merely close. These proptests force parallel dispatch on arbitrary
//! shapes (including single-row, single-column, and empty edges) by
//! dropping the work threshold to zero, and compare `f32::to_bits`
//! exactly.

use fps_tensor::ops::{
    ada_layer_norm, conv3x3, gelu, layer_norm, matmul, matmul_bt, matmul_gelu, matmul_tb,
    mha_fused, modulate, softmax_rows,
};
use fps_tensor::pool::{with_compute_path, with_min_parallel_work, ComputePath};
use fps_tensor::rng::DetRng;
use fps_tensor::Tensor;
use proptest::prelude::*;

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` once per path: scalar reference, then forced-parallel
/// (threshold 0 so even 1-element shapes go through the pool), then
/// fused; asserts all three produce bitwise-equal tensors.
fn assert_paths_identical(label: &str, f: impl Fn() -> Tensor) {
    let scalar = with_compute_path(ComputePath::Scalar, &f);
    for path in [ComputePath::Parallel, ComputePath::Fused] {
        let out = with_compute_path(path, || with_min_parallel_work(0, &f));
        assert_eq!(bits(&out), bits(&scalar), "{label}: {path:?} != Scalar");
        assert_eq!(out.dims(), scalar.dims(), "{label}: {path:?} shape");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_matmul_family_bitwise(
        m in 0usize..14,
        k in 0usize..14,
        n in 0usize..14,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = DetRng::new(seed);
        let a = Tensor::randn([m, k], &mut rng);
        let b = Tensor::randn([k, n], &mut rng);
        assert_paths_identical("matmul", || matmul(&a, &b).unwrap());
        let bt = Tensor::randn([n, k], &mut rng);
        assert_paths_identical("matmul_bt", || matmul_bt(&a, &bt).unwrap());
        let at = Tensor::randn([k, m], &mut rng);
        assert_paths_identical("matmul_tb", || matmul_tb(&at, &b).unwrap());
        assert_paths_identical("matmul_gelu", || matmul_gelu(&a, &b).unwrap());
    }

    #[test]
    fn prop_rowwise_kernels_bitwise(
        rows in 0usize..14,
        cols in 1usize..14,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = DetRng::new(seed);
        let x = Tensor::randn([rows, cols], &mut rng).scale(3.0);
        assert_paths_identical("softmax_rows", || softmax_rows(&x).unwrap());
        let g = Tensor::randn([cols], &mut rng);
        let b = Tensor::randn([cols], &mut rng);
        assert_paths_identical("layer_norm", || layer_norm(&x, &g, &b).unwrap());
        let s = Tensor::randn([cols], &mut rng);
        let sh = Tensor::randn([cols], &mut rng);
        assert_paths_identical("ada_layer_norm", || {
            ada_layer_norm(&x, &g, &b, &s, &sh).unwrap()
        });
        // The fused AdaLN must also match the two-op composition.
        let composed = with_compute_path(ComputePath::Scalar, || {
            modulate(&layer_norm(&x, &g, &b).unwrap(), &s, &sh).unwrap()
        });
        let fused = ada_layer_norm(&x, &g, &b, &s, &sh).unwrap();
        prop_assert_eq!(bits(&fused), bits(&composed));
    }

    #[test]
    fn prop_conv3x3_bitwise(
        h in 1usize..7,
        w in 1usize..7,
        c_in in 1usize..5,
        c_out in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = DetRng::new(seed);
        let x = Tensor::randn([h * w, c_in], &mut rng);
        let kern = Tensor::randn([9 * c_in, c_out], &mut rng);
        let bias = Tensor::randn([c_out], &mut rng);
        assert_paths_identical("conv3x3", || {
            conv3x3(&x, h, w, &kern, &bias).unwrap()
        });
    }

    #[test]
    fn prop_mha_fused_bitwise_vs_composed(
        n in 0usize..9,
        l in 1usize..9,
        heads in 1usize..4,
        dh in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let h = heads * dh;
        let mut rng = DetRng::new(seed);
        let q = Tensor::randn([n, h], &mut rng);
        let k = Tensor::randn([l, h], &mut rng);
        let v = Tensor::randn([l, h], &mut rng);
        let scale = 1.0 / (dh as f32).sqrt();
        // Composed reference via primitive ops on the scalar path,
        // slicing each head's columns like the historical block code.
        let composed = with_compute_path(ComputePath::Scalar, || {
            let slice_cols = |x: &Tensor, start: usize| {
                let (rows, cols) = (x.dims()[0], x.dims()[1]);
                let mut out = Vec::with_capacity(rows * dh);
                for r in 0..rows {
                    out.extend_from_slice(&x.data()[r * cols + start..r * cols + start + dh]);
                }
                Tensor::from_vec(out, [rows, dh]).unwrap()
            };
            let mut out = Tensor::zeros([n, h]);
            for head in 0..heads {
                let qs = slice_cols(&q, head * dh);
                let ks = slice_cols(&k, head * dh);
                let vs = slice_cols(&v, head * dh);
                let probs =
                    softmax_rows(&matmul_bt(&qs, &ks).unwrap().scale(scale)).unwrap();
                let ctx = matmul(&probs, &vs).unwrap();
                for row in 0..n {
                    let src = ctx.row(row).unwrap().to_vec();
                    out.row_mut(row).unwrap()[head * dh..(head + 1) * dh]
                        .copy_from_slice(&src);
                }
            }
            out
        });
        for path in [ComputePath::Parallel, ComputePath::Fused] {
            let fused = with_compute_path(path, || {
                with_min_parallel_work(0, || mha_fused(&q, &k, &v, heads, scale).unwrap())
            });
            prop_assert_eq!(bits(&fused), bits(&composed), "path {:?}", path);
        }
    }
}

#[test]
fn degenerate_shapes_conv_and_softmax() {
    let mut rng = DetRng::new(7);
    // 1×1 grid: every tap except the centre falls outside.
    let x = Tensor::randn([1, 3], &mut rng);
    let k = Tensor::randn([27, 2], &mut rng);
    let b = Tensor::randn([2], &mut rng);
    let y = conv3x3(&x, 1, 1, &k, &b).unwrap();
    assert_eq!(y.dims(), &[1, 2]);
    assert!(y.data().iter().all(|v| v.is_finite()));
    // 1-wide column grid: no horizontal neighbours.
    let x = Tensor::randn([4, 2], &mut rng);
    let k = Tensor::randn([18, 1], &mut rng);
    let y = conv3x3(&x, 4, 1, &k, &Tensor::zeros([1])).unwrap();
    assert_eq!(y.dims(), &[4, 1]);
    // Single-element softmax row is exactly 1.0.
    let s = softmax_rows(&Tensor::from_vec(vec![42.0], [1, 1]).unwrap()).unwrap();
    assert_eq!(s.data(), &[1.0]);
    // Zero-row softmax is legal; zero-width is rejected.
    assert_eq!(
        softmax_rows(&Tensor::zeros([0, 5])).unwrap().dims(),
        &[0, 5]
    );
    assert!(softmax_rows(&Tensor::zeros([5, 0])).is_err());
    // Zero-row conv grid (h = 0) produces an empty token matrix.
    let y = conv3x3(
        &Tensor::zeros([0, 2]),
        0,
        3,
        &Tensor::zeros([18, 2]),
        &Tensor::zeros([2]),
    )
    .unwrap();
    assert_eq!(y.dims(), &[0, 2]);
}

#[test]
fn zero_skip_removal_keeps_sparse_products_exact() {
    // Sparse operands exercised the old `av == 0.0` skip; the dense
    // kernel must produce the same products (modulo -0.0 edges, absent
    // here) and bitwise-equal parallel results.
    let a = Tensor::from_vec(vec![0.0, 2.0, 0.0, 0.0, 3.0, 0.0], [2, 3]).unwrap();
    let b = Tensor::from_vec(vec![1.0, 4.0, 0.0, 5.0, 2.0, 6.0], [3, 2]).unwrap();
    let c = matmul(&a, &b).unwrap();
    assert_eq!(c.data(), &[0.0, 10.0, 0.0, 15.0]);
    assert_paths_identical("sparse matmul", || matmul(&a, &b).unwrap());
    let _ = gelu(&c); // keep the import exercised alongside matmul_gelu
}
