//! A calendar queue: the fleet-scale event scheduler.
//!
//! The binary-heap [`EventQueue`](crate::event::EventQueue) pays
//! `O(log n)` — and, at a million pending events, a cache miss per heap
//! level — on every operation. A calendar queue ([Brown 1988]) instead
//! hashes events by timestamp into an array of time buckets ("days" of
//! a repeating "year") and drains one bucket at a time, giving
//! amortized `O(1)` scheduling and popping under the stationary event
//! populations that dominate serving simulations.
//!
//! Two properties matter here beyond raw speed:
//!
//! - **Determinism.** Events pop in strict `(time, seq)` order, exactly
//!   like the heap — a seeded simulation replays byte-identically on
//!   either scheduler (asserted by differential tests here and in the
//!   fleet integration suite).
//! - **Batched draining.** A whole bucket-year is extracted and sorted
//!   in one pass, so the per-pop fast path is a bounds-checked pointer
//!   decrement rather than a heap sift-down. Simultaneous events — the
//!   common case when thousands of arrivals land in the same
//!   nanosecond bucket — are ordered by one sort instead of n heap
//!   operations.
//!
//! [Brown 1988]: "Calendar Queues: A Fast O(1) Priority Queue
//! Implementation for the Simulation Event Set Problem", CACM 31(10).

use crate::event::EventScheduler;
use crate::time::{SimDuration, SimTime};

struct Slot<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Minimum and maximum bucket-array sizes (powers of two).
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 22;

/// log2 of the smallest power of two >= `width_ns` (clamped so the
/// day shift never exceeds 63 bits).
fn width_to_shift(width_ns: u64) -> u32 {
    if width_ns <= 1 {
        0
    } else {
        (64 - (width_ns - 1).leading_zeros()).min(63)
    }
}

/// A bucketed event scheduler with amortized `O(1)` operations.
///
/// Drop-in alternative to [`EventQueue`](crate::event::EventQueue):
/// both implement [`EventScheduler`] and pop events in identical
/// `(time, seq)` order.
pub struct CalendarQueue<E> {
    /// `buckets[g & mask]` holds the *unsorted* events of every year
    /// whose global day index hashes there.
    buckets: Vec<Vec<Slot<E>>>,
    mask: u64,
    /// log2 of the bucket width in nanoseconds: `day = at >> shift`.
    /// Power-of-two widths keep the day computation a shift — a 64-bit
    /// division here costs more than the rest of the pop fast path.
    shift: u32,
    size: usize,
    seq: u64,
    now: SimTime,
    /// Global (unmasked) day index currently being drained; only
    /// meaningful while `drain` is non-empty.
    cursor: u64,
    /// The cursor day's events, sorted descending by `(time, seq)` so
    /// pops come off the back in ascending order.
    drain: Vec<Slot<E>>,
    /// An insert landed in the cursor day mid-drain; re-merge before
    /// the next pop.
    drain_dirty: bool,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue at time zero with a 1 µs initial bucket
    /// width (adapted automatically as the population changes).
    pub fn new() -> Self {
        Self::with_width(SimDuration::from_micros(1))
    }

    /// Creates an empty queue with an explicit initial bucket width —
    /// a hint only (rounded up to a power of two); the width re-adapts
    /// on every resize.
    pub fn with_width(width: SimDuration) -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            shift: width_to_shift(width.as_nanos()),
            size: 0,
            seq: 0,
            now: SimTime::ZERO,
            cursor: 0,
            drain: Vec::new(),
            drain_dirty: false,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    fn day_of(&self, at_ns: u64) -> u64 {
        at_ns >> self.shift
    }

    /// Schedules an event at an absolute time (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now).as_nanos();
        let seq = self.seq;
        self.seq += 1;
        let day = self.day_of(at);
        if !self.drain.is_empty() {
            if day == self.cursor {
                // Lands in the day being drained: stage it in the
                // bucket and force a merge before the next pop.
                self.drain_dirty = true;
            } else if day < self.cursor {
                // A horizon-limited pop can refill the drain without
                // advancing `now` past it; an insert into an earlier
                // day must void the drain so the next pop re-extracts
                // in time order.
                while let Some(s) = self.drain.pop() {
                    let i = ((s.at >> self.shift) & self.mask) as usize;
                    self.buckets[i].push(s);
                }
                self.drain_dirty = false;
            }
        }
        let idx = (day & self.mask) as usize;
        self.buckets[idx].push(Slot { at, seq, event });
        self.size += 1;
        if self.size > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Schedules an event after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_before(SimTime::from_nanos(u64::MAX))
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.size == 0 {
            return None;
        }
        if self.drain_dirty {
            self.merge_cursor_inserts();
        }
        if self.drain.is_empty() {
            self.refill_drain();
        }
        let head = self.drain.last().expect("refill found an event");
        if head.at > horizon.as_nanos() {
            return None;
        }
        let slot = self.drain.pop().expect("checked non-empty");
        self.now = SimTime::from_nanos(slot.at);
        self.size -= 1;
        if self.size < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some((self.now, slot.event))
    }

    /// Moves every event of day `self.cursor` out of its bucket into
    /// `drain`, keeping `drain` sorted descending by `(time, seq)`.
    fn merge_cursor_inserts(&mut self) {
        let idx = (self.cursor & self.mask) as usize;
        let shift = self.shift;
        let cursor = self.cursor;
        let bucket = &mut self.buckets[idx];
        let mut i = 0;
        while i < bucket.len() {
            if bucket[i].at >> shift == cursor {
                self.drain.push(bucket.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.drain
            .sort_unstable_by_key(|s| std::cmp::Reverse((s.at, s.seq)));
        self.drain_dirty = false;
    }

    /// Finds the next non-empty day at or after `now` and extracts it
    /// into `drain`. Scans forward one year at most before falling back
    /// to a direct minimum search (sparse queues). Caller guarantees
    /// `size > 0`.
    fn refill_drain(&mut self) {
        let mut day = self.day_of(self.now.as_nanos());
        let years_len = self.buckets.len() as u64;
        let shift = self.shift;
        let mut scanned = 0u64;
        loop {
            if scanned >= years_len {
                // A full year without a hit: jump straight to the
                // earliest pending event.
                day = self.min_day();
            }
            let idx = (day & self.mask) as usize;
            let bucket = &mut self.buckets[idx];
            if !bucket.is_empty() {
                let mut i = 0;
                while i < bucket.len() {
                    if bucket[i].at >> shift == day {
                        self.drain.push(bucket.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                if !self.drain.is_empty() {
                    self.cursor = day;
                    self.drain_dirty = false;
                    self.drain
                        .sort_unstable_by_key(|s| std::cmp::Reverse((s.at, s.seq)));
                    return;
                }
            }
            day += 1;
            scanned += 1;
        }
    }

    /// The day of the globally earliest pending event (`O(n)`; the
    /// sparse-queue fallback).
    fn min_day(&self) -> u64 {
        let mut best: Option<(u64, u64)> = None;
        for b in &self.buckets {
            for s in b {
                if best
                    .map(|(at, seq)| (s.at, s.seq) < (at, seq))
                    .unwrap_or(true)
                {
                    best = Some((s.at, s.seq));
                }
            }
        }
        let (at, _) = best.expect("size > 0");
        at >> self.shift
    }

    /// Rebuilds the bucket array at a new size, re-estimating the
    /// bucket width from the current population's time span so the
    /// steady-state day holds a handful of events. Days are sized at
    /// ~4× `span/new_len`: wide enough that refills amortize one sort
    /// over several pops, and — since the population can double before
    /// the next grow — the bucket-year keeps covering the whole live
    /// window, so distinct days never alias into one bucket in steady
    /// state. The drain buffer is untouched — it was already extracted.
    fn resize(&mut self, new_len: usize) {
        let mut all: Vec<Slot<E>> = Vec::with_capacity(self.size);
        // An in-progress drain goes back into the pool: under the new
        // (possibly finer) width the old cursor day can split, so a
        // mid-drain insert may belong to an earlier new-day than the
        // drain head — keeping the drain would pop past it. Re-bucketed
        // events are re-extracted by the next pop's refill, which walks
        // forward from `now` and cannot miss them.
        all.append(&mut self.drain);
        self.drain_dirty = false;
        for b in &mut self.buckets {
            all.append(b);
        }
        let lo = self.now.as_nanos();
        let hi = all.iter().map(|s| s.at).max().unwrap_or(lo);
        let span = hi.saturating_sub(lo).max(1);
        self.shift = width_to_shift(span.saturating_mul(4) / new_len as u64);
        self.mask = (new_len - 1) as u64;
        self.buckets = (0..new_len).map(|_| Vec::new()).collect();
        for s in all {
            let idx = ((s.at >> self.shift) & self.mask) as usize;
            self.buckets[idx].push(s);
        }
    }
}

impl<E> EventScheduler<E> for CalendarQueue<E> {
    fn now(&self) -> SimTime {
        CalendarQueue::now(self)
    }

    fn schedule_at(&mut self, at: SimTime, event: E) {
        CalendarQueue::schedule_at(self, at, event);
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }

    fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        CalendarQueue::pop_before(self, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// Deterministic 64-bit mix for pseudo-random test schedules.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule_at(SimTime::from_nanos(30), 3);
        q.schedule_at(SimTime::from_nanos(10), 1);
        q.schedule_at(SimTime::from_nanos(30), 4);
        q.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(q.now().as_nanos(), 30);
    }

    #[test]
    fn simultaneous_events_keep_fifo_order() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_nanos(42), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule_at(SimTime::from_nanos(1000), 0);
        let _ = q.pop();
        q.schedule_at(SimTime::from_nanos(5), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 1000, "past events fire immediately");
    }

    #[test]
    fn mid_drain_inserts_interleave_correctly() {
        let mut q: CalendarQueue<u32> = CalendarQueue::with_width(SimDuration::from_nanos(1000));
        // All land in one bucket day; drain starts.
        q.schedule_at(SimTime::from_nanos(100), 0);
        q.schedule_at(SimTime::from_nanos(300), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (100, 0));
        // Insert between the drained head and the rest of the batch.
        q.schedule_at(SimTime::from_nanos(200), 1);
        let got: Vec<(u64, u32)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
        assert_eq!(got, vec![(200, 1), (300, 2)]);
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q: CalendarQueue<u32> = CalendarQueue::with_width(SimDuration::from_nanos(1));
        // Many empty years between events forces the min-day fallback.
        q.schedule_at(SimTime::from_nanos(5), 0);
        q.schedule_at(SimTime::from_nanos(1_000_000_007), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn grows_and_shrinks_through_population_swings() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut s = 7u64;
        for i in 0..10_000u64 {
            q.schedule_at(SimTime::from_nanos(splitmix(&mut s) % 1_000_000), i);
        }
        assert_eq!(q.len(), 10_000);
        let mut last = (0u64, 0u64);
        let mut popped = 0;
        while let Some((t, e)) = q.pop() {
            // Time strictly non-decreasing; ties resolved by seq (== e
            // here since insertion order is the payload order).
            assert!((t.as_nanos(), e) > last || popped == 0);
            last = (t.as_nanos(), e);
            popped += 1;
        }
        assert_eq!(popped, 10_000);
    }

    /// The satellite's differential replay: a seeded random workload of
    /// interleaved schedules and pops (including same-timestamp
    /// collisions) must pop identically from both schedulers.
    #[test]
    fn differential_heap_vs_calendar_replay_is_identical() {
        fn drive<Q: EventScheduler<u64>>(q: &mut Q) -> Vec<(u64, u64)> {
            let mut out = Vec::new();
            let mut s = 0xD1FFu64;
            let mut id = 0u64;
            // Seed a population.
            for _ in 0..500 {
                q.schedule_at(SimTime::from_nanos(splitmix(&mut s) % 10_000), id);
                id += 1;
            }
            // Interleave pops with clustered re-schedules: % 64 forces
            // frequent identical timestamps to exercise the tie-break.
            for step in 0..5_000 {
                if let Some((t, e)) = q.pop() {
                    out.push((t.as_nanos(), e));
                    if step % 3 != 0 {
                        let delay = SimDuration::from_nanos(splitmix(&mut s) % 64);
                        q.schedule_after(delay, id);
                        id += 1;
                    }
                }
            }
            while let Some((t, e)) = q.pop() {
                out.push((t.as_nanos(), e));
            }
            out
        }
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let a = drive(&mut heap);
        let b = drive(&mut cal);
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b, "heap and calendar replays diverged");
    }

    #[test]
    fn insert_before_a_horizon_parked_drain_pops_first() {
        let mut q: CalendarQueue<u32> = CalendarQueue::with_width(SimDuration::from_nanos(1));
        q.schedule_at(SimTime::from_nanos(50), 1);
        // The refill extracts day 50, but the horizon parks it.
        assert!(q.pop_before(SimTime::from_nanos(40)).is_none());
        // An insert into an earlier day must still pop first.
        q.schedule_at(SimTime::from_nanos(20), 0);
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(20), 0));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(50), 1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 0);
        q.schedule_at(SimTime::from_nanos(50), 1);
        assert!(q.pop_before(SimTime::from_nanos(9)).is_none());
        assert_eq!(q.pop_before(SimTime::from_nanos(10)).unwrap().1, 0);
        assert!(q.pop_before(SimTime::from_nanos(49)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(SimTime::from_nanos(50)).unwrap().1, 1);
    }
}
