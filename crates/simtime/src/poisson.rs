//! Poisson arrival processes.
//!
//! Request traffic in every serving experiment of the paper follows a
//! Poisson process with a configured rate (requests per second, §6.1).
//! Inter-arrival gaps are exponential, sampled by inverse CDF from any
//! [`rand::RngCore`] source.

use rand::RngCore;

use crate::time::{SimDuration, SimTime};

/// An iterator of Poisson arrival instants.
pub struct PoissonArrivals<R: RngCore> {
    rng: R,
    rate_per_sec: f64,
    next: SimTime,
}

impl<R: RngCore> PoissonArrivals<R> {
    /// Creates a process with the given rate (arrivals per second of
    /// virtual time), starting at time zero.
    ///
    /// Returns `None` for a non-positive or non-finite rate.
    pub fn new(rng: R, rate_per_sec: f64) -> Option<Self> {
        if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
            return None;
        }
        Some(Self {
            rng,
            rate_per_sec,
            next: SimTime::ZERO,
        })
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    fn sample_gap(&mut self) -> SimDuration {
        // Uniform in (0, 1] from the top 53 bits, then inverse CDF.
        let u = ((self.rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        SimDuration::from_secs_f64(-u.ln() / self.rate_per_sec)
    }

    /// Returns all arrivals strictly before `horizon`.
    pub fn take_until(&mut self, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let gap = self.sample_gap();
            let at = self.next + gap;
            if at >= horizon {
                // Keep the overshoot as the next arrival so repeated
                // calls stay consistent.
                self.next = at;
                break;
            }
            self.next = at;
            out.push(at);
        }
        out
    }
}

impl<R: RngCore> Iterator for PoissonArrivals<R> {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        let gap = self.sample_gap();
        self.next += gap;
        Some(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal deterministic RNG for tests (splitmix64).
    struct TestRng(u64);
    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(PoissonArrivals::new(TestRng(1), 0.0).is_none());
        assert!(PoissonArrivals::new(TestRng(1), -1.0).is_none());
        assert!(PoissonArrivals::new(TestRng(1), f64::NAN).is_none());
        assert!(PoissonArrivals::new(TestRng(1), 2.0).is_some());
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let p = PoissonArrivals::new(TestRng(2), 100.0).unwrap();
        let times: Vec<SimTime> = p.take(200).collect();
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn empirical_rate_matches_configured() {
        let rate = 50.0;
        let mut p = PoissonArrivals::new(TestRng(3), rate).unwrap();
        let horizon = SimTime::from_nanos(200_000_000_000); // 200 s
        let arrivals = p.take_until(horizon);
        let empirical = arrivals.len() as f64 / 200.0;
        assert!(
            (empirical - rate).abs() / rate < 0.05,
            "empirical rate {empirical} vs {rate}"
        );
    }

    #[test]
    fn gaps_are_exponential_in_spread() {
        // Coefficient of variation of exponential gaps is 1.
        let p = PoissonArrivals::new(TestRng(4), 10.0).unwrap();
        let times: Vec<f64> = p.take(20_000).map(|t| t.as_secs_f64()).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }

    #[test]
    fn take_until_respects_horizon_and_resumes() {
        let mut p = PoissonArrivals::new(TestRng(5), 1000.0).unwrap();
        let h1 = SimTime::from_nanos(1_000_000_000);
        let first = p.take_until(h1);
        assert!(first.iter().all(|&t| t < h1));
        let h2 = SimTime::from_nanos(2_000_000_000);
        let second = p.take_until(h2);
        assert!(second.iter().all(|&t| t >= h1 && t < h2));
        assert!(!second.is_empty());
    }
}
