//! Deterministic randomness and timing for fault injection.
//!
//! Chaos experiments need fault times and coin flips that (a) depend
//! only on the experiment seed, never on platform or iteration order,
//! and (b) stay stable when one consumer draws more values — adding a
//! disk-fault stream must not shift the worker-crash stream. Both
//! properties come from named streams: each [`FaultRng`] derives its
//! state from `(seed, stream name)`, so every fault source owns an
//! independent deterministic sequence.

use crate::time::{SimDuration, SimTime};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A named deterministic random stream (xoshiro256++ seeded from a
/// digest of the experiment seed and the stream name).
#[derive(Debug, Clone)]
pub struct FaultRng {
    s: [u64; 4],
}

impl FaultRng {
    /// Derives the stream for `(seed, stream)`.
    pub fn new(seed: u64, stream: &str) -> Self {
        let mut state = seed ^ 0xA076_1D64_78BD_642F;
        for chunk in stream.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word);
            let _ = splitmix64(&mut state);
        }
        let mut s = [0u64; 4];
        for lane in &mut s {
            *lane = splitmix64(&mut state);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "FaultRng::below(0)");
        self.next_u64() % n
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Exponential duration with the given mean (inverse-CDF over a
    /// `(0, 1]` uniform so the logarithm stays finite).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        let u = 1.0 - self.unit_f64();
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }
}

/// A deterministic clock of fault instants: exponential inter-arrival
/// times with a fixed mean, drawn from one named stream.
#[derive(Debug, Clone)]
pub struct FaultClock {
    rng: FaultRng,
    mean_interval: SimDuration,
    next: SimTime,
}

impl FaultClock {
    /// A Poisson-like fault clock starting at the epoch.
    pub fn new(seed: u64, stream: &str, mean_interval: SimDuration) -> Self {
        let mut clock = Self {
            rng: FaultRng::new(seed, stream),
            mean_interval,
            next: SimTime::ZERO,
        };
        clock.advance();
        clock
    }

    /// The next fault instant, if it falls before `horizon`.
    pub fn next_before(&mut self, horizon: SimTime) -> Option<SimTime> {
        if self.next >= horizon {
            return None;
        }
        let at = self.next;
        self.advance();
        Some(at)
    }

    /// The stream's RNG, for drawing fault parameters alongside times.
    pub fn rng(&mut self) -> &mut FaultRng {
        &mut self.rng
    }

    fn advance(&mut self) {
        let gap = self.rng.exp_duration(self.mean_interval);
        // Strictly advance so a zero-length gap cannot stall the clock.
        self.next = self.next + gap + SimDuration::from_nanos(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mut a = FaultRng::new(7, "crash");
        let mut b = FaultRng::new(7, "crash");
        let mut c = FaultRng::new(7, "disk");
        let mut d = FaultRng::new(8, "crash");
        let (xa, xb, xc, xd) = (a.next_u64(), b.next_u64(), c.next_u64(), d.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
        assert_ne!(xa, xd);
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = FaultRng::new(1, "p");
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        assert!((hits as f64 / 20_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn exp_durations_have_the_requested_mean() {
        let mut rng = FaultRng::new(2, "exp");
        let mean = SimDuration::from_secs_f64(4.0);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        assert!((total / n as f64 - 4.0).abs() < 0.2, "{}", total / n as f64);
    }

    #[test]
    fn clock_yields_increasing_times_under_horizon() {
        let horizon = SimTime::from_nanos(60_000_000_000);
        let mut clock = FaultClock::new(3, "clock", SimDuration::from_secs_f64(5.0));
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(at) = clock.next_before(horizon) {
            assert!(at > last || (count == 0 && at >= last));
            assert!(at < horizon);
            last = at;
            count += 1;
        }
        assert!(count > 2, "expected several faults in 60 s, got {count}");

        // Same seed, same schedule.
        let mut again = FaultClock::new(3, "clock", SimDuration::from_secs_f64(5.0));
        assert_eq!(again.next_before(horizon), {
            let mut c = FaultClock::new(3, "clock", SimDuration::from_secs_f64(5.0));
            c.next_before(horizon)
        });
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = FaultRng::new(4, "below");
        for _ in 0..1000 {
            assert!(rng.below(3) < 3);
        }
    }
}
