//! Deterministic event queue and executor.
//!
//! Events carry a user-defined payload type `E`. Simultaneous events
//! execute in scheduling order (a monotone sequence number breaks
//! ties), so simulations are fully deterministic.
//!
//! Two schedulers implement the same [`EventScheduler`] contract and
//! replay byte-identically: the binary-heap [`EventQueue`] (simple,
//! `O(log n)` per operation) and the bucketed
//! [`CalendarQueue`](crate::calendar::CalendarQueue) (amortized `O(1)`,
//! the fleet-scale default). [`Simulation`] is generic over the
//! scheduler, defaulting to the heap so existing worlds compile
//! unchanged.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// The scheduling contract shared by every event queue implementation.
///
/// Implementations must pop events in strict `(time, seq)` order, where
/// `seq` is the monotone scheduling sequence number — two schedulers
/// fed the same schedule-call sequence must pop the exact same event
/// sequence. That property is what the heap-vs-calendar differential
/// tests lock in.
pub trait EventScheduler<E> {
    /// The current virtual time (the timestamp of the last popped
    /// event).
    fn now(&self) -> SimTime;

    /// Schedules an event at an absolute time. Times before `now` are
    /// clamped to `now` (events cannot fire in the past).
    fn schedule_at(&mut self, at: SimTime, event: E);

    /// Schedules an event after a delay from the current time.
    fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now() + delay, event);
    }

    /// Number of pending events.
    fn len(&self) -> usize;

    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Pops the earliest event only if it fires at or before `horizon`;
    /// otherwise leaves the queue untouched and returns `None`.
    fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)>;
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (max-heap) pops the earliest
        // (time, seq) first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of pending events backed by a binary heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current virtual time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time. Times before `now` are
    /// clamped to `now` (events cannot fire in the past).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules an event after a delay from the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Pops the earliest event only if it fires at or before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at > horizon {
            return None;
        }
        self.pop()
    }
}

impl<E> EventScheduler<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }

    fn schedule_at(&mut self, at: SimTime, event: E) {
        EventQueue::schedule_at(self, at, event);
    }

    fn len(&self) -> usize {
        EventQueue::len(self)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }

    fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        EventQueue::pop_before(self, horizon)
    }
}

/// A simulation world that reacts to events and schedules follow-ups.
///
/// Generic over the scheduler so the same world runs on the binary-heap
/// [`EventQueue`] (the default) or the bucketed
/// [`CalendarQueue`](crate::calendar::CalendarQueue) without code
/// changes.
pub trait EventHandler<E, Q: EventScheduler<E> = EventQueue<E>> {
    /// Handles one event at virtual time `now`; may schedule further
    /// events on `queue`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut Q);
}

/// Drives a scheduler against an [`EventHandler`] until the queue
/// drains or a horizon passes.
pub struct Simulation<E, Q: EventScheduler<E> = EventQueue<E>> {
    queue: Q,
    events_processed: u64,
    _ev: std::marker::PhantomData<fn() -> E>,
}

impl<E> Default for Simulation<E, EventQueue<E>> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E, EventQueue<E>> {
    /// Creates an empty simulation on the binary-heap scheduler.
    pub fn new() -> Self {
        Self::with_scheduler(EventQueue::new())
    }
}

impl<E, Q: EventScheduler<E>> Simulation<E, Q> {
    /// Creates a simulation driving the given scheduler.
    pub fn with_scheduler(queue: Q) -> Self {
        Self {
            queue,
            events_processed: 0,
            _ev: std::marker::PhantomData,
        }
    }

    /// Access to the queue for initial event seeding.
    pub fn queue_mut(&mut self) -> &mut Q {
        &mut self.queue
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self, world: &mut impl EventHandler<E, Q>) {
        while let Some((now, event)) = self.queue.pop() {
            self.events_processed += 1;
            world.handle(now, event, &mut self.queue);
        }
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `horizon`; events at exactly `horizon` still execute.
    pub fn run_until(&mut self, horizon: SimTime, world: &mut impl EventHandler<E, Q>) {
        while let Some((now, event)) = self.queue.pop_before(horizon) {
            self.events_processed += 1;
            world.handle(now, event, &mut self.queue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    struct Recorder {
        seen: Vec<(u64, Ev)>,
    }

    impl EventHandler<Ev> for Recorder {
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            if let Ev::Chain(n) = &event {
                if *n > 0 {
                    queue.schedule_after(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                }
            }
            self.seen.push((now.as_nanos(), event));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        sim.queue_mut()
            .schedule_at(SimTime::from_nanos(30), Ev::Tick(3));
        sim.queue_mut()
            .schedule_at(SimTime::from_nanos(10), Ev::Tick(1));
        sim.queue_mut()
            .schedule_at(SimTime::from_nanos(20), Ev::Tick(2));
        let mut w = Recorder { seen: vec![] };
        sim.run(&mut w);
        let order: Vec<u64> = w.seen.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn simultaneous_events_keep_fifo_order() {
        let mut sim = Simulation::new();
        for i in 0..5 {
            sim.queue_mut()
                .schedule_at(SimTime::from_nanos(42), Ev::Tick(i));
        }
        let mut w = Recorder { seen: vec![] };
        sim.run(&mut w);
        let ids: Vec<u32> = w
            .seen
            .iter()
            .map(|(_, e)| match e {
                Ev::Tick(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut sim = Simulation::new();
        sim.queue_mut()
            .schedule_at(SimTime::from_nanos(0), Ev::Chain(3));
        let mut w = Recorder { seen: vec![] };
        sim.run(&mut w);
        assert_eq!(w.seen.len(), 4);
        assert_eq!(sim.now().as_nanos(), 30);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new();
        sim.queue_mut()
            .schedule_at(SimTime::from_nanos(0), Ev::Chain(100));
        let mut w = Recorder { seen: vec![] };
        sim.run_until(SimTime::from_nanos(45), &mut w);
        // Events at 0, 10, 20, 30, 40 fire; 50 does not.
        assert_eq!(w.seen.len(), 5);
        // The remaining chain event is still queued.
        assert_eq!(sim.queue_mut().len(), 1);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(100), Ev::Tick(0));
        let _ = q.pop();
        assert_eq!(q.now().as_nanos(), 100);
        q.schedule_at(SimTime::from_nanos(5), Ev::Tick(1));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 100, "past events fire immediately");
    }

    #[test]
    fn empty_queue_reports() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        q.schedule_after(SimDuration::from_nanos(1), Ev::Tick(0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_before_leaves_late_events_queued() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), Ev::Tick(0));
        q.schedule_at(SimTime::from_nanos(50), Ev::Tick(1));
        assert!(q.pop_before(SimTime::from_nanos(5)).is_none());
        let (t, _) = q.pop_before(SimTime::from_nanos(10)).unwrap();
        assert_eq!(t.as_nanos(), 10);
        assert!(q.pop_before(SimTime::from_nanos(49)).is_none());
        assert_eq!(q.len(), 1);
    }

    /// A world generic over the scheduler, exercised through both via
    /// the same code path.
    struct GenericRecorder {
        seen: Vec<u64>,
    }

    impl<Q: EventScheduler<Ev>> EventHandler<Ev, Q> for GenericRecorder {
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut Q) {
            if let Ev::Chain(n) = &event {
                if *n > 0 {
                    queue.schedule_after(SimDuration::from_nanos(7), Ev::Chain(n - 1));
                }
            }
            self.seen.push(now.as_nanos());
        }
    }

    #[test]
    fn generic_worlds_run_on_the_heap_scheduler() {
        let mut sim = Simulation::new();
        sim.queue_mut()
            .schedule_at(SimTime::from_nanos(0), Ev::Chain(4));
        let mut w = GenericRecorder { seen: vec![] };
        sim.run(&mut w);
        assert_eq!(w.seen, vec![0, 7, 14, 21, 28]);
    }
}
