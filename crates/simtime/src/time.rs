//! Virtual time with nanosecond resolution.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: Self = Self(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; saturates at zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: Self = Self(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000_000)
    }

    /// Creates a duration from float seconds; negative and non-finite
    /// inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Self::ZERO;
        }
        Self((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{:.1}µs", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100) + SimDuration::from_nanos(50);
        assert_eq!(t.as_nanos(), 150);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_nanos(7);
        assert_eq!(t2.as_nanos(), 7);
        assert_eq!(
            t.since(SimTime::from_nanos(120)),
            SimDuration::from_nanos(30)
        );
        // Saturating: earlier in the future.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn duration_ops() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!((a + b).as_nanos(), 14_000_000);
        assert_eq!((a - b).as_nanos(), 6_000_000);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.mul_f64(2.5).as_nanos(), 25_000_000);
        assert_eq!(a.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "500.0µs");
        assert_eq!(SimDuration::from_millis(20).to_string(), "20.00ms");
        assert_eq!(SimDuration::from_secs_f64(2.5).to_string(), "2.500s");
    }
}
