//! Discrete-event simulation core for the FlashPS performance substrate.
//!
//! The paper's serving-scale experiments (latency vs RPS, batching
//! strategies, load balancing) run on GPU clusters; this crate provides
//! the virtual-time machinery to reproduce them without hardware:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! - [`EventQueue`] / [`Simulation`] — a deterministic event executor
//!   with stable FIFO ordering for simultaneous events.
//! - [`Resource`] / [`MultiResource`] — serial and k-server FIFO
//!   resources modelling GPU compute streams, PCIe copy streams, and
//!   CPU worker pools.
//! - [`poisson`] — Poisson arrival processes for request traffic, the
//!   workload model used throughout §6 of the paper.

pub mod calendar;
pub mod event;
pub mod fault;
pub mod poisson;
pub mod resource;
pub mod time;

pub use calendar::CalendarQueue;
pub use event::{EventHandler, EventQueue, EventScheduler, Simulation};
pub use fault::{FaultClock, FaultRng};
pub use poisson::PoissonArrivals;
pub use resource::{MultiResource, Resource};
pub use time::{SimDuration, SimTime};
