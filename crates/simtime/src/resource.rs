//! FIFO resources: serial streams and k-server pools.
//!
//! A [`Resource`] models anything that serves work sequentially — a GPU
//! compute stream, a PCIe copy engine, a disk. A [`MultiResource`]
//! models a pool of `k` identical servers — the CPU pre/post-processing
//! workers of FlashPS's disaggregated design (§4.3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A serial FIFO resource.
#[derive(Debug, Clone)]
pub struct Resource {
    busy_until: SimTime,
    busy_time: SimDuration,
}

impl Default for Resource {
    fn default() -> Self {
        Self::new()
    }
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self {
            busy_until: SimTime::ZERO,
            busy_time: SimDuration::ZERO,
        }
    }

    /// Reserves the resource for `duration` starting no earlier than
    /// `now`; returns `(start, finish)` of the reservation.
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let start = self.busy_until.max(now);
        let finish = start + duration;
        self.busy_until = finish;
        self.busy_time += duration;
        (start, finish)
    }

    /// The instant the resource next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Queueing delay a request arriving at `now` would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.busy_until.since(now)
    }

    /// Total time the resource has been reserved.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Utilization over `[0, now]`; 0.0 when `now` is the epoch.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / elapsed).min(1.0)
    }
}

/// A pool of `k` identical FIFO servers; work goes to whichever server
/// frees up first.
#[derive(Debug, Clone)]
pub struct MultiResource {
    // Min-heap of per-server next-free instants.
    free_at: BinaryHeap<Reverse<SimTime>>,
    servers: usize,
}

impl MultiResource {
    /// Creates an idle pool of `servers.max(1)` servers.
    pub fn new(servers: usize) -> Self {
        let servers = servers.max(1);
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(Reverse(SimTime::ZERO));
        }
        Self { free_at, servers }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Reserves one server for `duration` starting no earlier than
    /// `now`; returns `(start, finish)`.
    pub fn acquire(&mut self, now: SimTime, duration: SimDuration) -> (SimTime, SimTime) {
        let Reverse(free) = self.free_at.pop().expect("pool is never empty");
        let start = free.max(now);
        let finish = start + duration;
        self.free_at.push(Reverse(finish));
        (start, finish)
    }

    /// The earliest instant any server is idle.
    pub fn earliest_free(&self) -> SimTime {
        self.free_at
            .peek()
            .map(|Reverse(t)| *t)
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resource_serializes() {
        let mut r = Resource::new();
        let (s1, f1) = r.acquire(SimTime::from_nanos(0), SimDuration::from_nanos(100));
        assert_eq!((s1.as_nanos(), f1.as_nanos()), (0, 100));
        // Arrives while busy: starts when free.
        let (s2, f2) = r.acquire(SimTime::from_nanos(50), SimDuration::from_nanos(10));
        assert_eq!((s2.as_nanos(), f2.as_nanos()), (100, 110));
        // Arrives after idle: starts immediately.
        let (s3, _) = r.acquire(SimTime::from_nanos(500), SimDuration::from_nanos(10));
        assert_eq!(s3.as_nanos(), 500);
    }

    #[test]
    fn backlog_and_utilization() {
        let mut r = Resource::new();
        r.acquire(SimTime::ZERO, SimDuration::from_nanos(100));
        assert_eq!(
            r.backlog(SimTime::from_nanos(40)),
            SimDuration::from_nanos(60)
        );
        assert_eq!(r.backlog(SimTime::from_nanos(200)), SimDuration::ZERO);
        // 100ns busy over 200ns elapsed = 50%.
        assert!((r.utilization(SimTime::from_nanos(200)) - 0.5).abs() < 1e-9);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let mut pool = MultiResource::new(2);
        let d = SimDuration::from_nanos(100);
        let (_, f1) = pool.acquire(SimTime::ZERO, d);
        let (_, f2) = pool.acquire(SimTime::ZERO, d);
        let (s3, _) = pool.acquire(SimTime::ZERO, d);
        // Two run immediately; the third waits for the first to free.
        assert_eq!(f1.as_nanos(), 100);
        assert_eq!(f2.as_nanos(), 100);
        assert_eq!(s3.as_nanos(), 100);
    }

    #[test]
    fn multi_resource_picks_earliest_server() {
        let mut pool = MultiResource::new(2);
        pool.acquire(SimTime::ZERO, SimDuration::from_nanos(300));
        pool.acquire(SimTime::ZERO, SimDuration::from_nanos(100));
        assert_eq!(pool.earliest_free().as_nanos(), 100);
        let (s, _) = pool.acquire(SimTime::from_nanos(50), SimDuration::from_nanos(10));
        assert_eq!(s.as_nanos(), 100, "should use the server free at 100");
    }

    #[test]
    fn zero_server_pool_clamps_to_one() {
        let pool = MultiResource::new(0);
        assert_eq!(pool.servers(), 1);
    }
}
