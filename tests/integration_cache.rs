//! Integration: the cache engine end-to-end — Algorithm 1 plans built
//! from real cost models, hierarchical storage under serving pressure,
//! and cache-consistency of the numeric substrate.

use flashps::{FlashPs, FlashPsConfig};
use fps_baselines::eval_setup;
use fps_diffusion::{Image, ModelConfig};
use fps_maskcache::pipeline::{plan_brute_force, plan_uniform, simulate_plan};
use fps_maskcache::store::{HierarchicalStore, StoreConfig, Tier};
use fps_serving::cost::BatchItem;
use fps_simtime::SimTime;

#[test]
fn dp_plans_from_real_cost_models_are_optimal() {
    // Algorithm 1 over per-block costs produced by the calibrated
    // cost models must match brute force wherever brute force is
    // feasible.
    for setup in eval_setup() {
        let cm = setup.cost_model();
        if cm.model.blocks > 20 {
            continue;
        }
        for m in [0.03, 0.11, 0.35] {
            for b in [1usize, 4, 8] {
                let batch = vec![BatchItem { mask_ratio: m }; b];
                let costs = cm.mask_aware_block_costs(&batch, false);
                let dp = plan_uniform(cm.model.blocks, costs);
                let bf = plan_brute_force(&vec![costs; cm.model.blocks]);
                assert_eq!(dp.latency, bf.latency, "{} m={m} b={b}", cm.model.name);
                assert_eq!(
                    simulate_plan(&vec![costs; cm.model.blocks], &dp.use_cache).expect("simulate"),
                    dp.latency
                );
            }
        }
    }
}

#[test]
fn small_masks_at_large_batches_skip_some_blocks() {
    // §4.2's interesting regime: small masks mean big caches and tiny
    // compute, so loads bound the pipeline and the DP computes some
    // blocks in full instead.
    let cm = eval_setup()[0].cost_model(); // SD2.1 on A10: slowest link.
    let batch = vec![BatchItem { mask_ratio: 0.02 }; 4];
    let costs = cm.mask_aware_block_costs(&batch, false);
    let plan = plan_uniform(cm.model.blocks, costs);
    // Regardless of the mix chosen, the plan must beat both extremes.
    let all_cached = simulate_plan(&vec![costs; cm.model.blocks], &vec![true; cm.model.blocks])
        .expect("simulate");
    let all_full = simulate_plan(&vec![costs; cm.model.blocks], &vec![false; cm.model.blocks])
        .expect("simulate");
    assert!(plan.latency <= all_cached);
    assert!(plan.latency <= all_full);
}

#[test]
fn store_under_serving_pressure_keeps_hot_templates_resident() {
    // Zipf-popular templates should stay in host memory while cold
    // ones cycle through disk.
    let per_template: u64 = 1 << 30;
    let mut store = HierarchicalStore::new(StoreConfig {
        host_capacity: 4 * per_template,
        disk_capacity: u64::MAX,
        disk_read_bw: 8.0 * (1u64 << 30) as f64,
    });
    for id in 0..10u64 {
        store
            .insert(id, per_template, SimTime::ZERO, None)
            .expect("insert");
    }
    // Access pattern: template 0 is hot, others occasional.
    let mut now = 1u64;
    for round in 0..50u64 {
        let _ = store.fetch(0, SimTime::from_nanos(now));
        now += 1;
        let cold = 1 + (round % 9);
        let _ = store.fetch(cold, SimTime::from_nanos(now));
        now += 1;
    }
    assert_eq!(store.locate(0), Some(Tier::Host), "hot template resident");
    let host_count = (0..10)
        .filter(|&id| store.locate(id) == Some(Tier::Host))
        .count();
    assert!(host_count <= 4, "host capacity respected");
    assert!(store.stats().evictions > 0);
    assert!(store.stats().disk_hits > 0);
}

#[test]
fn numeric_cache_bytes_match_analytic_sizing() {
    // The priming cache held by the FlashPS system must match the
    // Table 1 sizing formula at mask ratio 0 (all tokens cached).
    let cfg = ModelConfig::sdxl_like();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("system");
    sys.register_template(3, &Image::template(cfg.pixel_h(), cfg.pixel_w(), 1))
        .expect("register");
    let actual = sys.template_cache_bytes(3).expect("registered");
    let expected = cfg.cache_bytes_total(0.0);
    assert_eq!(actual, expected);
}

#[test]
fn cache_is_shared_across_prompts_and_seeds() {
    // One primed cache serves edits with any prompt/seed — the §2.2
    // template-reuse property.
    let cfg = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("system");
    sys.register_template(0, &Image::template(cfg.pixel_h(), cfg.pixel_w(), 4))
        .expect("register");
    let masked = [1usize, 2, 5];
    for (prompt, seed) in [("red", 1u64), ("blue", 2), ("green", 3)] {
        let r = sys.edit_tokens(0, &masked, prompt, seed).expect("edit");
        assert!(r.output.image.data().iter().all(|v| v.is_finite()));
    }
    assert_eq!(sys.template_count(), 1, "still one cache");
}
