//! Integration: quality metrics over real pipeline outputs — the
//! machinery behind Table 2.

use fps_diffusion::{EditPipeline, Image, ModelConfig, Strategy};
use fps_quality::clip_proxy::clip_proxy_score;
use fps_quality::{frechet_distance, ssim, FeatureExtractor};
use fps_workload::QualityBenchmark;

#[test]
fn ssim_separates_faithful_from_distorted_edits() {
    let cfg = ModelConfig::sd21_like();
    let pipe = EditPipeline::new(&cfg).expect("pipeline");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 3);
    let cache = pipe.prime(&template, 1, false).expect("prime");
    let masked: Vec<usize> = (0..cfg.tokens()).filter(|i| i % 4 == 0).collect();
    let reference = pipe
        .edit(
            &template,
            1,
            &masked,
            "p",
            2,
            &Strategy::FullRecompute,
            None,
        )
        .expect("reference");
    let flash = pipe
        .edit(
            &template,
            1,
            &masked,
            "p",
            2,
            &Strategy::MaskAware {
                use_cache: vec![true; cfg.blocks],
                kv: false,
            },
            Some(&cache),
        )
        .expect("flash");
    let naive = pipe
        .edit(
            &template,
            1,
            &masked,
            "p",
            2,
            &Strategy::NaiveDisregard,
            None,
        )
        .expect("naive");
    let s_flash = ssim(&flash.image, &reference.image).expect("ssim");
    let s_naive = ssim(&naive.image, &reference.image).expect("ssim");
    assert!(
        s_flash > s_naive + 0.1,
        "flash {s_flash} should clearly beat naive {s_naive}"
    );
}

#[test]
fn frechet_distance_over_pipeline_features_orders_systems() {
    // Feature distributions of faithful edits sit closer to the
    // reference set than those of naive-disregard edits.
    let cfg = ModelConfig::tiny();
    let pipe = EditPipeline::new(&cfg).expect("pipeline");
    let fx = FeatureExtractor::new(&cfg, 8).expect("extractor");
    let bench = QualityBenchmark::pie_bench_like(10, cfg.pixel_h(), cfg.pixel_w(), 17);
    let mut reference = Vec::new();
    let mut flash = Vec::new();
    let mut naive = Vec::new();
    for case in &bench.cases {
        let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), case.template_seed);
        let cache = pipe
            .prime(&template, case.template_id, false)
            .expect("prime");
        let masked = case.mask.token_indices(cfg.latent_h, cfg.latent_w);
        let run = |s: &Strategy, c| {
            pipe.edit(
                &template,
                case.template_id,
                &masked,
                &case.prompt,
                case.seed,
                s,
                c,
            )
            .expect("edit")
            .image
        };
        reference.push(run(&Strategy::FullRecompute, None));
        flash.push(run(
            &Strategy::MaskAware {
                use_cache: vec![true; cfg.blocks],
                kv: false,
            },
            Some(&cache),
        ));
        naive.push(run(&Strategy::NaiveDisregard, None));
    }
    let ref_feats = fx.extract_batch(&reference).expect("features");
    let d_flash = frechet_distance(&ref_feats, &fx.extract_batch(&flash).expect("f")).expect("fid");
    let d_naive = frechet_distance(&ref_feats, &fx.extract_batch(&naive).expect("f")).expect("fid");
    assert!(
        d_flash < d_naive,
        "flash FID {d_flash} should beat naive {d_naive}"
    );
}

#[test]
fn clip_proxy_runs_over_benchmark_outputs() {
    let cfg = ModelConfig::tiny();
    let pipe = EditPipeline::new(&cfg).expect("pipeline");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 9);
    let masked: Vec<usize> = vec![0, 1, 4, 5];
    let out = pipe
        .edit(
            &template,
            1,
            &masked,
            "a red hat",
            3,
            &Strategy::FullRecompute,
            None,
        )
        .expect("edit");
    let score = clip_proxy_score(&cfg, "a red hat", &out.image).expect("clip");
    assert!(score.is_finite());
    assert!((-100.0..=100.0).contains(&score));
}

#[test]
fn quality_benchmarks_integrate_with_the_pipeline_dimensions() {
    for cfg in [ModelConfig::sd21_like(), ModelConfig::flux_like()] {
        let bench = QualityBenchmark::viton_hd_like(4, cfg.pixel_h(), cfg.pixel_w(), 2);
        for case in &bench.cases {
            assert_eq!(case.mask.height(), cfg.pixel_h());
            let tokens = case.mask.token_indices(cfg.latent_h, cfg.latent_w);
            assert!(!tokens.is_empty());
            assert!(tokens.iter().all(|&t| t < cfg.tokens()));
        }
    }
}
