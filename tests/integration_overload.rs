//! Integration: the overload-control subsystem across crates —
//! admission and the degradation ladder (fps-overload) driving the
//! cluster simulator (fps-serving), the breaker-guarded activation
//! store (fps-maskcache) under chaos profiles (fps-chaos), and the
//! Algorithm 2 router (flashps) composing with all of it.

use flashps::MaskAwareRouter;
use fps_chaos::{FaultProfile, RetryPolicy};
use fps_diffusion::ModelConfig;
use fps_maskcache::store::{FallbackReason, HierarchicalStore, StoreConfig, VerifiedFetch};
use fps_overload::{BreakerConfig, BreakerState, CircuitBreaker, Rung, ShedCause};
use fps_serving::cluster::{ClusterConfig, ClusterSim};
use fps_serving::{CostModel, GpuSpec, LeastLoadedRouter, RejectReason};
use fps_simtime::{SimDuration, SimTime};
use fps_workload::trace::ArrivalProcess;
use fps_workload::{RatioDistribution, Trace, TraceConfig};

const NUM_TEMPLATES: usize = 8;

fn bursty_trace(rps: f64, secs: f64, seed: u64) -> Trace {
    Trace::generate(&TraceConfig {
        rps,
        arrivals: ArrivalProcess::bursty_default(),
        duration_secs: secs,
        ratio_dist: RatioDistribution::VitonHd,
        num_templates: NUM_TEMPLATES,
        zipf_s: 1.0,
        seed,
    })
}

fn overload_config(workers: usize, deadline_secs: f64) -> ClusterConfig {
    ClusterConfig::with_overload_control(
        CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl()),
        workers,
        0.35,
        SimDuration::from_secs_f64(deadline_secs),
    )
}

fn at(secs: f64) -> SimTime {
    SimTime::from_nanos((secs * 1e9) as u64)
}

#[test]
fn admission_sheds_the_saturating_burst_with_algorithm2_routing() {
    // Seed 24 produces an effectively saturating burst (~4.5 rps
    // against ~2 rps of capacity). The mask-aware router composes
    // with overload control exactly like the baseline policies.
    let trace = bursty_trace(5.0, 120.0, 24);
    let n = trace.len();
    let cfg = overload_config(2, 30.0);
    let mut router = MaskAwareRouter::new(cfg.cost.clone()).expect("router");
    let report = ClusterSim::run(cfg.clone(), &trace, &mut router).expect("run");

    assert!(report.shed > 0, "saturation must shed at admission");
    assert_eq!(
        report.outcomes.len() + report.rejected.len(),
        n,
        "every request resolves exactly once"
    );
    // Shed-at-admission and deadline-exceeded-in-queue are counted
    // apart: the two reject populations are disjoint and labelled.
    for r in &report.rejected {
        match r.reason {
            RejectReason::Shed(cause) => {
                assert!(r.reason.is_shed());
                assert!(!cause.label().is_empty());
            }
            RejectReason::DeadlineExceeded => assert!(!r.reason.is_shed()),
            RejectReason::RetriesExhausted => {
                panic!("no chaos plan: retries cannot be exhausted")
            }
        }
    }
    // Saturation pushes the ladder below the premium rung.
    assert!(report
        .outcomes
        .iter()
        .any(|o| o.rung.is_some() && o.rung != Some(Rung::FlashPsKv)));
    // Deterministic replay, router included.
    let mut router2 = MaskAwareRouter::new(cfg.cost.clone()).expect("router");
    let replay = ClusterSim::run(cfg, &trace, &mut router2).expect("replay");
    assert_eq!(report.outcomes, replay.outcomes);
    assert_eq!(report.rejected, replay.rejected);
}

#[test]
fn ladder_downgrades_under_pressure_and_recovers_after() {
    // A saturating 30 s burst, then a long quiet tail: the ladder
    // must degrade during the burst and, once pressure drains and the
    // hysteresis dwell elapses, serve late arrivals at the premium
    // rung again.
    let mut requests = bursty_trace(6.0, 30.0, 24).requests;
    // Quiet tail: one request every 5 s from t = 200 s, far apart
    // enough that every arrival can clear the hysteresis dwell.
    for k in 0..12u64 {
        let mut r = requests[k as usize % 8].clone();
        r.id = 10_000 + k;
        r.arrival_ns = 200_000_000_000 + k * 5_000_000_000;
        requests.push(r);
    }
    let trace = Trace { requests };
    let mut router = LeastLoadedRouter;
    let report = ClusterSim::run(overload_config(2, 30.0), &trace, &mut router).expect("run");

    let burst_rungs: Vec<Rung> = report
        .outcomes
        .iter()
        .filter(|o| o.id < 10_000)
        .filter_map(|o| o.rung)
        .collect();
    assert!(
        burst_rungs.iter().any(|&r| r != Rung::FlashPsKv),
        "the burst must push the ladder down"
    );
    let late_rungs: Vec<Option<Rung>> = report
        .outcomes
        .iter()
        .filter(|o| o.id >= 10_000)
        .map(|o| o.rung)
        .collect();
    assert!(!late_rungs.is_empty(), "quiet-tail requests were served");
    let tail = &late_rungs[late_rungs.len().saturating_sub(3)..];
    assert!(
        tail.iter().all(|&r| r == Some(Rung::FlashPsKv)),
        "after the burst drains, service recovers to the premium rung: {tail:?}"
    );
}

#[test]
fn breaker_trips_half_opens_and_reheals_end_to_end() {
    // The full state walk against a real hierarchical store: repeated
    // checksum failures trip the breaker (Closed → Open), the open
    // breaker short-circuits with zero disk I/O, the cooldown
    // half-opens it, and a successful probe re-closes it.
    let mut store = HierarchicalStore::new(StoreConfig {
        host_capacity: 100_000,
        disk_read_bw: 1e6,
        ..StoreConfig::production_like()
    });
    let mut breaker = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 3,
        cooldown: SimDuration::from_secs_f64(15.0),
        slow_read_threshold: SimDuration::from_secs_f64(2.0),
    });
    for id in 0..4u64 {
        store
            .insert(id, 1_000, SimTime::ZERO, None)
            .expect("insert");
    }

    // Trip: three corrupt reads in a row.
    for i in 0..3u64 {
        store.corrupt(i);
        assert_eq!(
            store.fetch_guarded(&mut breaker, i, at(i as f64)),
            VerifiedFetch::Fallback(FallbackReason::Corrupt)
        );
    }
    assert_eq!(breaker.state(at(2.5)), BreakerState::Open);
    assert_eq!(breaker.trips(), 1);

    // Open: an intact entry is not even read.
    let before = store.stats();
    assert_eq!(
        store.fetch_guarded(&mut breaker, 3, at(5.0)),
        VerifiedFetch::Fallback(FallbackReason::BreakerOpen)
    );
    let mid = store.stats();
    assert_eq!(
        mid.breaker_short_circuits,
        before.breaker_short_circuits + 1
    );
    assert_eq!(mid.host_hits, before.host_hits, "no I/O while open");

    // Half-open after the cooldown; the probe succeeds and re-heals.
    assert_eq!(breaker.state(at(18.0)), BreakerState::HalfOpen);
    assert_eq!(
        store.fetch_guarded(&mut breaker, 3, at(18.0)),
        VerifiedFetch::Intact(at(18.0))
    );
    assert_eq!(breaker.state(at(18.0)), BreakerState::Closed);

    // Re-trip on a fresh failure run: the walk is repeatable.
    for i in 0..3u64 {
        let _ = store.insert(10 + i, 1_000, at(20.0), None);
        store.corrupt(10 + i);
        let _ = store.fetch_guarded(&mut breaker, 10 + i, at(20.0 + i as f64));
    }
    assert_eq!(breaker.state(at(23.0)), BreakerState::Open);
    assert_eq!(breaker.trips(), 2);
}

#[test]
fn disk_brownout_profile_trips_the_cluster_breaker() {
    // End to end through the simulator: the disk-brownout chaos
    // profile (repeated corruption under a collapsed disk tier) must
    // trip the breaker on the cluster's guarded read path while
    // conservation and determinism hold.
    let trace = bursty_trace(2.0, 120.0, 24);
    let n = trace.len();
    let horizon = SimTime::from_nanos(180_000_000_000);
    let plan = FaultProfile::DiskBrownout.plan(9, horizon, 2, NUM_TEMPLATES as u64);
    let retry = RetryPolicy::default();
    let run = || {
        let mut router = LeastLoadedRouter;
        ClusterSim::run_with_faults(overload_config(2, 30.0), &trace, &mut router, &plan, &retry)
            .expect("run")
    };
    let report = run();
    assert!(report.breaker_trips > 0, "brown-out must trip the breaker");
    assert!(
        report.store_stats.breaker_short_circuits > 0,
        "an open breaker must short-circuit reads"
    );
    assert_eq!(report.outcomes.len() + report.rejected.len(), n);
    let replay = run();
    assert_eq!(report.outcomes, replay.outcomes);
    assert_eq!(report.rejected, replay.rejected);
    assert_eq!(report.breaker_trips, replay.breaker_trips);
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    // Under arbitrary overload plans every submitted request resolves
    // to exactly one of: completed at some rung, shed at admission,
    // or rejected on deadline — never lost, never double-counted,
    // never rejected for a reason the run cannot produce.
    #[test]
    fn every_request_resolves_exactly_once_under_random_overload(
        rps in 1.0f64..8.0,
        trace_seed in 0u64..200,
        workers in 1usize..4,
        deadline_secs in 10.0f64..60.0,
    ) {
        let trace = bursty_trace(rps, 60.0, trace_seed);
        let n = trace.len();
        let mut router = LeastLoadedRouter;
        let report = ClusterSim::run(
            overload_config(workers, deadline_secs),
            &trace,
            &mut router,
        )
        .expect("run");

        proptest::prop_assert_eq!(report.outcomes.len() + report.rejected.len(), n);
        let mut ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        ids.extend(report.rejected.iter().map(|r| r.id));
        ids.sort_unstable();
        ids.dedup();
        proptest::prop_assert_eq!(ids.len(), n, "no id resolves twice");

        for o in &report.outcomes {
            proptest::prop_assert!(o.rung.is_some(), "served work carries its rung");
            proptest::prop_assert!(o.total.is_finite() && o.total >= 0.0);
        }
        for r in &report.rejected {
            proptest::prop_assert!(
                matches!(
                    r.reason,
                    RejectReason::Shed(
                        ShedCause::RateLimited | ShedCause::QueueFull | ShedCause::Infeasible
                    ) | RejectReason::DeadlineExceeded
                ),
                "fault-free overload run: reject reason {:?}",
                r.reason
            );
        }
        // The report's shed counter agrees with the listed reasons.
        let shed_listed = report.rejected.iter().filter(|r| r.reason.is_shed()).count() as u64;
        proptest::prop_assert_eq!(shed_listed, report.shed);
    }
}
