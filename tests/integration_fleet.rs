//! Integration: the fleet layer end to end — consistent-hash affinity
//! routing (fps-fleet) over per-shard control planes (fps-serving),
//! multi-tenant Zipf traces (fps-workload), histogram-merged fleet
//! SLO rollups (fps-metrics), deterministic replay on both event
//! schedulers (fps-simtime), and cache-feedback routing on the
//! wall-clock ThreadedServer.

use std::sync::{Arc, Mutex};

use flashps::server::{EditJob, ServerConfig, ThreadedServer};
use flashps::{FlashPs, FlashPsConfig};
use fps_diffusion::{Image, ModelConfig};
use fps_fleet::{
    AutoscalerConfig, FleetConfig, FleetSim, HashRing, RouteStrategy, TemplateAffinityRouter,
};
use fps_json::ToJson;
use fps_metrics::{CacheFeedback, FetchOutcome};
use fps_serving::{ControlPlane, Decision, Router, TimeSource};
use fps_simtime::SimDuration;
use fps_workload::{FleetTrace, FleetTraceConfig, TenantSpec};

fn zipf_trace(rps: f64, secs: f64, seed: u64) -> FleetTrace {
    FleetTrace::generate(&FleetTraceConfig {
        tenants: vec![
            TenantSpec::new("studio", rps, 64),
            TenantSpec::new("retail", rps * 0.8, 48),
        ],
        duration_secs: secs,
        diurnal: None,
        seed,
    })
}

fn config(strategy: RouteStrategy) -> FleetConfig {
    FleetConfig {
        shards: 4,
        workers_per_shard: 2,
        max_batch: 4,
        cache_capacity: 24,
        deadline_secs: 5.0,
        allow_degradation: false,
        strategy,
        ..Default::default()
    }
}

#[test]
fn affinity_beats_round_robin_across_the_stack() {
    let trace = zipf_trace(3.0, 120.0, 7);
    let aff = FleetSim::run(
        config(RouteStrategy::Affinity { load_factor: 1.25 }),
        &trace,
    );
    let rr = FleetSim::run(config(RouteStrategy::RoundRobin), &trace);
    assert!(
        aff.hit_rate() > rr.hit_rate(),
        "affinity hit rate {:.3} must beat round-robin {:.3}",
        aff.hit_rate(),
        rr.hit_rate()
    );
    // Misses recompute the full latent, so the hit-rate edge must show
    // up as cheaper service: lower mean latency on the same trace.
    assert!(
        aff.fleet.fleet.mean_latency_secs < rr.fleet.fleet.mean_latency_secs,
        "affinity mean latency {:.3}s not below round-robin {:.3}s",
        aff.fleet.fleet.mean_latency_secs,
        rr.fleet.fleet.mean_latency_secs
    );
}

#[test]
fn every_strategy_replays_byte_identically_on_both_schedulers() {
    let trace = zipf_trace(2.5, 90.0, 11);
    for strategy in [
        RouteStrategy::Affinity { load_factor: 1.25 },
        RouteStrategy::RoundRobin,
        RouteStrategy::Random,
    ] {
        let a = FleetSim::run(config(strategy), &trace)
            .to_json()
            .to_string_compact();
        let b = FleetSim::run(config(strategy), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, b, "{}: same scheduler, different bytes", strategy.name());
        let heap = FleetSim::run_on_heap(config(strategy), &trace)
            .to_json()
            .to_string_compact();
        assert_eq!(a, heap, "{}: calendar and heap disagree", strategy.name());
    }
}

#[test]
fn autoscaler_grows_under_pressure_and_respects_the_ceiling() {
    let trace = zipf_trace(10.0, 240.0, 3);
    let mut cfg = config(RouteStrategy::Affinity { load_factor: 1.25 });
    cfg.workers_per_shard = 1;
    cfg.allow_degradation = true;
    cfg.autoscaler = Some(AutoscalerConfig {
        min_workers: 1,
        max_workers: 4,
        up_ticks: 1,
        cooldown: SimDuration::from_secs_f64(10.0),
        ..Default::default()
    });
    let r = FleetSim::run(cfg, &trace);
    assert!(r.scale_ups > 0, "overloaded fleet never scaled up");
    assert!(
        r.final_workers.iter().any(|&w| w > 1),
        "pools never grew: {:?}",
        r.final_workers
    );
    assert!(
        r.final_workers.iter().all(|&w| w <= 4),
        "ceiling violated: {:?}",
        r.final_workers
    );
}

#[test]
fn fleet_rollup_conserves_counts_and_pools_histograms() {
    let trace = zipf_trace(3.0, 120.0, 19);
    let r = FleetSim::run(config(RouteStrategy::Random), &trace);
    let fleet = &r.fleet.fleet;
    assert_eq!(
        fleet.submitted,
        r.shard_reports
            .iter()
            .map(|s| s.report.submitted)
            .sum::<u64>()
    );
    assert_eq!(
        fleet.served,
        r.shard_reports.iter().map(|s| s.report.served).sum::<u64>()
    );
    assert_eq!(fleet.submitted, trace.trace.len() as u64, "requests lost");
    // The fleet p95 is a pooled-histogram percentile, not an average
    // of per-shard p95s: it must sit within the range the shards span.
    let lo = r
        .shard_reports
        .iter()
        .map(|s| s.report.p95_latency_secs)
        .fold(f64::INFINITY, f64::min);
    let hi = r
        .shard_reports
        .iter()
        .map(|s| s.report.p95_latency_secs)
        .fold(0.0, f64::max);
    assert!(
        fleet.p95_latency_secs >= lo - 1e-9 && fleet.p95_latency_secs <= hi + 1e-9,
        "pooled p95 {} outside shard range [{lo}, {hi}]",
        fleet.p95_latency_secs
    );
}

#[test]
fn threaded_server_feedback_routing_follows_recorded_outcomes() {
    // Wall-clock plane: a ThreadedServer whose control plane routes
    // through a feedback-attached TemplateAffinityRouter. Recording a
    // cold miss on the sticky worker and a hit elsewhere must move the
    // next placement of that template — measured cost over blind ring
    // preference.
    let model = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(model.clone())).unwrap();
    let img = Image::template(model.pixel_h(), model.pixel_w(), 0);
    sys.register_template(0, &img).unwrap();
    let fb = Arc::new(Mutex::new(CacheFeedback::new(2, 0.5, 5.0)));
    let router = TemplateAffinityRouter::new().with_feedback(Arc::clone(&fb));
    assert_eq!(router.name(), "template-affinity+feedback");
    let plane = ControlPlane::new(
        Box::new(router) as Box<dyn Router + Send>,
        TimeSource::wall(),
        model.steps,
    )
    .record_decisions(true);
    let server = ThreadedServer::start_with_plane(
        sys,
        ServerConfig {
            workers: 2,
            max_batch: 2,
            ..ServerConfig::default()
        },
        plane,
    );
    let job = || EditJob {
        template_id: 0,
        masked_idx: vec![1, 2],
        prompt: "edit".into(),
        seed: 1,
        guidance: None,
    };
    let routed_worker = |server: &ThreadedServer| {
        server
            .decisions()
            .iter()
            .rev()
            .find_map(|d| match d {
                Decision::Routed { worker, .. } => Some(*worker),
                _ => None,
            })
            .expect("a route was recorded")
    };
    server.submit(job()).unwrap().wait().unwrap();
    let sticky = routed_worker(&server);
    // Same template, idle workers: affinity repeats the placement.
    server.submit(job()).unwrap().wait().unwrap();
    assert_eq!(routed_worker(&server), sticky, "affinity was not sticky");
    // The sticky worker turns out cold, the other one warm.
    let warm = 1 - sticky;
    TemplateAffinityRouter::record_outcome(&fb, sticky, 0, FetchOutcome::Miss { cost_secs: 5.0 });
    TemplateAffinityRouter::record_outcome(&fb, warm, 0, FetchOutcome::LocalHit);
    server.submit(job()).unwrap().wait().unwrap();
    assert_eq!(
        routed_worker(&server),
        warm,
        "feedback did not steer the route onto the measured-warm worker"
    );
    server.shutdown();
}

#[test]
fn removing_a_shard_only_moves_its_own_keys() {
    let mut ring = HashRing::with_shards(5);
    let before: Vec<(u64, u32)> = (0..500u64)
        .map(|k| (k, ring.primary(k).expect("non-empty ring")))
        .collect();
    ring.remove_shard(2);
    for (k, owner) in before {
        let now = ring.primary(k).expect("still non-empty");
        if owner != 2 {
            assert_eq!(now, owner, "key {k} moved although its shard stayed");
        } else {
            assert_ne!(now, 2, "key {k} still maps to the removed shard");
        }
    }
}

#[test]
fn an_empty_ring_and_a_single_shard_behave() {
    let empty = HashRing::default();
    assert!(empty.is_empty());
    assert_eq!(empty.primary(42), None);
    assert!(empty.preference(42).is_empty());

    let one = HashRing::with_shards(1);
    for k in 0..50u64 {
        assert_eq!(one.primary(k), Some(0));
        assert_eq!(one.preference(k), vec![0]);
    }
}
