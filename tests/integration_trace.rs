//! End-to-end tracing: ClusterSim (virtual clock) and ThreadedServer
//! (wall clock) both produce Chrome-trace exports that parse, nest,
//! and never mix clock domains.

use flashps::server::{EditJob, ServerConfig, ThreadedServer, Ticket};
use flashps::system::{FlashPs, FlashPsConfig};
use fps_diffusion::{Image, ModelConfig};
use fps_json::Json;
use fps_serving::{Clock, TraceSink};
use fps_serving::{ClusterConfig, ClusterSim, LeastLoadedRouter};
use fps_trace::{bubble_in_window, chrome_trace_string, critical_path, stage_breakdown};
use fps_workload::{Trace, TraceConfig};

fn workload(seed: u64) -> Trace {
    Trace::generate(&TraceConfig {
        rps: 1.0,
        duration_secs: 45.0,
        num_templates: 4,
        seed,
        ..TraceConfig::default()
    })
}

#[test]
fn cluster_sim_trace_exports_and_analyzes() {
    let trace = workload(42);
    let sink = TraceSink::recording(Clock::Virtual);
    let cost = fps_serving::CostModel::new(fps_serving::GpuSpec::h800(), ModelConfig::paper_sdxl());
    let mut cfg = ClusterConfig::flashps_default(cost, 2);
    cfg.trace = sink.clone();
    let mut router = LeastLoadedRouter;
    let report = ClusterSim::run(cfg, &trace, &mut router).unwrap();
    assert!(!report.outcomes.is_empty());

    let t = sink.drain().unwrap();
    assert_eq!(t.clock, Clock::Virtual);
    assert_eq!(t.spans_named("request").count(), report.outcomes.len());

    // Chrome export parses back through fps-json and carries the
    // virtual-clock marker.
    let text = chrome_trace_string(&t);
    let back = Json::parse(&text).expect("chrome export parses");
    assert_eq!(
        back.get("otherData")
            .and_then(|o| o.get("clock"))
            .and_then(Json::as_str),
        Some("virtual")
    );
    assert!(!back
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());

    // Every request's critical path fits inside the request span, and
    // stage decomposition covers queue + denoise.
    let stages = stage_breakdown(&t, "request");
    assert_eq!(stages.len(), report.outcomes.len());
    for b in &stages {
        let root = t.span(b.root_id).unwrap();
        let path: u64 = critical_path(&t, b.root_id).iter().map(|s| s.nanos()).sum();
        assert!(path <= root.duration_ns());
        assert!(b.stage_ns("denoise") > 0);
    }

    // GPU bubble fraction over the whole run is a valid fraction.
    let (lo, hi) = t.window().unwrap();
    let bubble = bubble_in_window(&t, lo, hi, |s| s.cat == "gpu");
    assert!((0.0..=1.0).contains(&bubble.fraction()));
}

#[test]
fn cluster_sim_rejects_wall_clock_sinks() {
    let trace = workload(7);
    let cost = fps_serving::CostModel::new(fps_serving::GpuSpec::h800(), ModelConfig::paper_sdxl());
    let mut cfg = ClusterConfig::flashps_default(cost, 1);
    cfg.trace = TraceSink::recording(Clock::Wall);
    let mut router = LeastLoadedRouter;
    assert!(ClusterSim::run(cfg, &trace, &mut router).is_err());
}

#[test]
fn threaded_server_trace_exports_wall_clock_spans() {
    let cfg = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
    let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
    sys.register_template(0, &img).unwrap();
    let sink = TraceSink::recording(Clock::Wall);
    let server = ThreadedServer::start(
        sys,
        ServerConfig {
            workers: 2,
            max_batch: 2,
            trace: sink.clone(),
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (0..6)
        .map(|i| {
            server
                .submit(EditJob {
                    template_id: 0,
                    masked_idx: vec![1, 2, 5],
                    prompt: "edit".into(),
                    seed: i,
                    guidance: None,
                })
                .unwrap()
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    server.shutdown();
    let t = sink.drain().unwrap();
    assert_eq!(t.clock, Clock::Wall);
    assert_eq!(t.spans_named("request").count(), 6);
    let text = chrome_trace_string(&t);
    let back = Json::parse(&text).unwrap();
    assert_eq!(
        back.get("otherData")
            .and_then(|o| o.get("clock"))
            .and_then(Json::as_str),
        Some("wall")
    );
    // Queue wait + denoise + decode decompose each request.
    for b in stage_breakdown(&t, "request") {
        assert!(b.stage_ns("queue") + b.stage_ns("denoise") + b.stage_ns("vae_decode") > 0);
        assert!(b.stage_ns("queue") <= b.total_ns);
    }
}
