//! Integration: the full numeric editing pipeline across crates —
//! workload masks → diffusion pipeline → FlashPS system → quality
//! metrics.

use flashps::{FlashPs, FlashPsConfig, FlashPsError};
use fps_diffusion::{Image, ModelConfig, Strategy};
use fps_quality::ssim;
use fps_workload::{Mask, MaskShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn system_with_template(cfg: &ModelConfig) -> FlashPs {
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("valid config");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 11);
    sys.register_template(1, &template).expect("priming");
    sys
}

#[test]
fn end_to_end_edit_on_every_toy_model() {
    for cfg in [
        ModelConfig::sd21_like(),
        ModelConfig::sdxl_like(),
        ModelConfig::flux_like(),
    ] {
        let sys = system_with_template(&cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let mask = Mask::generate(
            cfg.pixel_h(),
            cfg.pixel_w(),
            MaskShape::Blob,
            0.15,
            &mut rng,
        );
        let result = sys.edit(1, &mask, "add flowers", 3).expect("edit");
        assert!(result.output.image.data().iter().all(|v| v.is_finite()));
        assert!(
            result.speedup_vs_full > 1.5,
            "{}: speedup {}",
            cfg.name,
            result.speedup_vs_full
        );
        assert_eq!(result.output.steps_computed, cfg.steps);
    }
}

#[test]
fn pixel_mask_projection_is_conservative_end_to_end() {
    // Every masked pixel's token must be regenerated: pixels outside
    // the token mask stay identical to the (projected) template.
    let cfg = ModelConfig::sd21_like();
    let sys = system_with_template(&cfg);
    let mut rng = StdRng::seed_from_u64(8);
    let mask = Mask::generate(cfg.pixel_h(), cfg.pixel_w(), MaskShape::Rect, 0.2, &mut rng);
    let token_mask = mask.to_token_mask(cfg.latent_h, cfg.latent_w);
    // The system accepts the pixel mask directly.
    let result = sys.edit(1, &mask, "x", 0).expect("edit");
    assert!(
        (result.mask_ratio
            - token_mask.iter().filter(|&&b| b).count() as f64 / cfg.tokens() as f64)
            .abs()
            < 1e-9
    );
    for y in 0..cfg.pixel_h() {
        for x in 0..cfg.pixel_w() {
            if mask.get(y, x) {
                let tok = (y / cfg.patch) * cfg.latent_w + (x / cfg.patch);
                assert!(token_mask[tok], "masked pixel ({y},{x}) uncovered");
            }
        }
    }
}

#[test]
fn flashps_quality_beats_lossy_baselines_on_aggregate() {
    // A miniature Table 2: over several masks, FlashPS tracks the
    // full-recompute reference at least as well as FISEdit-style
    // masked-only editing.
    let cfg = ModelConfig::sd21_like();
    let sys = system_with_template(&cfg);
    let mut rng = StdRng::seed_from_u64(21);
    let mut flash_total = 0.0;
    let mut fisedit_total = 0.0;
    let cases = 6;
    for i in 0..cases {
        let mask = Mask::generate(
            cfg.pixel_h(),
            cfg.pixel_w(),
            MaskShape::Rect,
            0.15,
            &mut rng,
        );
        let reference = sys
            .edit_with_strategy(1, &mask, "edit", i, &Strategy::FullRecompute)
            .expect("reference");
        let flash = sys.edit(1, &mask, "edit", i).expect("flashps");
        let fisedit = sys
            .edit_with_strategy(1, &mask, "edit", i, &Strategy::MaskedOnly)
            .expect("fisedit");
        flash_total += ssim(&flash.output.image, &reference.image).expect("ssim");
        fisedit_total += ssim(&fisedit.image, &reference.image).expect("ssim");
    }
    assert!(
        flash_total >= fisedit_total,
        "flashps mean SSIM {} must not lose to fisedit {}",
        flash_total / cases as f64,
        fisedit_total / cases as f64
    );
}

#[test]
fn error_paths_are_typed() {
    let cfg = ModelConfig::tiny();
    let sys = system_with_template(&cfg);
    let mask = Mask::empty(cfg.pixel_h(), cfg.pixel_w());
    match sys.edit(99, &mask, "x", 0) {
        Err(FlashPsError::UnknownTemplate { template_id: 99 }) => {}
        other => panic!("expected UnknownTemplate, got {other:?}"),
    }
}

#[test]
fn empty_mask_still_produces_the_template() {
    // An empty mask means "edit nothing": the output equals the
    // VAE-projected template.
    let cfg = ModelConfig::tiny();
    let sys = system_with_template(&cfg);
    let mask = Mask::empty(cfg.pixel_h(), cfg.pixel_w());
    let result = sys.edit(1, &mask, "irrelevant", 0).expect("edit");
    let (template, _) = sys.template(1).expect("registered");
    let projected = sys
        .pipeline()
        .vae()
        .decode(&sys.pipeline().vae().encode(template).expect("encode"))
        .expect("decode");
    // One token is always recomputed (the clamp in masked_tokens), so
    // compare outside that token's patch via SSIM.
    let s = ssim(&result.output.image, &{
        let mut p = projected;
        p.clamp();
        p
    })
    .expect("ssim");
    assert!(
        s > 0.95,
        "empty-mask output should be the template, ssim {s}"
    );
}
