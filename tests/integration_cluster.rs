//! Integration: the serving simulator across crates — trace generation,
//! routing (including Algorithm 2), batching, and the evaluation
//! setups.

use flashps::experiment::{run_serving, RouterKind, ServingRun};
use flashps::MaskAwareRouter;
use fps_baselines::{eval_setup, SystemKind};
use fps_serving::{BatchingPolicy, ClusterSim, LeastLoadedRouter};
use fps_workload::{RatioDistribution, Trace, TraceConfig};

fn trace(rps: f64, secs: f64, seed: u64) -> Trace {
    Trace::generate(&TraceConfig {
        rps,
        arrivals: fps_workload::trace::ArrivalProcess::Poisson,
        duration_secs: secs,
        ratio_dist: RatioDistribution::ProductionTrace,
        num_templates: 8,
        zipf_s: 1.0,
        seed,
    })
}

#[test]
fn every_system_serves_every_supported_setup() {
    for setup in eval_setup() {
        for system in SystemKind::all() {
            let run = ServingRun {
                system,
                router: RouterKind::RequestCount,
                workers: 2,
                rps: 0.2,
                arrivals: fps_workload::trace::ArrivalProcess::Poisson,
                duration_secs: 60.0,
                ratio_dist: RatioDistribution::ProductionTrace,
                seed: 7,
                ..ServingRun::default()
            };
            let point = run_serving(&setup, &run).expect("simulation");
            match point {
                Some(p) => {
                    assert!(p.served > 0, "{}/{}", setup.model.name, system.label());
                    assert!(p.mean_latency.is_finite() && p.mean_latency > 0.0);
                }
                None => {
                    // Only FISEdit on non-SD2.1 models is unsupported.
                    assert_eq!(system, SystemKind::FisEdit);
                    assert_ne!(setup.model.name, "sd2.1");
                }
            }
        }
    }
}

#[test]
fn mask_aware_router_integrates_with_the_simulator() {
    let setup = &eval_setup()[2];
    let cfg = setup
        .cluster_config(SystemKind::FlashPs, 4)
        .expect("supported");
    let mut router = MaskAwareRouter::new(cfg.cost.clone()).expect("router");
    let t = trace(0.8, 200.0, 9);
    let n = t.len();
    let report = ClusterSim::run(cfg, &t, &mut router).expect("run");
    assert_eq!(report.outcomes.len(), n);
    assert_eq!(router.decisions(), n as u64);
    // Work actually spread across workers.
    let busy_workers = report.steps_per_worker.iter().filter(|&&s| s > 0).count();
    assert!(busy_workers >= 3, "only {busy_workers} workers used");
}

#[test]
fn flashps_outperforms_every_baseline_under_load() {
    // A miniature Fig. 12 at one operating point.
    let setup = &eval_setup()[1]; // SDXL.
    let t = trace(2.0, 200.0, 5);
    let mut latencies = Vec::new();
    for system in [
        SystemKind::Diffusers,
        SystemKind::TeaCache,
        SystemKind::FlashPs,
    ] {
        let cfg = setup.cluster_config(system, 4).expect("supported");
        let mut router = LeastLoadedRouter;
        let report = ClusterSim::run(cfg, &t, &mut router).expect("run");
        latencies.push((system.label(), report.mean_latency()));
    }
    let get = |l: &str| {
        latencies
            .iter()
            .find(|(n, _)| *n == l)
            .map(|(_, v)| *v)
            .expect("present")
    };
    assert!(
        get("flashps") < get("teacache"),
        "flashps {} vs teacache {}",
        get("flashps"),
        get("teacache")
    );
    assert!(get("teacache") < get("diffusers"));
    assert!(
        get("diffusers") / get("flashps") > 3.0,
        "expected a large end-to-end gap, got {:.1}x",
        get("diffusers") / get("flashps")
    );
}

#[test]
fn batching_policies_rank_correctly_at_moderate_load() {
    let setup = &eval_setup()[2]; // Flux.
    let t = trace(0.2, 400.0, 11);
    let mut p95 = Vec::new();
    for policy in [
        BatchingPolicy::Static,
        BatchingPolicy::ContinuousNaive,
        BatchingPolicy::ContinuousDisaggregated,
    ] {
        let mut cfg = setup
            .cluster_config(SystemKind::FlashPs, 1)
            .expect("supported");
        cfg.batching = policy;
        let mut router = LeastLoadedRouter;
        let report = ClusterSim::run(cfg, &t, &mut router).expect("run");
        p95.push((policy, report.p95_latency()));
    }
    let get = |p: BatchingPolicy| {
        p95.iter()
            .find(|(x, _)| *x == p)
            .map(|(_, v)| *v)
            .expect("ran")
    };
    let disagg = get(BatchingPolicy::ContinuousDisaggregated);
    assert!(
        get(BatchingPolicy::Static) > disagg,
        "static must trail disaggregated CB"
    );
    assert!(
        get(BatchingPolicy::ContinuousNaive) > disagg,
        "naive CB must trail disaggregated CB"
    );
}

#[test]
fn deterministic_simulation() {
    let setup = &eval_setup()[0];
    let t = trace(0.5, 100.0, 13);
    let run = || {
        let cfg = setup
            .cluster_config(SystemKind::FlashPs, 2)
            .expect("supported");
        let mut router = LeastLoadedRouter;
        ClusterSim::run(cfg, &t, &mut router).expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        assert_eq!(x.id, y.id);
        assert!((x.total - y.total).abs() < 1e-12);
    }
}
