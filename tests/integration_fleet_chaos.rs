//! Integration: fleet fault tolerance end to end — deterministic fault
//! plans (fps-chaos) driving shard churn in the fleet simulator
//! (fps-fleet), replicated activation caches with breaker-guarded
//! failover (fps-maskcache via the fleet), and first-class recovery
//! metrics (fps-metrics) — all replayable byte-for-byte on both event
//! schedulers (fps-simtime).

use fps_chaos::{FleetFaultEvent, FleetFaultKind, FleetFaultPlan, FleetFaultProfile};
use fps_fleet::{FleetConfig, FleetSim, RouteStrategy};
use fps_json::ToJson;
use fps_simtime::{SimDuration, SimTime};
use fps_workload::{FleetTrace, FleetTraceConfig, TenantSpec};

fn zipf_trace(rps: f64, secs: f64, seed: u64) -> FleetTrace {
    FleetTrace::generate(&FleetTraceConfig {
        tenants: vec![
            TenantSpec::new("studio", rps, 64),
            TenantSpec::new("retail", rps * 0.8, 48),
        ],
        duration_secs: secs,
        diurnal: None,
        seed,
    })
}

fn config() -> FleetConfig {
    FleetConfig {
        shards: 4,
        workers_per_shard: 2,
        max_batch: 4,
        cache_capacity: 24,
        deadline_secs: 5.0,
        allow_degradation: false,
        strategy: RouteStrategy::Affinity { load_factor: 1.25 },
        replicas: 2,
        ..Default::default()
    }
}

fn secs(s: f64) -> SimTime {
    SimTime::from_nanos((s * 1e9) as u64)
}

#[test]
fn a_mid_run_crash_reroutes_without_losing_accepted_requests() {
    let trace = zipf_trace(3.0, 120.0, 21);
    let mut cfg = config();
    cfg.faults = FleetFaultPlan::new(
        1,
        vec![FleetFaultEvent {
            at: secs(45.0),
            kind: FleetFaultKind::ShardCrash {
                shard: 1,
                downtime: SimDuration::from_secs_f64(25.0),
            },
        }],
    );
    let r = FleetSim::run(cfg, &trace);
    // The simulator self-asserts full conservation; restate the pieces
    // that matter across the crate boundary: nothing vanished, and the
    // crash actually exercised the reroute path.
    assert_eq!(r.fleet.fleet.lost(), 0, "requests vanished across a crash");
    assert!(
        r.rerouted > 0,
        "a mid-run crash with in-flight work must reroute something"
    );
    // Every terminal outcome sums back to the trace.
    let f = &r.fleet.fleet;
    assert_eq!(
        f.served + f.shed + f.deadline_rejected + r.crash_failed + r.parked_failed,
        trace.trace.len() as u64
    );
    // Faulted runs report recovery as a first-class result.
    let recovery = r.recovery.expect("faulted run must analyze recovery");
    assert!(recovery.baseline_rps > 0.0);
}

#[test]
fn a_join_re_primes_moved_templates_onto_the_new_shard() {
    let trace = zipf_trace(3.0, 150.0, 33);
    let mut cfg = config();
    cfg.faults = FleetFaultPlan::new(
        2,
        vec![FleetFaultEvent {
            at: secs(40.0),
            kind: FleetFaultKind::ShardJoin { shard: 4 },
        }],
    );
    let r = FleetSim::run(cfg, &trace);
    assert_eq!(r.fleet.fleet.lost(), 0);
    assert_eq!(r.shard_reports.len(), 5, "the joiner must appear");
    assert!(
        r.shard_reports[4].report.submitted > 0,
        "the joined shard never took traffic"
    );
    // Minimal-churn rebalancing hands the joiner only the templates it
    // now owns — and re-priming copies those onto it so its first
    // requests are not all cold.
    assert!(r.re_primed > 0, "join must re-prime moved templates");

    // Ablation: the same churn with re-priming disabled copies nothing
    // and pays for it in effective hit rate.
    let mut cold = config();
    cold.faults = FleetFaultPlan::new(
        2,
        vec![FleetFaultEvent {
            at: secs(40.0),
            kind: FleetFaultKind::ShardJoin { shard: 4 },
        }],
    );
    cold.reprime_on_churn = false;
    let c = FleetSim::run(cold, &trace);
    assert_eq!(c.re_primed, 0);
    assert!(
        r.effective_hit_rate() >= c.effective_hit_rate(),
        "re-priming {} must not lose to cold churn {}",
        r.effective_hit_rate(),
        c.effective_hit_rate()
    );
}

#[test]
fn a_router_partition_trips_replica_failover() {
    let trace = zipf_trace(3.0, 120.0, 55);
    let mut cfg = config();
    // The partitioned shard drops out of the router's view but stays
    // alive: requests for its templates land elsewhere, miss locally,
    // and must fail over to fetch the partitioned shard's copies.
    cfg.faults = FleetFaultPlan::new(
        3,
        vec![FleetFaultEvent {
            at: secs(30.0),
            kind: FleetFaultKind::Partition {
                shard: 0,
                duration: SimDuration::from_secs_f64(40.0),
            },
        }],
    );
    let r = FleetSim::run(cfg, &trace);
    assert_eq!(r.fleet.fleet.lost(), 0);
    assert_eq!(r.crash_failed, 0, "a partition kills nothing in flight");
    assert!(
        r.failover_hits > 0,
        "rerouted requests must fail over to the partitioned shard's replicas"
    );
    // The partitioned shard kept serving what it already had: its
    // in-flight work drains rather than being killed.
    assert!(r.shard_reports[0].report.served > 0);
}

#[test]
fn a_full_seeded_chaos_run_replays_byte_identically() {
    let trace = zipf_trace(3.5, 180.0, 77);
    let make = || {
        let mut cfg = config();
        cfg.faults = FleetFaultProfile::CrashStorm.plan(0xFA11, secs(180.0), 4);
        cfg
    };
    let a = FleetSim::run(make(), &trace).to_json().to_string_compact();
    let b = FleetSim::run(make(), &trace).to_json().to_string_compact();
    assert_eq!(a, b, "same seed, same storm, different bytes");
    let heap = FleetSim::run_on_heap(make(), &trace)
        .to_json()
        .to_string_compact();
    assert_eq!(a, heap, "calendar and heap disagree under chaos");
}
