//! Integration: one control plane, two execution planes.
//!
//! The virtual-time cluster simulator (fps-serving) and the wall-clock
//! threaded server (flashps core) consult the *same*
//! `fps_serving::ControlPlane` for every policy decision. These tests
//! pin that contract:
//!
//! - **Decision parity** — an identical burst offered to both planes
//!   (same overload configuration, same router, same request ids)
//!   yields the *identical* decision sequence: admit/shed verdicts,
//!   ladder rungs, and worker placements, in order.
//! - **Server-side policy** — the threaded server sheds with the
//!   control plane's typed reject reason and serves degraded rungs
//!   chosen by the shared ladder, with no policy logic of its own.

use flashps::server::{EditJob, ServerConfig, ThreadedServer};
use flashps::{FlashPs, FlashPsConfig, FlashPsError};
use fps_diffusion::{Image, ModelConfig};
use fps_serving::cluster::{ClusterConfig, ClusterSim};
use fps_serving::{
    ControlPlane, CostModel, Decision, GpuSpec, LeastLoadedRouter, OverloadConfig, OverloadState,
    RejectReason, Router, Rung, TimeSource,
};
use fps_simtime::SimDuration;
use fps_workload::trace::MaskShapeSpec;
use fps_workload::{RequestSpec, Trace};

const WORKERS: usize = 2;
const MAX_BATCH: usize = 4;
const BURST: u64 = 96;
const TEMPLATES: u64 = 3;
/// 4 masked tokens of the tiny model's 16: exactly 0.25, so the sim
/// trace's mean ratio and the server's computed ratio are bitwise
/// equal.
const MASKED: [usize; 4] = [1, 2, 5, 6];

/// The paper-scale cost model both planes size admission and pressure
/// estimates with. The server *executes* the tiny runnable model; the
/// cost model only parameterizes policy, so it must merely be the same
/// object on both sides.
fn cost() -> CostModel {
    CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl())
}

fn overload_config(cost: &CostModel) -> OverloadConfig {
    OverloadConfig::for_cluster(
        cost,
        WORKERS,
        MAX_BATCH,
        0.25,
        SimDuration::from_secs_f64(6.0),
    )
}

fn mask_ratio() -> f64 {
    MASKED.len() as f64 / ModelConfig::tiny().tokens() as f64
}

/// The burst as the simulator sees it: every request at t = 0, in id
/// order — the same order the server receives its submits.
fn burst_trace() -> Trace {
    Trace {
        requests: (0..BURST)
            .map(|i| RequestSpec {
                id: i,
                arrival_ns: 0,
                template_id: i % TEMPLATES,
                mask_ratio: mask_ratio(),
                mask_shape: MaskShapeSpec::Rect,
                seed: i,
            })
            .collect(),
    }
}

fn job(i: u64) -> EditJob {
    EditJob {
        template_id: i % TEMPLATES,
        masked_idx: MASKED.to_vec(),
        prompt: "edit".into(),
        seed: i,
        guidance: None,
    }
}

fn overloaded_server(workers: usize, max_batch: usize, paused: bool) -> ThreadedServer {
    let cfg = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
    for id in 0..TEMPLATES {
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
        sys.register_template(id, &img).unwrap();
    }
    let cost = cost();
    let overload = OverloadState::new(
        OverloadConfig::for_cluster(
            &cost,
            workers,
            max_batch,
            0.25,
            SimDuration::from_secs_f64(6.0),
        ),
        &cost,
        max_batch,
        mask_ratio(),
    );
    let plane = ControlPlane::new(
        Box::new(LeastLoadedRouter) as Box<dyn Router + Send>,
        TimeSource::wall(),
        cost.model.steps,
    )
    .with_overload(Some(overload))
    .record_decisions(true);
    ThreadedServer::start_with_plane(
        sys,
        ServerConfig {
            workers,
            max_batch,
            start_paused: paused,
            ..ServerConfig::default()
        },
        plane,
    )
}

#[test]
fn sim_and_server_make_identical_decisions_on_the_same_burst() {
    // Simulator plane: virtual clock, all arrivals at t = 0.
    let cost = cost();
    let mut sim_cfg = ClusterConfig::flashps_default(cost.clone(), WORKERS);
    sim_cfg.max_batch = MAX_BATCH;
    sim_cfg.overload = Some(overload_config(&cost));
    sim_cfg.record_decisions = true;
    let mut router = LeastLoadedRouter;
    let report = ClusterSim::run(sim_cfg, &burst_trace(), &mut router).expect("sim run");
    let sim_decisions: Vec<Decision> = report.decisions.clone();

    // Server plane: wall clock, the same burst submitted in id order
    // while workers are paused, so no completion races the sequence.
    let server = overloaded_server(WORKERS, MAX_BATCH, true);
    let mut tickets = Vec::new();
    for i in 0..BURST {
        match server.submit(job(i)) {
            Ok(t) => tickets.push(t),
            Err(FlashPsError::Rejected(RejectReason::Shed(_))) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let server_decisions = server.decisions();
    server.resume();
    for t in tickets {
        t.wait().expect("admitted jobs serve after resume");
    }
    server.shutdown();

    // The burst must actually exercise the policy stack, or parity
    // would hold vacuously.
    assert!(
        sim_decisions
            .iter()
            .any(|d| matches!(d, Decision::Shed { .. })),
        "burst must shed"
    );
    assert!(
        sim_decisions
            .iter()
            .any(|d| matches!(d, Decision::Rung { rung, .. } if *rung != Rung::FlashPsKv)),
        "burst must degrade the ladder"
    );
    if server_decisions != sim_decisions {
        eprintln!(
            "sim {} decisions, server {}",
            sim_decisions.len(),
            server_decisions.len()
        );
        for (i, (s, v)) in sim_decisions
            .iter()
            .zip(server_decisions.iter())
            .enumerate()
        {
            if s != v {
                eprintln!("first divergence at {i}: sim {s:?} vs server {v:?}");
                break;
            }
        }
    }
    assert_eq!(
        server_decisions, sim_decisions,
        "both planes must emit the identical decision sequence"
    );
}

#[test]
fn server_sheds_through_the_plane_with_typed_reasons() {
    // A 1-worker, 2-slot server cannot absorb 64 instant submits: the
    // shared admission controller must shed the excess, surfaced as
    // FlashPsError::Rejected (not the legacy Overloaded).
    let server = overloaded_server(1, 2, true);
    let mut admitted = Vec::new();
    let mut shed = 0u32;
    for i in 0..64u64 {
        match server.submit(job(i)) {
            Ok(t) => admitted.push(t),
            Err(FlashPsError::Rejected(RejectReason::Shed(cause))) => {
                assert!(!cause.label().is_empty());
                shed += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(shed > 0, "the burst must overflow admission");
    assert!(!admitted.is_empty(), "admission serves up to capacity");
    server.resume();
    let mut rungs = Vec::new();
    for t in admitted {
        let r = t.wait().expect("admitted jobs serve");
        assert!(r.output.image.data().iter().all(|v| v.is_finite()));
        rungs.push(r.rung.expect("overload plane stamps a rung"));
    }
    // The backlog must have pushed the shared ladder below premium for
    // at least part of the burst.
    assert!(
        rungs.iter().any(|&r| r != Rung::FlashPsKv),
        "degraded rungs must reach served results, got {rungs:?}"
    );
    server.shutdown();
}
