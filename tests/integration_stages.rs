//! Integration: the stage-graph layer end to end — the disaggregated
//! wall-clock server (flashps `start_staged`) against the monolithic
//! one on the *same* pipeline seams, per-stage shedding under a
//! saturating burst, deadline drops at stage boundaries, and the
//! virtual-time plane (fps-stagegraph) reporting per-stage queue stats
//! on the shared SLO report shape.

use flashps::{
    EditJob, FlashPs, FlashPsConfig, FlashPsError, ServerConfig, StagedServerConfig,
    ThreadedServer, Ticket,
};
use fps_diffusion::{Image, ModelConfig};
use fps_json::ToJson;
use fps_stagegraph::{StageGraph, StageGraphConfig, StageGraphSim};
use fps_workload::{RatioDistribution, TraceConfig};

fn system(templates: u64) -> FlashPs {
    let cfg = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
    for id in 0..templates {
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
        sys.register_template(id, &img).unwrap();
    }
    sys
}

fn job(template: u64, seed: u64) -> EditJob {
    EditJob {
        template_id: template,
        masked_idx: vec![1, 2, 5, 6],
        prompt: "edit".into(),
        seed,
        guidance: None,
    }
}

#[test]
fn staged_and_monolithic_servers_are_byte_identical_on_fixed_seed() {
    // The tentpole invariant: disaggregating the pipeline into pools
    // must not change a single output byte. Same jobs, same seeds,
    // three execution shapes — direct synchronous edit, the monolithic
    // continuous-batching server, the staged server — one image.
    let sys = system(1);
    let direct = sys.edit_tokens(0, &[1, 2, 5, 6], "edit", 42).unwrap();

    let mono = ThreadedServer::start(
        system(1),
        ServerConfig {
            workers: 2,
            max_batch: 3,
            ..ServerConfig::default()
        },
    );
    let staged = ThreadedServer::start_staged(
        system(1),
        ServerConfig {
            workers: 2,
            max_batch: 3,
            ..ServerConfig::default()
        },
        StagedServerConfig::default(),
    );
    let mono_tickets: Vec<Ticket> = (0..6).map(|_| mono.submit(job(0, 42)).unwrap()).collect();
    let staged_tickets: Vec<Ticket> = (0..6).map(|_| staged.submit(job(0, 42)).unwrap()).collect();
    for (m, s) in mono_tickets.into_iter().zip(staged_tickets) {
        let m = m.wait().unwrap();
        let s = s.wait().unwrap();
        assert_eq!(m.output.image, direct.output.image);
        assert_eq!(s.output.image, direct.output.image);
    }
    mono.shutdown();
    staged.shutdown();
}

#[test]
fn saturating_burst_sheds_at_the_entry_stage_only() {
    // A paused staged server with a tight admission cap: a burst far
    // beyond capacity must shed at submit time (the encode gate) while
    // every accepted job still resolves once resumed — sheds happen at
    // one stage, never silently inside the graph.
    let server = ThreadedServer::start_staged(
        system(1),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_queue_depth: Some(3),
            start_paused: true,
            ..ServerConfig::default()
        },
        StagedServerConfig::default(),
    );
    let mut accepted = Vec::new();
    let mut shed = 0u32;
    for i in 0..30u64 {
        match server.submit(job(0, i)) {
            Ok(t) => accepted.push(t),
            Err(FlashPsError::Overloaded) => shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(shed > 0, "the burst must overflow the entry gate");
    assert!(!accepted.is_empty());
    server.resume();
    for t in accepted {
        assert!(t.wait().is_ok(), "admitted jobs are served after resume");
    }
    server.shutdown();
}

#[test]
fn deadline_drop_at_a_stage_boundary_frees_the_batch_slot() {
    // One worker, batch of one: a job whose deadline lapses while the
    // server is paused is dropped at the first stage boundary it
    // reaches — and the freed slot then serves a fresh job promptly.
    let timeout = std::time::Duration::from_millis(250);
    let server = ThreadedServer::start_staged(
        system(1),
        ServerConfig {
            workers: 1,
            max_batch: 1,
            job_timeout: Some(timeout),
            start_paused: true,
            ..ServerConfig::default()
        },
        StagedServerConfig::default(),
    );
    let stale = server.submit(job(0, 7)).unwrap();
    std::thread::sleep(timeout + std::time::Duration::from_millis(150));
    server.resume();
    assert!(
        matches!(stale.wait(), Err(FlashPsError::JobTimeout)),
        "the expired job must drop at a boundary, not occupy the batch"
    );
    let fresh = server.submit(job(0, 8)).unwrap();
    assert!(
        fresh.wait().is_ok(),
        "the slot freed by the boundary drop must serve new work"
    );
    server.shutdown();
}

fn sim_trace(rps: f64, secs: f64, seed: u64) -> fps_workload::Trace {
    fps_workload::Trace::generate(&TraceConfig {
        rps,
        arrivals: fps_workload::trace::ArrivalProcess::Poisson,
        duration_secs: secs,
        ratio_dist: RatioDistribution::Uniform { lo: 0.05, hi: 0.3 },
        num_templates: 8,
        zipf_s: 0.9,
        seed,
    })
}

#[test]
fn virtual_plane_reports_per_stage_queue_stats_and_replays() {
    // The virtual-time plane: per-stage queue-wait stats surface on
    // the shared SloReport shape, and seeded replays are byte-
    // identical across event schedulers.
    let trace = sim_trace(1.0, 90.0, 17);
    let cfg = || StageGraphConfig::staged(StageGraph::full(2, 1, 4, 8));
    let a = StageGraphSim::run(cfg(), &trace);
    assert_eq!(a.slo.lost(), 0);
    assert_eq!(a.slo.stages.len(), 5, "five stages report queue stats");
    let json = a.to_json().to_string_compact();
    assert!(json.contains("\"stages\""));
    assert!(json.contains("\"bubble_fraction\""));
    let b = StageGraphSim::run_on_heap(cfg(), &trace);
    assert_eq!(
        json,
        b.to_json().to_string_compact(),
        "calendar and heap replays diverged"
    );
}

#[test]
fn disaggregation_beats_inline_cpu_under_a_cpu_heavy_burst() {
    // The §4.3 claim at integration scope: with heavy CPU pre/post
    // work, the staged graph keeps its denoise pool busier (smaller
    // GPU bubble) and lands more goodput than the monolithic arm with
    // the same denoise resources.
    let trace = sim_trace(1.2, 120.0, 29);
    let mut staged_cfg = StageGraphConfig::staged(StageGraph::full(4, 1, 4, 8));
    let mut mono_cfg = StageGraphConfig::monolithic(1, 4, 8);
    for cfg in [&mut staged_cfg, &mut mono_cfg] {
        cfg.cpu.preprocess = fps_simtime::SimDuration::from_secs_f64(1.5);
        cfg.cpu.postprocess = fps_simtime::SimDuration::from_secs_f64(1.5);
        cfg.deadline_secs = 60.0;
    }
    let staged = StageGraphSim::run(staged_cfg, &trace);
    let mono = StageGraphSim::run(mono_cfg, &trace);
    assert_eq!(staged.slo.lost(), 0);
    assert_eq!(mono.slo.lost(), 0);
    assert!(
        staged.gpu_bubble_fraction < mono.gpu_bubble_fraction,
        "staged bubble {} must undercut monolithic {}",
        staged.gpu_bubble_fraction,
        mono.gpu_bubble_fraction
    );
    assert!(
        staged.slo.goodput_at_deadline_rps > mono.slo.goodput_at_deadline_rps,
        "staged goodput {} must beat monolithic {}",
        staged.slo.goodput_at_deadline_rps,
        mono.slo.goodput_at_deadline_rps
    );
}
