//! Integration: the fault-injection subsystem across crates — fault
//! plans and profiles (fps-chaos), the resilient cluster simulator
//! (fps-serving), the Algorithm 2 router under faults (flashps), the
//! degradation accounting (fps-metrics), and the threaded server's
//! panic recovery.

use flashps::server::{EditJob, ServerConfig, ThreadedServer, Ticket};
use flashps::system::{FlashPs, FlashPsConfig};
use flashps::{FlashPsError, MaskAwareRouter};
use fps_chaos::{FaultPlan, FaultProfile, RetryPolicy};
use fps_diffusion::{Image, ModelConfig};
use fps_metrics::DegradationReport;
use fps_serving::cluster::{ClusterConfig, ClusterSim, RunReport};
use fps_serving::{CostModel, GpuSpec, LeastLoadedRouter};
use fps_simtime::SimTime;
use fps_workload::{RatioDistribution, Trace, TraceConfig};

const NUM_TEMPLATES: u64 = 8;

fn trace(rps: f64, secs: f64, seed: u64) -> Trace {
    Trace::generate(&TraceConfig {
        rps,
        arrivals: fps_workload::trace::ArrivalProcess::Poisson,
        duration_secs: secs,
        ratio_dist: RatioDistribution::ProductionTrace,
        num_templates: NUM_TEMPLATES as usize,
        zipf_s: 1.0,
        seed,
    })
}

fn config(workers: usize) -> ClusterConfig {
    let cost = CostModel::new(GpuSpec::h800(), ModelConfig::paper_sdxl());
    ClusterConfig::flashps_default(cost, workers)
}

fn degradation(profile: &str, submitted: u64, r: &RunReport) -> DegradationReport {
    DegradationReport {
        profile: profile.to_string(),
        submitted,
        served: r.outcomes.len() as u64,
        rejected: r.rejected.len() as u64 - r.shed,
        shed: r.shed,
        goodput_rps: r.goodput_rps(),
        mean_latency_secs: r.mean_latency(),
        p95_latency_secs: r.p95_latency(),
        retries: r.total_retries,
        fallback_serves: r.fallback_serves,
        fallback_rate: r.fallback_rate(),
        crashes: r.crashes_per_worker.iter().sum(),
    }
}

#[test]
fn canonical_profiles_degrade_without_losing_requests() {
    let t = trace(1.0, 120.0, 3);
    let n = t.len() as u64;
    let horizon = SimTime::from_nanos(180_000_000_000);
    let retry = RetryPolicy::default();
    for profile in FaultProfile::ALL {
        let plan = profile.plan(5, horizon, 2, NUM_TEMPLATES);
        let mut router = LeastLoadedRouter;
        let report =
            ClusterSim::run_with_faults(config(2), &t, &mut router, &plan, &retry).expect("run");
        let d = degradation(profile.label(), n, &report);
        assert_eq!(d.lost(), 0, "{}: silent loss", d.profile);
        match profile {
            FaultProfile::Baseline => {
                assert_eq!(d.retries, 0);
                assert_eq!(d.fallback_serves, 0);
                assert_eq!(d.crashes, 0);
            }
            FaultProfile::WorkerCrash => {
                assert!(d.crashes > 0, "profile must inject crashes");
            }
            FaultProfile::CacheLossSlowDisk => {
                assert!(d.fallback_serves > 0, "lost cache entries must fall back");
            }
            FaultProfile::OverloadBurst => {
                assert!(d.retries > 0, "transit drops must be retried");
                assert_eq!(d.crashes, 0, "overload burst injects no crashes");
            }
            FaultProfile::DiskBrownout => {
                assert!(d.fallback_serves > 0, "corrupted entries must fall back");
            }
        }
    }
}

#[test]
fn baseline_profile_is_byte_identical_to_fault_free_run() {
    let t = trace(1.2, 90.0, 4);
    let mut r1 = LeastLoadedRouter;
    let plain = ClusterSim::run(config(2), &t, &mut r1).expect("plain");
    let plan = FaultProfile::Baseline.plan(5, SimTime::from_nanos(1), 2, NUM_TEMPLATES);
    let retry = RetryPolicy::default();
    let mut r2 = LeastLoadedRouter;
    let chaos = ClusterSim::run_with_faults(config(2), &t, &mut r2, &plan, &retry).expect("chaos");
    assert_eq!(plain.outcomes, chaos.outcomes);
    assert_eq!(plain.steps_per_worker, chaos.steps_per_worker);
}

#[test]
fn mask_aware_router_composes_with_fault_injection() {
    // Algorithm 2 plugs into the same health-aware wrapper as the
    // baseline policies: random fault plans must preserve conservation
    // and determinism with the mask-aware scheduler routing.
    let t = trace(0.8, 60.0, 6);
    let n = t.len();
    let horizon = SimTime::from_nanos(90_000_000_000);
    let retry = RetryPolicy::default();
    let cfg = config(3);
    for plan_seed in [11u64, 12, 13] {
        let plan = FaultPlan::random(plan_seed, horizon, 3, NUM_TEMPLATES);
        let mut router = MaskAwareRouter::new(cfg.cost.clone()).expect("router");
        let report =
            ClusterSim::run_with_faults(cfg.clone(), &t, &mut router, &plan, &retry).expect("run");
        assert_eq!(
            report.outcomes.len() + report.rejected.len(),
            n,
            "seed {plan_seed}: requests vanished"
        );
        let mut router2 = MaskAwareRouter::new(cfg.cost.clone()).expect("router");
        let replay = ClusterSim::run_with_faults(cfg.clone(), &t, &mut router2, &plan, &retry)
            .expect("replay");
        assert_eq!(report.outcomes, replay.outcomes, "seed {plan_seed}");
    }
}

fn chaos_server(chaos_panic_seed: Option<u64>) -> ThreadedServer {
    let cfg = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
    for id in 0..3u64 {
        let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), id);
        sys.register_template(id, &img).unwrap();
    }
    ThreadedServer::start(
        sys,
        ServerConfig {
            workers: 2,
            max_batch: 3,
            chaos_panic_seed,
            ..ServerConfig::default()
        },
    )
}

fn job(template: u64, seed: u64) -> EditJob {
    EditJob {
        template_id: template,
        masked_idx: vec![1, 2, 5, 6],
        prompt: "edit".into(),
        seed,
        guidance: None,
    }
}

#[test]
fn threaded_server_survives_mid_batch_worker_panic() {
    let poisoned_seed = 424_242;
    let server = chaos_server(Some(poisoned_seed));
    let mut tickets: Vec<Ticket> = Vec::new();
    for i in 0..9u64 {
        let seed = if i == 4 { poisoned_seed } else { i };
        tickets.push(server.submit(job(i % 3, seed)).unwrap());
    }
    for t in tickets {
        let r = t.wait().expect("every job survives the panic via requeue");
        assert!(r.output.image.data().iter().all(|v| v.is_finite()));
    }
    server.shutdown();
}

#[test]
fn threaded_server_panic_result_matches_clean_run() {
    // Crash recovery must not change outputs: the requeued job's
    // result equals the one from an unfaulted server.
    let poisoned_seed = 99;
    let clean = chaos_server(None);
    let want = clean.submit(job(0, poisoned_seed)).unwrap().wait().unwrap();
    clean.shutdown();

    let server = chaos_server(Some(poisoned_seed));
    let got = server
        .submit(job(0, poisoned_seed))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(want.output.image, got.output.image);
    server.shutdown();
}

#[test]
fn exhausted_attempts_surface_as_explicit_errors() {
    let cfg = ModelConfig::tiny();
    let mut sys = FlashPs::new(FlashPsConfig::new(cfg.clone())).unwrap();
    let img = Image::template(cfg.pixel_h(), cfg.pixel_w(), 0);
    sys.register_template(0, &img).unwrap();
    let server = ThreadedServer::start(
        sys,
        ServerConfig {
            workers: 1,
            max_batch: 1,
            max_job_attempts: 1,
            chaos_panic_seed: Some(5),
            ..ServerConfig::default()
        },
    );
    let ticket = server.submit(job(0, 5)).unwrap();
    assert!(matches!(ticket.wait(), Err(FlashPsError::WorkerPanicked)));
    server.shutdown();
}
