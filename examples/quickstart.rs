//! Quickstart: register a template, edit it with FlashPS, and compare
//! against full recomputation.
//!
//! ```sh
//! cargo run --release -p flashps --example quickstart
//! ```

use flashps::{FlashPs, FlashPsConfig};
use fps_diffusion::{Image, ModelConfig, Strategy};
use fps_quality::ssim;
use fps_workload::{Mask, MaskShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build the system over a runnable toy-scale SDXL-like model.
    let cfg = ModelConfig::sdxl_like();
    let mut system = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("valid config");

    // 2. Register an image template. Registration *primes* the
    //    activation cache: one full inference whose per-block
    //    activations all later edits of this template reuse (§3.1).
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 42);
    system
        .register_template(7, &template)
        .expect("priming succeeds");
    println!(
        "registered template 7: {} bytes of cached activations ({} steps x {} blocks)",
        system.template_cache_bytes(7).expect("registered"),
        cfg.steps,
        cfg.blocks,
    );

    // 3. Draw an editing mask — here an ellipse covering ~20% of the
    //    canvas, as a virtual try-on garment region might.
    let mut rng = StdRng::seed_from_u64(9);
    let mask = Mask::generate(
        cfg.pixel_h(),
        cfg.pixel_w(),
        MaskShape::Ellipse,
        0.2,
        &mut rng,
    );
    println!("mask ratio: {:.1}% of pixels", mask.ratio() * 100.0);

    // 4. Edit. FlashPS computes only the masked tokens, replenishing
    //    unmasked activations from the cache under Algorithm 1's
    //    block plan.
    let result = system
        .edit(7, &mask, "add a red scarf", 1)
        .expect("edit succeeds");
    println!(
        "flashps: {} FLOPs, {:.1}x fewer than full recompute, plan cached {}/{} blocks",
        result.output.flops,
        result.speedup_vs_full,
        result.use_cache.iter().filter(|&&b| b).count(),
        cfg.blocks,
    );

    // 5. Compare with the Diffusers-style full recomputation.
    let reference = system
        .edit_with_strategy(7, &mask, "add a red scarf", 1, &Strategy::FullRecompute)
        .expect("reference edit");
    let s = ssim(&result.output.image, &reference.image).expect("same dims");
    println!(
        "full recompute: {} FLOPs; SSIM(flashps, full) = {s:.3}",
        reference.flops
    );

    // 6. Write both outputs for visual inspection.
    std::fs::write("quickstart_flashps.ppm", result.output.image.to_ppm()).expect("write");
    std::fs::write("quickstart_full.ppm", reference.image.to_ppm()).expect("write");
    println!("wrote quickstart_flashps.ppm and quickstart_full.ppm");
}
