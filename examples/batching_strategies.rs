//! Batching strategies demonstrated on the *numeric* substrate: a
//! late-arriving request joins a running batch after exactly one
//! denoising step (§4.3), and the interleaving does not change any
//! output.
//!
//! ```sh
//! cargo run --release -p flashps --example batching_strategies
//! ```

use flashps::{FlashPs, FlashPsConfig};
use fps_diffusion::{Image, ModelConfig, Strategy};

fn main() {
    let cfg = ModelConfig::sd21_like();
    let mut system = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("valid config");
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 1);
    system.register_template(0, &template).expect("priming");
    let (image, cache) = system.template(0).expect("registered");
    let pipe = system.pipeline();

    let masked_a: Vec<usize> = (0..cfg.tokens()).filter(|i| i % 7 == 0).collect();
    let masked_b: Vec<usize> = (0..cfg.tokens()).filter(|i| i % 5 == 1).collect();
    let strategy = Strategy::MaskAware {
        use_cache: vec![true; cfg.blocks],
        kv: false,
    };

    // Request A starts alone.
    let mut a = pipe
        .begin(image, 0, &masked_a, "add a boat", 1, strategy.clone())
        .expect("begin A");
    println!("step 0..3: batch = [A]");
    for _ in 0..3 {
        pipe.step(&mut a, Some(cache)).expect("step A");
    }

    // Request B arrives mid-flight and joins at the next step boundary
    // — one step of joining latency, not a full batch wait.
    let mut b = pipe
        .begin(image, 0, &masked_b, "paint the sky", 2, strategy.clone())
        .expect("begin B");
    println!(
        "request B arrives at step {}; joins the running batch immediately",
        a.step_index()
    );
    while !a.is_done() || !b.is_done() {
        if !a.is_done() {
            pipe.step(&mut a, Some(cache)).expect("step A");
        }
        if !b.is_done() {
            pipe.step(&mut b, Some(cache)).expect("step B");
        }
    }
    // A finished first and left the batch while B kept running —
    // that is continuous batching at step granularity.
    println!(
        "A finished after {} steps, B after {} steps (B joined late)",
        a.total_steps(),
        b.total_steps()
    );
    let out_a = pipe.finish(a).expect("finish A");
    let out_b = pipe.finish(b).expect("finish B");

    // Interleaving must not change results: compare against solo runs.
    let solo_a = pipe
        .edit(image, 0, &masked_a, "add a boat", 1, &strategy, Some(cache))
        .expect("solo A");
    let solo_b = pipe
        .edit(
            image,
            0,
            &masked_b,
            "paint the sky",
            2,
            &strategy,
            Some(cache),
        )
        .expect("solo B");
    assert_eq!(out_a.image, solo_a.image, "A unchanged by batching");
    assert_eq!(out_b.image, solo_b.image, "B unchanged by batching");
    println!("interleaved outputs are bit-identical to solo runs — batching is transparent");
    println!(
        "(the serving-performance consequences of static vs naive vs disaggregated\n\
         batching are measured by `cargo run -p fps-bench --bin fig16_batching`)"
    );
}
