//! Virtual try-on: the paper's motivating workload (Fig. 1).
//!
//! One model photo is edited thousands of times with different
//! garments — in the paper's production trace, 970 templates served
//! 34 M images (~35 000 reuses each). This example registers one
//! template and serves a burst of try-on edits with torso-shaped
//! masks through the multi-threaded continuous-batching server,
//! reporting the amortization the cache achieves.
//!
//! ```sh
//! cargo run --release -p flashps --example virtual_tryon
//! ```

use std::time::Instant;

use flashps::server::{EditJob, ServerConfig, Ticket};
use flashps::{FlashPs, FlashPsConfig, ThreadedServer};
use fps_diffusion::{Image, ModelConfig};
use fps_workload::{Mask, MaskShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

const GARMENTS: [&str; 6] = [
    "a red evening dress",
    "a denim jacket",
    "a striped sweater",
    "a leather coat",
    "a floral blouse",
    "a green hoodie",
];

fn main() {
    let cfg = ModelConfig::sdxl_like();
    let mut system = FlashPs::new(FlashPsConfig::new(cfg.clone())).expect("valid config");

    // The model photo template, primed once.
    let template = Image::template(cfg.pixel_h(), cfg.pixel_w(), 7);
    let prime_start = Instant::now();
    system.register_template(0, &template).expect("priming");
    let prime_time = prime_start.elapsed();
    println!(
        "primed template once in {prime_time:?} ({} KiB of activations)",
        system.template_cache_bytes(0).expect("registered") / 1024
    );

    // Torso-shaped try-on masks (VITON-HD mean ratio ≈ 0.35).
    let mut rng = StdRng::seed_from_u64(3);
    let jobs: Vec<EditJob> = (0..12)
        .map(|i| {
            let mask = Mask::generate(
                cfg.pixel_h(),
                cfg.pixel_w(),
                MaskShape::Ellipse,
                0.35,
                &mut rng,
            );
            EditJob {
                template_id: 0,
                masked_idx: mask.token_indices(cfg.latent_h, cfg.latent_w),
                prompt: GARMENTS[i % GARMENTS.len()].to_string(),
                seed: i as u64,
                guidance: None,
            }
        })
        .collect();

    // Serve the burst through the continuous-batching server.
    let server = ThreadedServer::start(
        system,
        ServerConfig {
            workers: 2,
            max_batch: 4,
            ..ServerConfig::default()
        },
    );
    let serve_start = Instant::now();
    let tickets: Vec<Ticket> = jobs
        .into_iter()
        .map(|j| server.submit(j).expect("submit"))
        .collect();
    let mut total_speedup = 0.0;
    let n = tickets.len();
    for (i, t) in tickets.into_iter().enumerate() {
        let r = t.wait().expect("edit");
        total_speedup += r.speedup_vs_full;
        if i < 3 {
            std::fs::write(format!("tryon_{i}.ppm"), r.output.image.to_ppm()).expect("write");
        }
    }
    let elapsed = serve_start.elapsed();
    println!(
        "served {n} try-on edits in {elapsed:?} on 2 workers \
         (mean FLOP speedup {:.1}x vs full regeneration)",
        total_speedup / n as f64
    );
    println!("one priming inference amortizes over every garment; wrote tryon_0..2.ppm");
    server.shutdown();
}
