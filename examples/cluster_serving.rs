//! Cluster serving: route a Poisson trace through an 8-worker cluster
//! and compare FlashPS against the baselines (a miniature Fig. 12).
//!
//! ```sh
//! cargo run --release -p flashps --example cluster_serving
//! ```

use flashps::experiment::{run_serving, RouterKind, ServingRun};
use fps_baselines::{eval_setup, SystemKind};
use fps_metrics::Table;
use fps_workload::RatioDistribution;

fn main() {
    // SDXL on H800, as in the paper's middle panel.
    let setup = &eval_setup()[1];
    println!(
        "serving {} on {} with 8 workers, production mask-ratio trace\n",
        setup.model.name, setup.gpu.name
    );
    let mut table = Table::new(&[
        "system",
        "rps",
        "mean(s)",
        "p95(s)",
        "queue(s)",
        "tput(req/s)",
    ]);
    for rps in [1.0, 3.0] {
        for system in [
            SystemKind::Diffusers,
            SystemKind::TeaCache,
            SystemKind::FlashPs,
        ] {
            let run = ServingRun {
                system,
                router: if system == SystemKind::FlashPs {
                    RouterKind::MaskAware
                } else {
                    RouterKind::RequestCount
                },
                workers: 8,
                rps,
                arrivals: fps_workload::trace::ArrivalProcess::Poisson,
                duration_secs: 180.0,
                ratio_dist: RatioDistribution::ProductionTrace,
                seed: 0xC1,
                ..ServingRun::default()
            };
            let p = run_serving(setup, &run)
                .expect("simulation")
                .expect("system supported");
            table.row(&[
                p.system.clone(),
                format!("{rps:.1}"),
                format!("{:.2}", p.mean_latency),
                format!("{:.2}", p.p95_latency),
                format!("{:.2}", p.mean_queueing),
                format!("{:.2}", p.throughput),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "FlashPS keeps latency flat as load grows; the static-batching baselines\n\
         queue up. The paper reports up to 14.7x lower mean latency (Fig. 12)."
    );
}
